//===- analyze/StorePass.cpp - artifact store integrity -------------------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// STORE.*: integrity of the content-addressed artifact pool backing an
/// ELFie (DESIGN.md §15). Checks, per artifact: the manifest parses with a
/// valid seal, every referenced chunk is present and re-hashes to its
/// digest, the chunks reassemble to the manifest's whole-artifact digest,
/// and — when everify was pointed at a concrete file — that file is
/// byte-identical with the pool's view of it. Corruption shows up as
/// error findings carrying the same EFAULT.STORE.* taxonomy the runtime
/// tools reject with, so a pool that everify passes is a pool every
/// consumer will accept.
///
//===----------------------------------------------------------------------===//

#include "analyze/Passes.h"

#include "store/Artifact.h"
#include "support/FileIO.h"
#include "support/Format.h"

using namespace elfie;
using namespace elfie::analyze;

namespace {

class StorePass : public Pass {
public:
  const char *name() const override { return "store"; }
  const char *description() const override {
    return "artifact pool manifests parse, chunks verify, artifacts "
           "reassemble to their recorded digests";
  }

  bool applicable(const AnalysisInput &In, std::string &WhyNot) const override {
    if (In.StoreRoot.empty()) {
      WhyNot = "no artifact pool given (-store)";
      return false;
    }
    return true;
  }

  void run(const AnalysisInput &In, Report &Out) const override {
    if (!store::isStoreRoot(In.StoreRoot)) {
      Out.add(Severity::Error, "STORE.ROOT", 0,
              formatString("'%s' is not an estore pool (no estore.meta)",
                           In.StoreRoot.c_str()));
      return;
    }
    auto Pool = store::ChunkStore::open(In.StoreRoot, /*Create=*/false);
    if (!Pool) {
      Out.add(Severity::Error, "STORE.ROOT", 0, Pool.message());
      return;
    }

    std::vector<std::string> Names;
    if (!In.StoreName.empty()) {
      Names.push_back(In.StoreName);
    } else {
      auto All = Pool->listManifests();
      if (!All) {
        Out.add(Severity::Error, "STORE.ROOT", 0, All.message());
        return;
      }
      Names = std::move(*All);
    }

    unsigned Checked = 0, Bad = 0;
    for (const std::string &Name : Names) {
      auto M = Pool->getManifest(Name);
      if (!M) {
        Out.add(Severity::Error, "STORE.MANIFEST", 0,
                formatString("artifact '%s': %s", Name.c_str(),
                             M.message().c_str()));
        ++Bad;
        continue;
      }
      ++Checked;
      // Per-chunk presence and digest, then the end-to-end reassembly
      // digest; loadArtifact performs all of it with the runtime's own
      // verification path, so the pass cannot be more lenient than the
      // consumers it vouches for.
      auto Bytes = store::loadArtifact(*Pool, Name);
      if (!Bytes) {
        const std::string &Msg = Bytes.message();
        const char *Code = "STORE.DIGEST";
        if (Msg.find("EFAULT.STORE.MISSING") != std::string::npos)
          Code = "STORE.MISSING";
        else if (Msg.find("EFAULT.STORE.MANIFEST") != std::string::npos ||
                 Msg.find("EFAULT.STORE.SEAL") != std::string::npos)
          Code = "STORE.MANIFEST";
        Out.add(Severity::Error, Code, 0,
                formatString("artifact '%s': %s", Name.c_str(),
                             Msg.c_str()));
        ++Bad;
        continue;
      }
      // Cross-check against the file actually being verified.
      if (Name == In.StoreName && !In.ArtifactPath.empty()) {
        auto OnDisk = readFileBytes(In.ArtifactPath);
        if (!OnDisk) {
          Out.add(Severity::Warning, "STORE.MISMATCH", 0,
                  formatString("cannot read '%s' to cross-check: %s",
                               In.ArtifactPath.c_str(),
                               OnDisk.message().c_str()));
        } else if (Sha256::digest(*OnDisk) != M->Total) {
          Out.add(Severity::Error, "STORE.MISMATCH", 0,
                  formatString("'%s' is not byte-identical with pool "
                               "artifact '%s' (file %s, pool %s)",
                               In.ArtifactPath.c_str(), Name.c_str(),
                               sha256Hex(OnDisk->data(), OnDisk->size())
                                   .c_str(),
                               M->Total.hex().c_str()));
          ++Bad;
        }
      }
    }
    Out.add(Severity::Note, "STORE.SUMMARY", 0,
            formatString("%u artifacts verified end-to-end, %u bad, pool "
                         "'%s'",
                         Checked, Bad, In.StoreRoot.c_str()));
  }
};

} // namespace

std::unique_ptr<Pass> analyze::makeStorePass() {
  return std::make_unique<StorePass>();
}
