//===- fault/FaultPlan.h - Deterministic I/O fault injection ---*- C++ -*-===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded fault-injection plan installed as the support-layer IOFaultHook.
/// Tools opt in explicitly (installFaultHookFromEnv reads ELFIE_FAULT_SPEC),
/// so production runs pay nothing; tests and the efault driver use it to
/// prove every writer is crash-safe and every reader fails closed.
///
/// Spec grammar (comma separated):  <op>:<nth>:<kind>[,seed=<n>]
///   op    = read | write           which I/O direction to target
///   nth   = 1-based operation index at which the fault fires
///   kind  = enospc | eio | short | flip | kill
/// Example: ELFIE_FAULT_SPEC="write:3:kill" kills the process on its third
/// file write, mid-emission — the atomic-rename discipline must leave no
/// partial artifact behind.
///
//===----------------------------------------------------------------------===//

#ifndef ELFIE_FAULT_FAULTPLAN_H
#define ELFIE_FAULT_FAULTPLAN_H

#include "support/Error.h"
#include "support/FileIO.h"
#include "support/RNG.h"

#include <string>
#include <vector>

namespace elfie {
namespace fault {

/// One injected fault: fire on the Nth read or write.
struct FaultSpec {
  enum class Op { Read, Write };
  enum class Kind {
    Enospc, ///< fail the operation with an ENOSPC-style error
    Eio,    ///< fail the operation with an EIO-style error
    Short,  ///< truncate the data to a random prefix
    Flip,   ///< flip one random byte
    Kill,   ///< _exit the process (simulated power loss / SIGKILL)
  };
  Op O = Op::Write;
  uint64_t Nth = 1; ///< 1-based index of the matching operation
  Kind K = Kind::Eio;
};

/// Parses one "<op>:<nth>:<kind>" clause.
Expected<FaultSpec> parseFaultSpec(const std::string &Text);

/// A deterministic injection plan; implements the support-layer hook.
class FaultPlan : public IOFaultHook {
public:
  explicit FaultPlan(uint64_t Seed = 0) : Rand(Seed) {}

  void add(FaultSpec S) { Specs.push_back(S); }

  /// Parses a full ELFIE_FAULT_SPEC string ("write:2:flip,seed=7").
  Error parse(const std::string &SpecText);

  Error onWrite(const std::string &Path,
                std::vector<uint8_t> &Data) override;
  Error onRead(const std::string &Path, std::vector<uint8_t> &Data) override;

  uint64_t readsSeen() const { return Reads; }
  uint64_t writesSeen() const { return Writes; }

private:
  Error apply(const FaultSpec &S, const std::string &Path,
              std::vector<uint8_t> &Data);
  std::vector<FaultSpec> Specs;
  RNG Rand;
  uint64_t Reads = 0;
  uint64_t Writes = 0;
};

/// If ELFIE_FAULT_SPEC is set, parses it and installs a process-lifetime
/// FaultPlan as the I/O hook. Returns true when a hook was installed;
/// prints to stderr and _exits with ExitUsage on a malformed spec. Writer
/// tools (elogger, pinball2elf, pinball_sysstate) call this first thing in
/// main().
bool installFaultHookFromEnv();

} // namespace fault
} // namespace elfie

#endif // ELFIE_FAULT_FAULTPLAN_H
