//===- fault/Mutator.cpp --------------------------------------------------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "fault/Mutator.h"

#include "support/FileIO.h"
#include "support/Format.h"
#include "support/MappedFile.h"
#include "support/RNG.h"
#include "support/Sha256.h"

#include <algorithm>
#include <cstring>
#include <filesystem>

using namespace elfie;
using namespace elfie::fault;

Error elfie::fault::copyTree(const std::string &From,
                             const std::string &To) {
  std::error_code EC;
  std::filesystem::copy(From, To,
                        std::filesystem::copy_options::recursive, EC);
  if (EC)
    return makeCodedError("EFAULT.IO.COPY", "cannot copy '%s' to '%s': %s",
                          From.c_str(), To.c_str(), EC.message().c_str());
  return Error::success();
}

namespace {

/// The byte-level mutation kinds shared by both artifact classes.
enum class ByteMut {
  TruncatePrefix, ///< keep a random strict prefix
  ChopTail,       ///< drop 1..16 trailing bytes
  FlipBit,        ///< flip one bit of one byte
  HugeField,      ///< overwrite an aligned u32 with a near-overflow value
  ZeroRange,      ///< zero a random run of bytes
  PatchHeader,    ///< scribble over bytes in the first 64 (magic/version)
};

constexpr int NumByteMuts = 6;

/// Applies \p M in place to the \p Size bytes at \p Bytes (the private-COW
/// view of the target file); returns a description fragment. Truncating
/// kinds only shrink \p Size — the buffer itself is never reallocated, so
/// it can live inside a MAP_PRIVATE mapping.
std::string applyByteMut(ByteMut M, uint8_t *Bytes, size_t &Size,
                         RNG &Rand) {
  size_t N = Size;
  switch (M) {
  case ByteMut::TruncatePrefix: {
    size_t Keep = N ? Rand.nextBelow(N) : 0;
    Size = Keep;
    return formatString("truncate %zu -> %zu", N, Keep);
  }
  case ByteMut::ChopTail: {
    size_t Drop = std::min<size_t>(N, 1 + Rand.nextBelow(16));
    Size = N - Drop;
    return formatString("chop %zu tail bytes", Drop);
  }
  case ByteMut::FlipBit: {
    if (N == 0)
      return "flip on empty (noop)";
    size_t At = Rand.nextBelow(N);
    uint8_t Bit = static_cast<uint8_t>(1u << Rand.nextBelow(8));
    Bytes[At] ^= Bit;
    return formatString("flip bit 0x%02x at offset %zu", Bit, At);
  }
  case ByteMut::HugeField: {
    if (N < 4)
      return "huge-field on tiny file (noop)";
    size_t At = Rand.nextBelow(N / 4) * 4;
    uint32_t V = 0x7FFFFFF0u + static_cast<uint32_t>(Rand.nextBelow(16));
    std::memcpy(Bytes + At, &V, 4);
    return formatString("huge u32 0x%08x at offset %zu", V, At);
  }
  case ByteMut::ZeroRange: {
    if (N == 0)
      return "zero on empty (noop)";
    size_t At = Rand.nextBelow(N);
    size_t Len = std::min<size_t>(N - At, 1 + Rand.nextBelow(64));
    std::memset(Bytes + At, 0, Len);
    return formatString("zero %zu bytes at offset %zu", Len, At);
  }
  case ByteMut::PatchHeader: {
    if (N == 0)
      return "patch on empty (noop)";
    size_t Span = std::min<size_t>(N, 64);
    size_t At = Rand.nextBelow(Span);
    Bytes[At] = static_cast<uint8_t>(Rand.next());
    return formatString("patch header byte at offset %zu", At);
  }
  }
  return "noop";
}

/// Maps \p Path private-COW, mutates the view in place, and writes the
/// (possibly shortened) result back. The kernel's private pages absorb the
/// scribbles; only the final writeFile touches the disk.
Expected<std::string> mutateFileInPlace(const std::string &Path,
                                        ByteMut Kind, RNG &Rand) {
  auto File = MappedFile::open(Path, MappedFile::Mode::PrivateCow);
  if (!File)
    return File.takeError();
  size_t Size = File->size();
  std::string What = applyByteMut(Kind, File->mutableData(), Size, Rand);
  // Atomic write-back: the rename retires the old inode while the mapping
  // still references it (a plain truncating rewrite of the mapped file
  // would SIGBUS the not-yet-copied pages we are writing from).
  if (Error E = writeFileAtomic(Path, File->data(), Size))
    return E;
  return What;
}

} // namespace

Expected<std::string>
elfie::fault::mutatePinballDir(const std::string &Dir, uint64_t Seed) {
  auto Names = listDirectory(Dir);
  if (!Names)
    return Names.takeError();
  // Only regular files are mutation targets (skip e.g. a sysstate subdir).
  std::vector<std::string> Files;
  for (const std::string &Name : *Names)
    if (!std::filesystem::is_directory(Dir + "/" + Name))
      Files.push_back(Name);
  if (Files.empty())
    return makeCodedError("EFAULT.MUTATE.EMPTY",
                          "no files to mutate in '%s'", Dir.c_str());

  RNG Rand(Seed);
  const std::string &Name = Files[Rand.nextBelow(Files.size())];
  std::string Path = Dir + "/" + Name;

  // One extra kind beyond the byte mutations: delete the file outright.
  uint64_t Kind = Rand.nextBelow(NumByteMuts + 1);
  if (Kind == NumByteMuts) {
    removeFile(Path);
    return "delete " + Name;
  }

  auto What = mutateFileInPlace(Path, static_cast<ByteMut>(Kind), Rand);
  if (!What)
    return What.takeError();
  return Name + ": " + *What;
}

Expected<std::string> elfie::fault::mutateElfFile(const std::string &Path,
                                                 uint64_t Seed) {
  RNG Rand(Seed);
  return mutateFileInPlace(
      Path, static_cast<ByteMut>(Rand.nextBelow(NumByteMuts)), Rand);
}

Expected<std::string>
elfie::fault::mutateSimStateFile(const std::string &Path, uint64_t Seed) {
  auto Bytes = readFileBytes(Path);
  if (!Bytes)
    return Bytes.takeError();
  std::vector<uint8_t> &B = *Bytes;
  if (B.size() < 44) // magic + version + seal: nothing real to corrupt
    return makeCodedError("EFAULT.MUTATE.EMPTY",
                          "'%s' is too small to be a sidecar",
                          Path.c_str());

  RNG Rand(Seed);
  std::string What;
  switch (Rand.nextBelow(7)) {
  case 0: { // interrupted copy: keep a strict prefix
    size_t Keep = Rand.nextBelow(B.size());
    What = formatString("truncate %zu -> %zu", B.size(), Keep);
    B.resize(Keep);
    break;
  }
  case 1: { // chopped tail: the seal (or part of it) is gone
    size_t Drop = 1 + Rand.nextBelow(16);
    What = formatString("chop %zu tail bytes", Drop);
    B.resize(B.size() - std::min(Drop, B.size()));
    break;
  }
  case 2: { // media corruption: one bit anywhere
    size_t At = Rand.nextBelow(B.size());
    uint8_t Bit = static_cast<uint8_t>(1u << Rand.nextBelow(8));
    B[At] ^= Bit;
    What = formatString("flip bit 0x%02x at offset %zu", Bit, At);
    break;
  }
  case 3: { // scribbled magic
    size_t At = Rand.nextBelow(8);
    B[At] ^= static_cast<uint8_t>(1 + Rand.nextBelow(255));
    What = formatString("scribble magic byte %zu", At);
    break;
  }
  case 4: { // hostile producer: future format version, valid seal
    uint32_t V = 2 + static_cast<uint32_t>(Rand.nextBelow(1000));
    std::memcpy(B.data() + 8, &V, 4);
    Sha256Digest Seal = Sha256::digest(B.data(), B.size() - 32);
    std::memcpy(B.data() + B.size() - 32, Seal.Bytes.data(), 32);
    What = formatString("format version %u, resealed", V);
    break;
  }
  case 5: { // trailing garbage after the seal
    size_t Extra = 1 + Rand.nextBelow(16);
    for (size_t I = 0; I < Extra; ++I)
      B.push_back(static_cast<uint8_t>(Rand.next()));
    What = formatString("append %zu garbage bytes", Extra);
    break;
  }
  default: { // torn write: a u64 in the middle replaced wholesale
    size_t At = 8 + Rand.nextBelow((B.size() - 40) / 8) * 8;
    uint64_t V = Rand.next() | 0x8000000000000000ull;
    std::memcpy(B.data() + At, &V, 8);
    What = formatString("scribble u64 at offset %zu", At);
    break;
  }
  }
  if (Error E = writeFileAtomic(Path, B.data(), B.size()))
    return E;
  return What;
}

Expected<std::string>
elfie::fault::mutateStoreChunk(const std::string &Root, uint64_t Seed) {
  RNG Rand(Seed);

  // 1 seed in 5 corrupts a manifest instead of a chunk: the seal must
  // catch it (EFAULT.STORE.SEAL) just as the chunk digest catches chunk
  // flips (EFAULT.STORE.DIGEST).
  if (Rand.nextBelow(5) == 0) {
    auto Names = listDirectory(Root + "/manifests");
    if (!Names)
      return Names.takeError();
    if (!Names->empty()) {
      const std::string &Name = (*Names)[Rand.nextBelow(Names->size())];
      auto What = mutateFileInPlace(Root + "/manifests/" + Name,
                                    ByteMut::FlipBit, Rand);
      if (!What)
        return What.takeError();
      return "manifest " + Name + ": " + *What;
    }
  }

  // Enumerate the pool's chunk files (chunks/<aa>/<64-hex>).
  std::vector<std::string> Chunks; // paths relative to chunks/
  auto Fans = listDirectory(Root + "/chunks");
  if (!Fans)
    return Fans.takeError();
  for (const std::string &Fan : *Fans) {
    if (Fan.size() != 2)
      continue;
    auto Names = listDirectory(Root + "/chunks/" + Fan);
    if (!Names)
      return Names.takeError();
    for (const std::string &Name : *Names)
      if (Name.size() == 64)
        Chunks.push_back(Fan + "/" + Name);
  }
  if (Chunks.empty())
    return makeCodedError("EFAULT.MUTATE.EMPTY",
                          "no chunks to mutate in '%s'", Root.c_str());

  const std::string &Rel = Chunks[Rand.nextBelow(Chunks.size())];
  auto What =
      mutateFileInPlace(Root + "/chunks/" + Rel, ByteMut::FlipBit, Rand);
  if (!What)
    return What.takeError();
  return "chunk " + Rel.substr(3) + ": " + *What;
}
