//===- fault/FaultPlan.cpp ------------------------------------------------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "fault/FaultPlan.h"

#include <cstdlib>
#include <unistd.h>

using namespace elfie;
using namespace elfie::fault;

Expected<FaultSpec> elfie::fault::parseFaultSpec(const std::string &Text) {
  size_t C1 = Text.find(':');
  size_t C2 = Text.find(':', C1 == std::string::npos ? C1 : C1 + 1);
  if (C1 == std::string::npos || C2 == std::string::npos)
    return makeCodedError("EFAULT.SPEC.SYNTAX",
                          "bad fault spec '%s' (want op:nth:kind)",
                          Text.c_str());
  std::string OpText = Text.substr(0, C1);
  std::string NthText = Text.substr(C1 + 1, C2 - C1 - 1);
  std::string KindText = Text.substr(C2 + 1);

  FaultSpec S;
  if (OpText == "read")
    S.O = FaultSpec::Op::Read;
  else if (OpText == "write")
    S.O = FaultSpec::Op::Write;
  else
    return makeCodedError("EFAULT.SPEC.OP", "bad fault op '%s'",
                          OpText.c_str());

  char *End = nullptr;
  unsigned long long Nth = std::strtoull(NthText.c_str(), &End, 10);
  if (!End || *End != '\0' || Nth == 0)
    return makeCodedError("EFAULT.SPEC.NTH", "bad fault index '%s'",
                          NthText.c_str());
  S.Nth = Nth;

  if (KindText == "enospc")
    S.K = FaultSpec::Kind::Enospc;
  else if (KindText == "eio")
    S.K = FaultSpec::Kind::Eio;
  else if (KindText == "short")
    S.K = FaultSpec::Kind::Short;
  else if (KindText == "flip")
    S.K = FaultSpec::Kind::Flip;
  else if (KindText == "kill")
    S.K = FaultSpec::Kind::Kill;
  else
    return makeCodedError("EFAULT.SPEC.KIND", "bad fault kind '%s'",
                          KindText.c_str());
  return S;
}

Error FaultPlan::parse(const std::string &SpecText) {
  size_t Pos = 0;
  while (Pos < SpecText.size()) {
    size_t Comma = SpecText.find(',', Pos);
    std::string Clause = SpecText.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    Pos = Comma == std::string::npos ? SpecText.size() : Comma + 1;
    if (Clause.empty())
      continue;
    if (Clause.rfind("seed=", 0) == 0) {
      Rand.reseed(std::strtoull(Clause.c_str() + 5, nullptr, 10));
      continue;
    }
    auto S = parseFaultSpec(Clause);
    if (!S)
      return S.takeError();
    Specs.push_back(*S);
  }
  return Error::success();
}

Error FaultPlan::apply(const FaultSpec &S, const std::string &Path,
                       std::vector<uint8_t> &Data) {
  switch (S.K) {
  case FaultSpec::Kind::Enospc:
    return makeCodedError("EFAULT.IO.WRITE",
                          "injected: no space left on device on '%s'",
                          Path.c_str());
  case FaultSpec::Kind::Eio:
    return makeCodedError("EFAULT.IO.READ", "injected: I/O error on '%s'",
                          Path.c_str());
  case FaultSpec::Kind::Short:
    if (!Data.empty())
      Data.resize(Rand.nextBelow(Data.size()));
    return Error::success();
  case FaultSpec::Kind::Flip:
    if (!Data.empty())
      Data[Rand.nextBelow(Data.size())] ^=
          static_cast<uint8_t>(1u << Rand.nextBelow(8));
    return Error::success();
  case FaultSpec::Kind::Kill:
    // Simulated power loss: no destructors, no atexit, no flush.
    ::_exit(97);
  }
  return Error::success();
}

Error FaultPlan::onWrite(const std::string &Path,
                         std::vector<uint8_t> &Data) {
  ++Writes;
  for (const FaultSpec &S : Specs)
    if (S.O == FaultSpec::Op::Write && S.Nth == Writes)
      if (Error E = apply(S, Path, Data))
        return E;
  return Error::success();
}

Error FaultPlan::onRead(const std::string &Path,
                        std::vector<uint8_t> &Data) {
  ++Reads;
  for (const FaultSpec &S : Specs)
    if (S.O == FaultSpec::Op::Read && S.Nth == Reads)
      if (Error E = apply(S, Path, Data))
        return E;
  return Error::success();
}

bool elfie::fault::installFaultHookFromEnv() {
  const char *Spec = std::getenv("ELFIE_FAULT_SPEC");
  if (!Spec || !*Spec)
    return false;
  // Process-lifetime: the hook must outlive every I/O call in main().
  static FaultPlan *Plan = new FaultPlan();
  if (Error E = Plan->parse(Spec)) {
    std::fprintf(stderr, "ELFIE_FAULT_SPEC: %s\n", E.str().c_str());
    ::_exit(ExitUsage);
  }
  setIOFaultHook(Plan);
  return true;
}
