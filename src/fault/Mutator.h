//===- fault/Mutator.h - Systematic artifact corruption --------*- C++ -*-===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic corruption of on-disk artifacts (pinball directories and
/// ELF/ELFie files). Each seed maps to exactly one mutation, so a failing
/// seed reported by efault or a test reproduces bit-for-bit. The mutations
/// model the real failure surface: truncated tails (interrupted copy),
/// flipped bytes (media corruption), huge count fields (hostile or buggy
/// producer), deleted files (partial transfer), and patched headers.
///
//===----------------------------------------------------------------------===//

#ifndef ELFIE_FAULT_MUTATOR_H
#define ELFIE_FAULT_MUTATOR_H

#include "support/Error.h"

#include <string>

namespace elfie {
namespace fault {

/// Recursively copies directory \p From to \p To (which must not exist).
Error copyTree(const std::string &From, const std::string &To);

/// Applies the seed-determined mutation to the pinball directory \p Dir in
/// place. Returns a human-readable description of what was done, e.g.
/// "truncate sel.log 812 -> 113". The caller mutates a scratch copy.
Expected<std::string> mutatePinballDir(const std::string &Dir,
                                       uint64_t Seed);

/// Applies the seed-determined mutation to the ELF file at \p Path in
/// place. Returns a description of the mutation.
Expected<std::string> mutateElfFile(const std::string &Path, uint64_t Seed);

/// Applies the seed-determined mutation to the `.esimstate` warmup-
/// checkpoint sidecar at \p Path in place. Every kind is guaranteed to
/// change the file, and every kind maps to a definite EFAULT.SIMSTATE.*
/// rejection class: truncations and appended garbage (TRUNCATED), bit
/// flips (SEAL, or MAGIC when they land in the magic), magic scribbles
/// (MAGIC), and a hostile-producer kind that bumps the format version and
/// re-seals — a well-formed file from the future (VERSION). A sweep over
/// these seeds must therefore produce zero benign runs: a consumer that
/// accepts any mutated sidecar is failing open.
Expected<std::string> mutateSimStateFile(const std::string &Path,
                                         uint64_t Seed);

/// Applies the seed-determined mutation to the estore pool at \p Root:
/// most seeds flip one bit of one chunk (media corruption inside the
/// content-addressed pool; every consumer must reject the chunk with
/// EFAULT.STORE.DIGEST, never serve the bytes), a minority flip a byte of
/// a manifest (detected by the manifest seal as EFAULT.STORE.SEAL). The
/// description names the mutated file, so tests can assert scrub
/// quarantines exactly that chunk.
Expected<std::string> mutateStoreChunk(const std::string &Root,
                                       uint64_t Seed);

} // namespace fault
} // namespace elfie

#endif // ELFIE_FAULT_MUTATOR_H
