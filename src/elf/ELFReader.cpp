//===- elf/ELFReader.cpp --------------------------------------------------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "elf/ELFReader.h"

#include "support/FileIO.h"
#include "support/MappedFile.h"

#include <algorithm>
#include <cstring>

using namespace elfie;
using namespace elfie::elf;

Expected<ELFReader> ELFReader::parse(std::vector<uint8_t> Bytes) {
  // Move the bytes into a shared buffer the reader retains; all views
  // below borrow from it.
  auto Owned = std::make_shared<std::vector<uint8_t>>(std::move(Bytes));
  return parseView(std::span<const uint8_t>(Owned->data(), Owned->size()),
                   Owned);
}

Expected<ELFReader> ELFReader::parseView(std::span<const uint8_t> Bytes,
                                         std::shared_ptr<const void> Keep) {
  ELFReader R;
  R.Keepalive = std::move(Keep);
  if (Bytes.size() < sizeof(Elf64_Ehdr))
    return makeError("ELF file is truncated: %zu bytes, need at least %zu",
                     Bytes.size(), sizeof(Elf64_Ehdr));
  std::memcpy(&R.Header, Bytes.data(), sizeof(Elf64_Ehdr));
  const Elf64_Ehdr &H = R.Header;
  if (H.e_ident[EI_MAG0] != 0x7f || H.e_ident[EI_MAG1] != 'E' ||
      H.e_ident[EI_MAG2] != 'L' || H.e_ident[EI_MAG3] != 'F')
    return makeError("not an ELF file: bad magic");
  if (H.e_ident[EI_CLASS] != ELFCLASS64)
    return makeError("unsupported ELF class %u, only ELFCLASS64 is handled",
                     H.e_ident[EI_CLASS]);
  if (H.e_ident[EI_DATA] != ELFDATA2LSB)
    return makeError("unsupported ELF data encoding %u, only little-endian "
                     "is handled",
                     H.e_ident[EI_DATA]);

  auto InRange = [&](uint64_t Off, uint64_t Size) {
    return Off <= Bytes.size() && Size <= Bytes.size() - Off;
  };

  // Program headers.
  if (H.e_phnum) {
    if (H.e_phentsize != sizeof(Elf64_Phdr))
      return makeError("program header entry size is %u, expected %zu",
                       H.e_phentsize, sizeof(Elf64_Phdr));
    if (!InRange(H.e_phoff, uint64_t(H.e_phnum) * sizeof(Elf64_Phdr)))
      return makeError("program header table overruns the file");
    for (unsigned I = 0; I < H.e_phnum; ++I) {
      Elf64_Phdr P;
      std::memcpy(&P, Bytes.data() + H.e_phoff + I * sizeof(Elf64_Phdr),
                  sizeof(P));
      SegmentView V;
      V.Type = P.p_type;
      V.Flags = P.p_flags;
      V.VAddr = P.p_vaddr;
      V.FileSize = P.p_filesz;
      V.MemSize = P.p_memsz;
      if (P.p_filesz) {
        if (!InRange(P.p_offset, P.p_filesz))
          return makeError("segment %u payload overruns the file", I);
        V.Data = Bytes.subspan(P.p_offset, P.p_filesz);
      }
      R.Segments.push_back(std::move(V));
    }
  }

  // Section headers.
  std::vector<Elf64_Shdr> Shdrs;
  if (H.e_shnum) {
    if (H.e_shentsize != sizeof(Elf64_Shdr))
      return makeError("section header entry size is %u, expected %zu",
                       H.e_shentsize, sizeof(Elf64_Shdr));
    if (!InRange(H.e_shoff, uint64_t(H.e_shnum) * sizeof(Elf64_Shdr)))
      return makeError("section header table overruns the file");
    Shdrs.resize(H.e_shnum);
    std::memcpy(Shdrs.data(), Bytes.data() + H.e_shoff,
                H.e_shnum * sizeof(Elf64_Shdr));
  }

  // Section name string table.
  std::span<const uint8_t> ShStrTab;
  if (H.e_shstrndx != SHN_UNDEF) {
    if (H.e_shstrndx >= Shdrs.size())
      return makeError("e_shstrndx is %u but the file has only %zu section "
                       "headers",
                       H.e_shstrndx, Shdrs.size());
    const Elf64_Shdr &S = Shdrs[H.e_shstrndx];
    if (!InRange(S.sh_offset, S.sh_size))
      return makeError(".shstrtab overruns the file");
    ShStrTab = Bytes.subspan(S.sh_offset, S.sh_size);
    if (!ShStrTab.empty() && ShStrTab.back() != 0)
      return makeError(".shstrtab is not NUL-terminated");
  }
  auto NameAt = [&](uint32_t Off) -> std::string {
    if (Off >= ShStrTab.size())
      return std::string();
    const char *P = reinterpret_cast<const char *>(ShStrTab.data()) + Off;
    size_t MaxLen = ShStrTab.size() - Off;
    return std::string(P, strnlen(P, MaxLen));
  };

  int SymTabIdx = -1;
  for (size_t I = 0; I < Shdrs.size(); ++I) {
    const Elf64_Shdr &S = Shdrs[I];
    SectionView V;
    V.Name = NameAt(S.sh_name);
    V.Type = S.sh_type;
    V.Flags = S.sh_flags;
    V.Addr = S.sh_addr;
    V.Offset = S.sh_offset;
    V.Size = S.sh_size;
    if (S.sh_type != SHT_NOBITS && S.sh_type != SHT_NULL && S.sh_size) {
      if (!InRange(S.sh_offset, S.sh_size))
        return makeError("section %zu ('%s') is corrupt: size is %llu at "
                         "offset %llu which overruns the file",
                         I, V.Name.c_str(),
                         static_cast<unsigned long long>(S.sh_size),
                         static_cast<unsigned long long>(S.sh_offset));
      V.Data = Bytes.subspan(S.sh_offset, S.sh_size);
    }
    if (S.sh_type == SHT_SYMTAB)
      SymTabIdx = static_cast<int>(I);
    R.Sections.push_back(std::move(V));
  }

  // Symbols.
  if (SymTabIdx >= 0) {
    const Elf64_Shdr &S = Shdrs[SymTabIdx];
    uint32_t StrIdx = S.sh_link;
    if (StrIdx >= R.Sections.size())
      return makeError(".symtab sh_link is %u but the file has only %zu "
                       "sections",
                       StrIdx, R.Sections.size());
    std::span<const uint8_t> StrTab = R.Sections[StrIdx].Data;
    if (!StrTab.empty() && StrTab.back() != 0)
      return makeError(".symtab string table is not NUL-terminated");
    if (R.Sections[SymTabIdx].Data.size() % sizeof(Elf64_Sym) != 0)
      return makeError(".symtab size %zu is not a multiple of the symbol "
                       "entry size %zu",
                       R.Sections[SymTabIdx].Data.size(), sizeof(Elf64_Sym));
    auto SymName = [&](uint32_t Off) -> std::string {
      if (Off >= StrTab.size())
        return std::string();
      const char *P = reinterpret_cast<const char *>(StrTab.data()) + Off;
      return std::string(P, strnlen(P, StrTab.size() - Off));
    };
    std::span<const uint8_t> Payload = R.Sections[SymTabIdx].Data;
    size_t Count = Payload.size() / sizeof(Elf64_Sym);
    for (size_t I = 1; I < Count; ++I) { // skip the null symbol
      Elf64_Sym E;
      std::memcpy(&E, Payload.data() + I * sizeof(Elf64_Sym), sizeof(E));
      SymbolView V;
      V.Name = SymName(E.st_name);
      V.Value = E.st_value;
      V.Size = E.st_size;
      V.Info = E.st_info;
      V.SectionIndex = E.st_shndx;
      R.Syms.push_back(std::move(V));
    }
  }

  return R;
}

Expected<ELFReader> ELFReader::open(const std::string &Path) {
  auto MF = MappedFile::open(Path);
  if (!MF)
    return MF.takeError();
  auto File = std::make_shared<const MappedFile>(MF.takeValue());
  return parseView(File->span(), File);
}

const ELFReader::SectionView *
ELFReader::findSection(const std::string &Name) const {
  for (const SectionView &S : Sections)
    if (S.Name == Name)
      return &S;
  return nullptr;
}

const ELFReader::SymbolView *
ELFReader::findSymbol(const std::string &Name) const {
  for (const SymbolView &S : Syms)
    if (S.Name == Name)
      return &S;
  return nullptr;
}

const ELFReader::SectionView *
ELFReader::sectionContaining(uint64_t VAddr) const {
  for (const SectionView &S : Sections)
    if ((S.Flags & SHF_ALLOC) != 0 && VAddr >= S.Addr &&
        VAddr - S.Addr < S.Size)
      return &S;
  return nullptr;
}

const ELFReader::SegmentView *
ELFReader::segmentContaining(uint64_t VAddr) const {
  for (const SegmentView &Seg : Segments)
    if (Seg.Type == PT_LOAD && VAddr >= Seg.VAddr &&
        VAddr - Seg.VAddr < Seg.MemSize)
      return &Seg;
  return nullptr;
}

bool ELFReader::readAtVAddr(uint64_t VAddr, void *Out, size_t Size) const {
  if (Size == 0)
    return segmentContaining(VAddr) != nullptr;
  const SegmentView *Seg = segmentContaining(VAddr);
  if (!Seg || VAddr - Seg->VAddr + Size > Seg->MemSize)
    return false;
  uint64_t Off = VAddr - Seg->VAddr;
  uint8_t *Dst = static_cast<uint8_t *>(Out);
  // Bytes past p_filesz are zero-filled by the loader.
  size_t FromFile =
      Off < Seg->Data.size()
          ? std::min<size_t>(Size, Seg->Data.size() - static_cast<size_t>(Off))
          : 0;
  if (FromFile)
    std::memcpy(Dst, Seg->Data.data() + Off, FromFile);
  if (Size > FromFile)
    std::memset(Dst + FromFile, 0, Size - FromFile);
  return true;
}

std::span<const uint8_t> ELFReader::viewAtVAddr(uint64_t VAddr,
                                                size_t Size) const {
  const SegmentView *Seg = segmentContaining(VAddr);
  if (!Seg)
    return {};
  uint64_t Off = VAddr - Seg->VAddr;
  if (Size > Seg->Data.size() || Off > Seg->Data.size() - Size)
    return {}; // reaches into the zero-filled tail (or past the segment)
  return Seg->Data.subspan(Off, Size);
}

bool ELFReader::stringAtVAddr(uint64_t VAddr, std::string &Out,
                              size_t MaxLen) const {
  Out.clear();
  while (true) {
    const SegmentView *Seg = segmentContaining(VAddr);
    if (!Seg)
      return false;
    uint64_t Off = VAddr - Seg->VAddr;
    uint64_t InSeg = Seg->MemSize - Off;
    uint64_t InFile = Off < Seg->Data.size() ? Seg->Data.size() - Off : 0;
    // Scan the file-backed bytes for the terminator in one pass.
    if (InFile > 0) {
      size_t Scan = static_cast<size_t>(
          std::min<uint64_t>(MaxLen - Out.size(), InFile));
      const uint8_t *P = Seg->Data.data() + Off;
      if (const void *Nul = std::memchr(P, 0, Scan)) {
        Out.append(reinterpret_cast<const char *>(P),
                   static_cast<const uint8_t *>(Nul) - P);
        return true;
      }
      Out.append(reinterpret_cast<const char *>(P), Scan);
    }
    if (Out.size() >= MaxLen)
      return false; // no terminator within MaxLen
    if (InSeg > InFile)
      return true; // the zero-filled memsz tail terminates the string
    // The string runs to the segment's exact end; continue into whatever
    // segment (if any) maps the next address.
    VAddr += InSeg;
  }
}
