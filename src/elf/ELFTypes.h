//===- elf/ELFTypes.h - ELF64 on-disk structures ---------------*- C++ -*-===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ELF64 structures and constants, defined locally (rather than via
/// <elf.h>) because emitting ELF is part of what this project reproduces.
/// Follows the TIS ELF specification v1.2 and the System V gABI, 64-bit
/// little-endian class only — that is the only class the paper's tool
/// produces for ELFies (statically linked x86-64 executables) and the only
/// class our guest binaries use.
///
//===----------------------------------------------------------------------===//

#ifndef ELFIE_ELF_ELFTYPES_H
#define ELFIE_ELF_ELFTYPES_H

#include <cstdint>

namespace elfie {
namespace elf {

// e_ident layout.
enum : unsigned {
  EI_MAG0 = 0,
  EI_MAG1 = 1,
  EI_MAG2 = 2,
  EI_MAG3 = 3,
  EI_CLASS = 4,
  EI_DATA = 5,
  EI_VERSION = 6,
  EI_OSABI = 7,
  EI_NIDENT = 16
};

enum : uint8_t {
  ELFCLASS64 = 2,
  ELFDATA2LSB = 1,
  EV_CURRENT_BYTE = 1,
};

// Object file types.
enum : uint16_t {
  ET_NONE = 0,
  ET_REL = 1,
  ET_EXEC = 2,
  ET_DYN = 3,
};

// Machine types. EM_EG64 is our private guest-machine value (in the range
// reserved for unofficial use); native ELFies use EM_X86_64.
enum : uint16_t {
  EM_NONE = 0,
  EM_X86_64 = 62,
  EM_EG64 = 0x4547, // "EG"
};

// Section types.
enum : uint32_t {
  SHT_NULL = 0,
  SHT_PROGBITS = 1,
  SHT_SYMTAB = 2,
  SHT_STRTAB = 3,
  SHT_NOBITS = 8,
  SHT_NOTE = 7,
};

// Section flags.
enum : uint64_t {
  SHF_WRITE = 0x1,
  SHF_ALLOC = 0x2,
  SHF_EXECINSTR = 0x4,
};

// Segment types.
enum : uint32_t {
  PT_NULL = 0,
  PT_LOAD = 1,
  PT_NOTE = 4,
  PT_GNU_STACK = 0x6474e551,
};

// Segment flags.
enum : uint32_t {
  PF_X = 0x1,
  PF_W = 0x2,
  PF_R = 0x4,
};

// Symbol binding / type helpers.
enum : uint8_t {
  STB_LOCAL = 0,
  STB_GLOBAL = 1,
  STT_NOTYPE = 0,
  STT_OBJECT = 1,
  STT_FUNC = 2,
  STT_SECTION = 3,
};
inline uint8_t makeSymbolInfo(uint8_t Bind, uint8_t Type) {
  return static_cast<uint8_t>((Bind << 4) | (Type & 0xf));
}

enum : uint16_t { SHN_UNDEF = 0, SHN_ABS = 0xfff1 };

struct Elf64_Ehdr {
  uint8_t e_ident[EI_NIDENT];
  uint16_t e_type;
  uint16_t e_machine;
  uint32_t e_version;
  uint64_t e_entry;
  uint64_t e_phoff;
  uint64_t e_shoff;
  uint32_t e_flags;
  uint16_t e_ehsize;
  uint16_t e_phentsize;
  uint16_t e_phnum;
  uint16_t e_shentsize;
  uint16_t e_shnum;
  uint16_t e_shstrndx;
};
static_assert(sizeof(Elf64_Ehdr) == 64, "ELF header must be 64 bytes");

struct Elf64_Phdr {
  uint32_t p_type;
  uint32_t p_flags;
  uint64_t p_offset;
  uint64_t p_vaddr;
  uint64_t p_paddr;
  uint64_t p_filesz;
  uint64_t p_memsz;
  uint64_t p_align;
};
static_assert(sizeof(Elf64_Phdr) == 56, "program header must be 56 bytes");

struct Elf64_Shdr {
  uint32_t sh_name;
  uint32_t sh_type;
  uint64_t sh_flags;
  uint64_t sh_addr;
  uint64_t sh_offset;
  uint64_t sh_size;
  uint32_t sh_link;
  uint32_t sh_info;
  uint64_t sh_addralign;
  uint64_t sh_entsize;
};
static_assert(sizeof(Elf64_Shdr) == 64, "section header must be 64 bytes");

struct Elf64_Sym {
  uint32_t st_name;
  uint8_t st_info;
  uint8_t st_other;
  uint16_t st_shndx;
  uint64_t st_value;
  uint64_t st_size;
};
static_assert(sizeof(Elf64_Sym) == 24, "symbol entry must be 24 bytes");

/// Page size used for segment alignment in emitted executables.
constexpr uint64_t PageSize = 4096;

inline uint64_t alignUp(uint64_t V, uint64_t A) {
  return (V + A - 1) & ~(A - 1);
}
inline uint64_t alignDown(uint64_t V, uint64_t A) { return V & ~(A - 1); }

} // namespace elf
} // namespace elfie

#endif // ELFIE_ELF_ELFTYPES_H
