//===- elf/ELFReader.h - ELF64 parsing --------------------------*- C++ -*-===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses ELF64 little-endian files: headers, sections, segments, symbols.
/// Used by the EVM loader (guest executables), by tests that inspect
/// emitted ELFies, and by the simulators' binary-driven front-ends.
///
//===----------------------------------------------------------------------===//

#ifndef ELFIE_ELF_ELFREADER_H
#define ELFIE_ELF_ELFREADER_H

#include "elf/ELFTypes.h"
#include "support/Error.h"

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace elfie {
namespace elf {

/// A parsed view of an ELF64 file. Sections, segments, and vaddr queries
/// are zero-copy views into the underlying bytes — an mmap'd file for
/// open(), a shared buffer for parse() — kept alive by the reader (see
/// backing()). parseView() callers may instead manage the lifetime
/// themselves.
class ELFReader {
public:
  struct SectionView {
    std::string Name;
    uint32_t Type = 0;
    uint64_t Flags = 0;
    uint64_t Addr = 0;
    uint64_t Offset = 0;
    uint64_t Size = 0;
    /// Section payload, a view into the file bytes (empty for NOBITS).
    std::span<const uint8_t> Data;
  };

  struct SegmentView {
    uint32_t Type = 0;
    uint32_t Flags = 0;
    uint64_t VAddr = 0;
    uint64_t FileSize = 0;
    uint64_t MemSize = 0;
    /// File payload for the segment, a view into the file bytes
    /// (FileSize bytes).
    std::span<const uint8_t> Data;
  };

  struct SymbolView {
    std::string Name;
    uint64_t Value = 0;
    uint64_t Size = 0;
    uint8_t Info = 0;
    uint16_t SectionIndex = 0;
  };

  /// Parses \p Bytes (taking ownership); fails with a section-header-style
  /// diagnostic on malformed input (wrong magic/class, truncated tables,
  /// bad offsets).
  static Expected<ELFReader> parse(std::vector<uint8_t> Bytes);

  /// Parses a borrowed view of the file bytes. When \p Keepalive is null
  /// the caller must keep \p Bytes valid for the reader's whole lifetime;
  /// otherwise the reader retains \p Keepalive (e.g. the MappedFile the
  /// span points into) and is self-contained.
  static Expected<ELFReader>
  parseView(std::span<const uint8_t> Bytes,
            std::shared_ptr<const void> Keepalive = nullptr);

  /// Convenience: mmap + parse a file (zero-copy; the mapping is retained
  /// by the reader).
  static Expected<ELFReader> open(const std::string &Path);

  /// The object keeping the viewed bytes alive; null for parseView()
  /// without a keepalive (caller-managed lifetime). Consumers that outlive
  /// the reader (e.g. the VM loader) retain this.
  std::shared_ptr<const void> backing() const { return Keepalive; }

  uint16_t fileType() const { return Header.e_type; }
  uint16_t machine() const { return Header.e_machine; }
  uint64_t entry() const { return Header.e_entry; }

  const std::vector<SectionView> &sections() const { return Sections; }
  const std::vector<SegmentView> &segments() const { return Segments; }
  const std::vector<SymbolView> &symbols() const { return Syms; }

  /// Finds a section by name; null when absent.
  const SectionView *findSection(const std::string &Name) const;

  /// Finds a symbol by name; null when absent.
  const SymbolView *findSymbol(const std::string &Name) const;

  /// Finds the ALLOC section whose [Addr, Addr+Size) range contains \p VAddr;
  /// null when no loaded section covers it.
  const SectionView *sectionContaining(uint64_t VAddr) const;

  /// Finds the PT_LOAD segment whose [VAddr, VAddr+MemSize) range contains
  /// \p VAddr; null when the address is not loader-mapped.
  const SegmentView *segmentContaining(uint64_t VAddr) const;

  /// Reads \p Size bytes of loaded memory at \p VAddr as the system loader
  /// would have mapped it (PT_LOAD payload, zero-filled past p_filesz).
  /// Returns false when the range is not fully covered by one segment.
  bool readAtVAddr(uint64_t VAddr, void *Out, size_t Size) const;

  /// Zero-copy variant of readAtVAddr: a view of the file bytes backing
  /// [VAddr, VAddr + Size). Empty when the range is not fully inside one
  /// segment's *file* payload (ranges reaching into the zero-filled memsz
  /// tail need readAtVAddr).
  std::span<const uint8_t> viewAtVAddr(uint64_t VAddr, size_t Size) const;

  /// Reads a NUL-terminated string from loaded memory at \p VAddr. Returns
  /// false when the address is unmapped or no terminator appears within
  /// \p MaxLen bytes of mapped memory.
  bool stringAtVAddr(uint64_t VAddr, std::string &Out,
                     size_t MaxLen = 4096) const;

private:
  Elf64_Ehdr Header{};
  std::vector<SectionView> Sections;
  std::vector<SegmentView> Segments;
  std::vector<SymbolView> Syms;
  std::shared_ptr<const void> Keepalive;
};

} // namespace elf
} // namespace elfie

#endif // ELFIE_ELF_ELFREADER_H
