//===- elf/ELFWriter.cpp --------------------------------------------------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "elf/ELFWriter.h"

#include "support/FileIO.h"

#include <algorithm>
#include <cstring>
#include <map>

using namespace elfie;
using namespace elfie::elf;

unsigned ELFWriter::addSection(const std::string &Name, uint64_t Flags,
                               uint64_t VAddr, std::vector<uint8_t> Data,
                               uint64_t Align) {
  Section S;
  S.Name = Name;
  S.ShType = SHT_PROGBITS;
  S.Flags = Flags;
  S.VAddr = VAddr;
  S.Size = Data.size();
  S.Align = Align;
  S.Data = std::move(Data);
  Sections.push_back(std::move(S));
  // +1 accounts for the implicit SHT_NULL section emitted at index 0.
  return static_cast<unsigned>(Sections.size());
}

unsigned ELFWriter::addSectionChunks(
    const std::string &Name, uint64_t Flags, uint64_t VAddr,
    std::vector<std::span<const uint8_t>> Chunks, uint64_t Align) {
  Section S;
  S.Name = Name;
  S.ShType = SHT_PROGBITS;
  S.Flags = Flags;
  S.VAddr = VAddr;
  S.Align = Align;
  uint64_t Total = 0;
  for (const auto &C : Chunks)
    Total += C.size();
  S.Size = Total;
  S.Chunks = std::move(Chunks);
  Sections.push_back(std::move(S));
  return static_cast<unsigned>(Sections.size());
}

unsigned ELFWriter::addNoBitsSection(const std::string &Name, uint64_t Flags,
                                     uint64_t VAddr, uint64_t Size,
                                     uint64_t Align) {
  Section S;
  S.Name = Name;
  S.ShType = SHT_NOBITS;
  S.Flags = Flags;
  S.VAddr = VAddr;
  S.Size = Size;
  S.Align = Align;
  Sections.push_back(std::move(S));
  return static_cast<unsigned>(Sections.size());
}

void ELFWriter::addSymbol(const std::string &Name, uint64_t Value,
                          unsigned SectionIndex, uint8_t Bind,
                          uint8_t SymType, uint64_t Size) {
  Symbols.push_back(
      {Name, Value, SectionIndex, makeSymbolInfo(Bind, SymType), Size});
}

namespace {

/// Accumulates a string table; offset 0 is always the empty string.
class StringTableBuilder {
public:
  StringTableBuilder() { Bytes.push_back('\0'); }
  uint32_t add(const std::string &S) {
    if (S.empty())
      return 0;
    auto It = Offsets.find(S);
    if (It != Offsets.end())
      return It->second;
    uint32_t Off = static_cast<uint32_t>(Bytes.size());
    Bytes.insert(Bytes.end(), S.begin(), S.end());
    Bytes.push_back('\0');
    Offsets.emplace(S, Off);
    return Off;
  }
  std::vector<uint8_t> take() { return std::move(Bytes); }

private:
  std::vector<uint8_t> Bytes;
  std::map<std::string, uint32_t> Offsets;
};

} // namespace

Expected<std::vector<uint8_t>> ELFWriter::finalize() {
  // Refuse to emit an executable whose loadable sections collide: the
  // loader would map the later PT_LOAD over the earlier one and the ELFie
  // would silently run on corrupted state. (ET_REL objects conventionally
  // carry sh_addr 0 everywhere, so the check applies to executables only;
  // analyze/LayoutPass is the independent second opinion on emitted files.)
  if (Type == ET_EXEC) {
    struct Range {
      uint64_t Lo, Hi;
      const Section *S;
    };
    std::vector<Range> Ranges;
    for (const Section &S : Sections)
      if ((S.Flags & SHF_ALLOC) != 0 && S.Size)
        Ranges.push_back({S.VAddr, S.VAddr + S.Size, &S});
    std::sort(Ranges.begin(), Ranges.end(),
              [](const Range &A, const Range &B) { return A.Lo < B.Lo; });
    for (size_t I = 1; I < Ranges.size(); ++I)
      if (Ranges[I].Lo < Ranges[I - 1].Hi)
        return makeError(
            "ALLOC sections '%s' [%#llx, %#llx) and '%s' [%#llx, %#llx) "
            "overlap; the loader would map one over the other",
            Ranges[I - 1].S->Name.c_str(),
            static_cast<unsigned long long>(Ranges[I - 1].Lo),
            static_cast<unsigned long long>(Ranges[I - 1].Hi),
            Ranges[I].S->Name.c_str(),
            static_cast<unsigned long long>(Ranges[I].Lo),
            static_cast<unsigned long long>(Ranges[I].Hi));
  }

  // Build .symtab/.strtab section payloads first so they can participate in
  // the generic layout below. The writer appends them as trailing non-ALLOC
  // sections; .shstrtab goes last.
  StringTableBuilder SymStrings;
  std::vector<Elf64_Sym> SymEntries;
  SymEntries.push_back(Elf64_Sym{}); // index 0: undefined symbol
  // Local symbols must precede globals per the gABI; sort stably.
  std::vector<Symbol> Sorted = Symbols;
  std::stable_sort(Sorted.begin(), Sorted.end(),
                   [](const Symbol &A, const Symbol &B) {
                     return (A.Info >> 4) < (B.Info >> 4);
                   });
  uint32_t FirstGlobal = 1;
  for (const Symbol &Sym : Sorted) {
    Elf64_Sym E{};
    E.st_name = SymStrings.add(Sym.Name);
    E.st_info = Sym.Info;
    E.st_shndx = static_cast<uint16_t>(Sym.SectionIndex);
    E.st_value = Sym.Value;
    E.st_size = Sym.Size;
    if ((Sym.Info >> 4) == STB_LOCAL)
      ++FirstGlobal;
    SymEntries.push_back(E);
  }

  struct OutSection {
    const Section *Src = nullptr; // null for synthesized sections
    std::string Name;
    uint32_t ShType = SHT_PROGBITS;
    uint64_t Flags = 0;
    uint64_t VAddr = 0;
    uint64_t Size = 0;
    uint64_t Align = 1;
    uint64_t Link = 0, Info = 0, EntSize = 0;
    std::vector<uint8_t> OwnedData;
    const std::vector<uint8_t> *Data = nullptr;
    uint64_t FileOffset = 0;
  };

  std::vector<OutSection> Out;
  for (const Section &S : Sections) {
    OutSection O;
    O.Src = &S;
    O.Name = S.Name;
    O.ShType = S.ShType;
    O.Flags = S.Flags;
    O.VAddr = S.VAddr;
    O.Size = S.Size;
    O.Align = S.Align;
    O.Data = &S.Data;
    Out.push_back(std::move(O));
  }

  // .symtab
  {
    OutSection O;
    O.Name = ".symtab";
    O.ShType = SHT_SYMTAB;
    O.Align = 8;
    O.EntSize = sizeof(Elf64_Sym);
    O.Info = FirstGlobal; // index of the first non-local symbol
    O.Link = static_cast<uint64_t>(Out.size()) + 2; // .strtab comes next
    O.OwnedData.resize(SymEntries.size() * sizeof(Elf64_Sym));
    std::memcpy(O.OwnedData.data(), SymEntries.data(), O.OwnedData.size());
    O.Size = O.OwnedData.size();
    O.Data = &O.OwnedData;
    Out.push_back(std::move(O));
  }
  // .strtab
  {
    OutSection O;
    O.Name = ".strtab";
    O.ShType = SHT_STRTAB;
    O.OwnedData = SymStrings.take();
    O.Size = O.OwnedData.size();
    O.Data = &O.OwnedData;
    Out.push_back(std::move(O));
  }
  // .shstrtab
  StringTableBuilder SectionNames;
  for (OutSection &O : Out)
    SectionNames.add(O.Name);
  SectionNames.add(".shstrtab");
  {
    OutSection O;
    O.Name = ".shstrtab";
    O.ShType = SHT_STRTAB;
    O.OwnedData = SectionNames.take();
    O.Size = O.OwnedData.size();
    O.Data = &O.OwnedData;
    Out.push_back(std::move(O));
  }
  // Data pointers into OwnedData were set before the vector moves above;
  // re-point them now that Out is stable.
  for (OutSection &O : Out)
    if (!O.Src && !O.OwnedData.empty())
      O.Data = &O.OwnedData;

  // Count loadable sections to size the program header table.
  unsigned NumLoad = 0;
  for (const OutSection &O : Out)
    if ((O.Flags & SHF_ALLOC) != 0)
      ++NumLoad;
  bool IsExec = Type == ET_EXEC;
  unsigned PhNum = IsExec ? NumLoad : 0;

  uint64_t PhOff = sizeof(Elf64_Ehdr);
  uint64_t Cursor = PhOff + uint64_t(PhNum) * sizeof(Elf64_Phdr);

  // Assign file offsets. Loadable PROGBITS sections must be placed so that
  // offset == vaddr (mod page size); everything else just needs alignment.
  for (OutSection &O : Out) {
    if (O.ShType == SHT_NOBITS) {
      O.FileOffset = Cursor; // conventional; no bytes occupied
      continue;
    }
    if ((O.Flags & SHF_ALLOC) != 0 && IsExec) {
      // Use the smallest offset >= Cursor congruent to VAddr mod page.
      uint64_t Base = alignDown(Cursor, PageSize);
      uint64_t Candidate = Base + (O.VAddr & (PageSize - 1));
      if (Candidate < Cursor)
        Candidate += PageSize;
      O.FileOffset = Candidate;
    } else {
      uint64_t A = std::max<uint64_t>(O.Align, 1);
      O.FileOffset = alignUp(Cursor, A);
    }
    Cursor = O.FileOffset + O.Size;
  }

  uint64_t ShOff = alignUp(Cursor, 8);
  uint64_t ShNum = Out.size() + 1; // + null section

  std::vector<uint8_t> Image(ShOff + ShNum * sizeof(Elf64_Shdr), 0);

  // ELF header.
  Elf64_Ehdr Ehdr{};
  Ehdr.e_ident[EI_MAG0] = 0x7f;
  Ehdr.e_ident[EI_MAG1] = 'E';
  Ehdr.e_ident[EI_MAG2] = 'L';
  Ehdr.e_ident[EI_MAG3] = 'F';
  Ehdr.e_ident[EI_CLASS] = ELFCLASS64;
  Ehdr.e_ident[EI_DATA] = ELFDATA2LSB;
  Ehdr.e_ident[EI_VERSION] = EV_CURRENT_BYTE;
  Ehdr.e_type = Type;
  Ehdr.e_machine = Machine;
  Ehdr.e_version = 1;
  Ehdr.e_entry = Entry;
  Ehdr.e_phoff = PhNum ? PhOff : 0;
  Ehdr.e_shoff = ShOff;
  Ehdr.e_ehsize = sizeof(Elf64_Ehdr);
  Ehdr.e_phentsize = sizeof(Elf64_Phdr);
  Ehdr.e_phnum = static_cast<uint16_t>(PhNum);
  Ehdr.e_shentsize = sizeof(Elf64_Shdr);
  Ehdr.e_shnum = static_cast<uint16_t>(ShNum);
  Ehdr.e_shstrndx = static_cast<uint16_t>(ShNum - 1);
  std::memcpy(Image.data(), &Ehdr, sizeof(Ehdr));

  // Program headers: one PT_LOAD per ALLOC section.
  if (PhNum) {
    Elf64_Phdr *Ph = reinterpret_cast<Elf64_Phdr *>(Image.data() + PhOff);
    for (const OutSection &O : Out) {
      if ((O.Flags & SHF_ALLOC) == 0)
        continue;
      Elf64_Phdr P{};
      P.p_type = PT_LOAD;
      P.p_flags = PF_R;
      if (O.Flags & SHF_WRITE)
        P.p_flags |= PF_W;
      if (O.Flags & SHF_EXECINSTR)
        P.p_flags |= PF_X;
      P.p_offset = O.ShType == SHT_NOBITS ? 0 : O.FileOffset;
      P.p_vaddr = O.VAddr;
      P.p_paddr = O.VAddr;
      P.p_filesz = O.ShType == SHT_NOBITS ? 0 : O.Size;
      P.p_memsz = O.Size;
      P.p_align = PageSize;
      *Ph++ = P;
    }
  }

  // Section bodies. Chunked sections (page runs borrowed from a pinball
  // MemImage) are written view by view — no staging concatenation ever
  // exists; the result is byte-identical to an owned-payload section.
  for (const OutSection &O : Out) {
    if (O.ShType == SHT_NOBITS || O.Size == 0)
      continue;
    uint8_t *W = Image.data() + O.FileOffset;
    if (O.Src && !O.Src->Chunks.empty()) {
      for (const auto &C : O.Src->Chunks) {
        std::memcpy(W, C.data(), C.size());
        W += C.size();
      }
    } else {
      std::memcpy(W, O.Data->data(), O.Size);
    }
  }

  // Section header table. Recompute name offsets against the emitted
  // .shstrtab payload (the builder dedups, so add() is idempotent).
  StringTableBuilder NameLookup;
  for (const OutSection &O : Out)
    NameLookup.add(O.Name);
  NameLookup.add(".shstrtab");

  Elf64_Shdr *Sh = reinterpret_cast<Elf64_Shdr *>(Image.data() + ShOff);
  *Sh++ = Elf64_Shdr{}; // null section
  for (const OutSection &O : Out) {
    Elf64_Shdr H{};
    H.sh_name = NameLookup.add(O.Name);
    H.sh_type = O.ShType;
    H.sh_flags = O.Flags;
    H.sh_addr = O.VAddr;
    H.sh_offset = O.FileOffset;
    H.sh_size = O.Size;
    H.sh_link = static_cast<uint32_t>(O.Link);
    H.sh_info = static_cast<uint32_t>(O.Info);
    H.sh_addralign = O.Align;
    H.sh_entsize = O.EntSize;
    *Sh++ = H;
  }

  return Image;
}

Error ELFWriter::writeToFile(const std::string &Path) {
  auto Image = finalize();
  if (!Image)
    return Image.takeError();
  if (Error E = writeFile(Path, Image->data(), Image->size()))
    return E;
  if (Type == ET_EXEC)
    return makeExecutable(Path);
  return Error::success();
}
