//===- elf/ELFWriter.h - ELF64 executable/object emission ------*- C++ -*-===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds ELF64 files section by section, the way pinball2elf does (paper
/// §II-B2, Fig. 3): each run of consecutive pages from a pinball memory
/// image becomes a section placed at its original virtual address; ALLOC
/// sections are covered by PT_LOAD program headers (one per section, page
/// aligned, offset congruent to vaddr); non-ALLOC sections carry data that
/// the system loader must NOT map (the checkpointed stack pages, §II-B3).
/// Also emits .symtab/.strtab so ELFies can be inspected with standard
/// binutils-style tools.
///
//===----------------------------------------------------------------------===//

#ifndef ELFIE_ELF_ELFWRITER_H
#define ELFIE_ELF_ELFWRITER_H

#include "elf/ELFTypes.h"
#include "support/Error.h"

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace elfie {
namespace elf {

/// Incrementally builds and serializes an ELF64 file.
class ELFWriter {
public:
  /// \p Type is ET_EXEC for ELFies/guest executables, ET_REL for objects.
  ELFWriter(uint16_t Type, uint16_t Machine) : Type(Type), Machine(Machine) {}

  /// Sets the program entry point (ET_EXEC only).
  void setEntry(uint64_t Entry) { this->Entry = Entry; }

  /// Adds a PROGBITS section. If \p Flags contains SHF_ALLOC the section is
  /// also covered by a PT_LOAD segment at \p VAddr. Returns section index.
  unsigned addSection(const std::string &Name, uint64_t Flags, uint64_t VAddr,
                      std::vector<uint8_t> Data, uint64_t Align = 8);

  /// Zero-copy variant of addSection: the payload is the concatenation of
  /// \p Chunks, which are *borrowed* views (typically page runs of a
  /// pinball MemImage). The caller must keep the viewed bytes alive until
  /// finalize()/writeToFile(); emission writes them straight into the file
  /// image with no staging copy. Emitted bytes are identical to an
  /// addSection call with the concatenated payload.
  unsigned addSectionChunks(const std::string &Name, uint64_t Flags,
                            uint64_t VAddr,
                            std::vector<std::span<const uint8_t>> Chunks,
                            uint64_t Align = 8);

  /// Adds a NOBITS (.bss-like) section of \p Size zero bytes at \p VAddr.
  unsigned addNoBitsSection(const std::string &Name, uint64_t Flags,
                            uint64_t VAddr, uint64_t Size,
                            uint64_t Align = 8);

  /// Adds a symbol. \p SectionIndex is a value previously returned by
  /// addSection/addNoBitsSection, or SHN_ABS for absolute symbols.
  void addSymbol(const std::string &Name, uint64_t Value,
                 unsigned SectionIndex, uint8_t Bind = STB_GLOBAL,
                 uint8_t SymType = STT_NOTYPE, uint64_t Size = 0);

  /// Serializes the file image. Fails when the described file would be
  /// structurally broken: for ET_EXEC, two ALLOC sections whose vaddr
  /// ranges overlap would make the loader map one on top of the other
  /// (exactly the silent corruption the ELFie layout of paper §II-B2/§II-B3
  /// must avoid), so that is a hard error rather than an emitted file.
  Expected<std::vector<uint8_t>> finalize();

  /// Serializes and writes to \p Path; marks executables runnable.
  Error writeToFile(const std::string &Path);

private:
  struct Section {
    std::string Name;
    uint32_t ShType;
    uint64_t Flags;
    uint64_t VAddr;
    uint64_t Size; // NOBITS: zero bytes; else Data.size() or sum of Chunks
    uint64_t Align;
    std::vector<uint8_t> Data; // owned payload (addSection)
    /// Borrowed payload views (addSectionChunks); emitted in order.
    std::vector<std::span<const uint8_t>> Chunks;
  };
  struct Symbol {
    std::string Name;
    uint64_t Value;
    unsigned SectionIndex;
    uint8_t Info;
    uint64_t Size;
  };

  uint16_t Type;
  uint16_t Machine;
  uint64_t Entry = 0;
  std::vector<Section> Sections; // index 0 is the implicit null section
  std::vector<Symbol> Symbols;
};

} // namespace elf
} // namespace elfie

#endif // ELFIE_ELF_ELFWRITER_H
