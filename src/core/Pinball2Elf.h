//===- core/Pinball2Elf.h - Pinball -> ELFie conversion ---------*- C++ -*-===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// pinball2elf: the paper's primary contribution (§II-B). Converts a
/// (preferably fat) pinball into a stand-alone, statically linked ELF
/// executable — an **ELFie** — that starts with the exact program state
/// captured at the region start and then runs unconstrained.
///
/// Two targets are emitted from the same pinball (DESIGN.md §2):
///
///  * **Native x86-64** (`Target::NativeX86`): a real Linux executable.
///    Pinball pages become PT_LOAD segments at their original virtual
///    addresses; stack pages are stashed in a relocated segment and
///    remapped by startup code (the stack-collision workaround of §II-B3,
///    Figs. 4/5); the checkpointed EG64 code pages are AOT-translated to
///    x86-64; per-thread context blocks live in a data section (Fig. 3)
///    and startup `clone()`s one thread per checkpointed thread (Fig. 6);
///    graceful exit decrements a per-thread retired-instruction budget
///    (§II-C1); optional `perfle` reporting prints retired instructions
///    and rdtsc cycles per thread at exit (§III-B); `sysstate` descriptor
///    proxies are pre-opened and dup()ed at startup (§II-C2).
///
///  * **Guest EG64** (`Target::Guest`): an EG64 executable with startup
///    code in guest assembly, consumed unmodified by the EVM and by the
///    esim simulators — the role x86 ELFies play for x86 simulators
///    (§III-C, §IV).
///
//===----------------------------------------------------------------------===//

#ifndef ELFIE_CORE_PINBALL2ELF_H
#define ELFIE_CORE_PINBALL2ELF_H

#include "isa/ISA.h"
#include "pinball/Pinball.h"
#include "support/Error.h"
#include "sysstate/SysState.h"

#include <cstdint>
#include <string>
#include <vector>

namespace elfie {
namespace core {

/// Conversion options (pinball2elf command-line surface).
struct Pinball2ElfOptions {
  /// NativeX86/Guest emit runnable executables; Object emits an ET_REL
  /// relocatable object holding the pinball pages and packed thread
  /// contexts *without* startup code, for users who link their own
  /// startup against the layout script (paper §II-B5).
  enum class Target { NativeX86, Guest, Object };
  Target TargetKind = Target::NativeX86;

  /// Emit the per-instruction retired-count countdown and exit each thread
  /// at its pinball budget. Disable when an external tool (simulator) ends
  /// the region instead (§II-C1).
  bool EmitICountChecks = true;

  /// libperfle-style reporting: at thread exit write
  /// "elfie-perf: thread <t> retired <n> cycles <c>" to stderr (§III-B).
  bool Perfle = false;

  /// elfie_on_start banner on stderr.
  bool Verbose = false;

  /// ROI markers: `--roi-start [TYPE:]TAG` (§II-B5).
  bool EmitMarkers = true;
  isa::MarkerKind MarkerType = isa::MarkerKind::SSC;
  int32_t MarkerTag = isa::MarkerTagRoiStart;

  /// When set, embed sysstate descriptor preopens computed from the
  /// pinball (FD_<n> proxies dup()ed at startup). The emitted ELFie must
  /// then run with the sysstate workdir as its current directory.
  bool EmbedSysstate = false;

  /// Functional-warming length baked into the ELFie as the SHN_ABS
  /// `elfie_warmup_length` symbol (0 = no symbol): simulators that honor
  /// it warm caches/TLBs/predictors over the first N post-marker
  /// instructions before detailed simulation (DESIGN.md §16). Part of the
  /// region length, so it must stay below the pinball's region budget.
  uint64_t WarmupLength = 0;

  /// Maximum threads the region may create dynamically via clone().
  unsigned MaxDynThreads = 56;

  /// Watchdog timeout in seconds for the native ELFie's alarm(2) guard
  /// (divergence containment: a runaway region dies with the documented
  /// ungraceful-exit report instead of hanging forever). 0 scales the
  /// timeout from the region's retired-instruction budget.
  uint64_t WatchdogSecs = 0;
};

/// Fixed virtual-address layout of the native ELFie's own runtime (chosen
/// to be disjoint from any guest address and from the host stack/vdso).
struct NativeLayout {
  static constexpr uint64_t HostCodeBase = 0x10000000000ull;  // 1 TiB
  static constexpr uint64_t HostDataBase = 0x10100000000ull;
  static constexpr uint64_t HostStackBase = 0x10200000000ull;
  static constexpr uint64_t StashBase = 0x10300000000ull;
  static constexpr uint64_t HostStackSize = 1ull << 16; // per thread slot
  /// Per-thread alternate signal stacks (fault containment): the runtime's
  /// SIGSEGV/SIGBUS/SIGILL/SIGFPE handlers run here, so a blown guest
  /// stack still produces the structured elfie-fault report.
  static constexpr uint64_t AltStackBase = 0x10400000000ull;
  static constexpr uint64_t AltStackSize = 1ull << 14; // per thread slot
};

/// Guest-target ELFie startup placement.
struct GuestLayout {
  static constexpr uint64_t StartupBase = 0xE0000000ull;
};

/// Converts \p PB into an ELFie image per \p Opts.
Expected<std::vector<uint8_t>>
pinballToElf(const pinball::Pinball &PB, const Pinball2ElfOptions &Opts);

/// Converts and writes an executable file.
Error pinballToElfFile(const pinball::Pinball &PB,
                       const Pinball2ElfOptions &Opts,
                       const std::string &OutPath);

/// Renders the memory layout of the would-be ELFie in linker-script style
/// (paper §II-B5: pinball2elf writes a linker script exposing the parent
/// pinball's layout).
std::string describeLayout(const pinball::Pinball &PB,
                           const Pinball2ElfOptions &Opts);

// Implemented in NativeElfie.cpp / GuestElfie.cpp.
Expected<std::vector<uint8_t>>
emitNativeElfie(const pinball::Pinball &PB, const Pinball2ElfOptions &Opts);
Expected<std::vector<uint8_t>>
emitGuestElfie(const pinball::Pinball &PB, const Pinball2ElfOptions &Opts);
Expected<std::vector<uint8_t>>
emitElfieObject(const pinball::Pinball &PB, const Pinball2ElfOptions &Opts);

} // namespace core
} // namespace elfie

#endif // ELFIE_CORE_PINBALL2ELF_H
