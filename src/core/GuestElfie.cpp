//===- core/GuestElfie.cpp - guest-target (EG64) ELFie emission -----------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// Emits an EG64 ELFie: a guest executable that any binary-driven tool
/// (the EVM, the esim simulators) runs unmodified — the role x86 ELFies
/// play for x86 simulators in the paper (§III-C). The startup code is
/// generated EG64 assembly: it clone()s the checkpointed threads and each
/// thread entry restores its full register context from immediates before
/// jumping to the captured pc (`jalr r0, r0, pc` — r0 is the zero
/// register, so the jump needs no live register; cf. paper Fig. 6 where
/// per-thread entry code embeds the 'real' sp and pc).
///
//===----------------------------------------------------------------------===//

#include "core/Pinball2Elf.h"

#include "easm/Assembler.h"
#include "elf/ELFWriter.h"
#include "support/Format.h"

#include <algorithm>
#include <cstring>

using namespace elfie;
using namespace elfie::core;
using pinball::PageRecord;
using pinball::Pinball;

namespace {

/// Emits `li rN, imm64` as text.
std::string li(const std::string &RegName, uint64_t Value) {
  return formatString("  li %s, %lld\n", RegName.c_str(),
                      static_cast<long long>(Value));
}

std::string buildStartupAsm(const Pinball &PB,
                            const Pinball2ElfOptions &Opts) {
  std::string S;
  S += formatString("  .text\n  .org 0x%llx\n_start:\n",
                    static_cast<unsigned long long>(
                        GuestLayout::StartupBase));
  unsigned N = static_cast<unsigned>(PB.Threads.size());
  // Spawn threads 1..N-1; each gets a tiny transient stack (its guest sp
  // is restored from the context immediately).
  for (unsigned I = 1; I < N; ++I) {
    S += formatString("  ldi r7, 9\n"
                      "  la  r1, t%u_entry\n"
                      "  la  r2, clone_stacks + %u\n"
                      "  ldi r3, 0\n"
                      "  syscall\n",
                      I, 512 * (I + 1));
  }
  S += "  jmp t0_entry\n";

  for (unsigned I = 0; I < N; ++I) {
    const pinball::ThreadRegs &T = PB.Threads[I];
    S += formatString("t%u_entry:\n", I);
    // FP registers first (r1 is the bit-pattern temp).
    for (unsigned R = 0; R < isa::NumFPRs; ++R) {
      uint64_t Bits;
      std::memcpy(&Bits, &T.FPR[R], 8);
      S += li("r1", Bits);
      S += formatString("  fmvtof f%u, r1\n", R);
    }
    // GPRs r2..r15 from immediates; r1 last (it was the temp).
    for (unsigned R = 2; R < isa::NumGPRs; ++R)
      S += li(formatString("r%u", R), T.GPR[R]);
    if (Opts.EmitMarkers)
      S += formatString("  marker %u, %d\n",
                        static_cast<unsigned>(Opts.MarkerType),
                        Opts.MarkerTag);
    S += li("r1", T.GPR[1]);
    // Jump to the captured pc through the zero register; works for any
    // pc below 2^31.
    S += formatString("  jalr r0, r0, %lld\n",
                      static_cast<long long>(T.PC));
  }
  S += "  .bss\n  .align 8\n";
  S += formatString("clone_stacks: .space %u\n", 512 * (N + 1));
  return S;
}

} // namespace

Expected<std::vector<uint8_t>>
core::emitGuestElfie(const Pinball &PB, const Pinball2ElfOptions &Opts) {
  if (PB.Threads.empty())
    return makeError("pinball has no threads");
  if (!PB.isFat())
    return makeError("guest ELFie emission requires a fat pinball "
                     "(-log:fat 1)");
  for (const pinball::ThreadRegs &T : PB.Threads)
    if (T.PC >= (1ull << 31))
      return makeError("thread %u starts at pc %#llx, beyond the 2^31 "
                       "immediate range of the guest startup jump",
                       T.Tid, static_cast<unsigned long long>(T.PC));

  // Assemble the startup code.
  std::string Asm = buildStartupAsm(PB, Opts);
  auto Startup = easm::assembleString(Asm, "<elfie-startup>");
  if (!Startup)
    return Startup.takeError();

  elf::ELFWriter W(elf::ET_EXEC, elf::EM_EG64);
  W.setEntry(Startup->Entry);

  // Pinball pages, coalesced into runs (paper §II-B2). The guest target
  // has no loader stack collision — the EVM builds a fresh address space —
  // so stack pages load directly at their original addresses.
  std::vector<const PageRecord *> Sorted;
  for (const PageRecord &P : PB.Image)
    Sorted.push_back(&P);
  std::sort(Sorted.begin(), Sorted.end(),
            [](const PageRecord *A, const PageRecord *B) {
              return A->Addr < B->Addr;
            });
  size_t I = 0;
  unsigned FirstPageSec = 0;
  while (I < Sorted.size()) {
    size_t J = I + 1;
    while (J < Sorted.size() &&
           Sorted[J]->Addr == Sorted[J - 1]->Addr + vm::GuestPageSize &&
           Sorted[J]->Perm == Sorted[I]->Perm)
      ++J;
    std::vector<std::span<const uint8_t>> Run;
    Run.reserve(J - I);
    for (size_t K = I; K < J; ++K)
      Run.push_back({Sorted[K]->Bytes.data(), Sorted[K]->Bytes.size()});
    uint64_t Flags = elf::SHF_ALLOC;
    if (Sorted[I]->Perm & vm::PermWrite)
      Flags |= elf::SHF_WRITE;
    if (Sorted[I]->Perm & vm::PermExec)
      Flags |= elf::SHF_EXECINSTR;
    const char *Prefix =
        (Sorted[I]->Perm & vm::PermExec) ? ".text" : ".data";
    unsigned Sec = W.addSectionChunks(
        formatString("%s.0x%llx", Prefix,
                     static_cast<unsigned long long>(Sorted[I]->Addr)),
        Flags, Sorted[I]->Addr, std::move(Run), vm::GuestPageSize);
    if (!FirstPageSec)
      FirstPageSec = Sec;
    I = J;
  }

  // Startup sections.
  unsigned StartupSec = 0;
  for (easm::AssembledSection &S : Startup->Sections) {
    unsigned Sec =
        S.IsNoBits
            ? W.addNoBitsSection(".elfie" + S.Name, S.Flags, S.BaseAddr,
                                 S.Size)
            : W.addSection(".elfie" + S.Name, S.Flags, S.BaseAddr,
                           std::move(S.Data));
    if (S.Name == ".text")
      StartupSec = Sec;
  }

  // Symbols: startup entries and per-thread budgets (§II-B5).
  W.addSymbol("elfie_on_start", Startup->Entry, StartupSec,
              elf::STB_GLOBAL, elf::STT_FUNC);
  for (unsigned T = 0; T < PB.Threads.size(); ++T) {
    auto It = Startup->Symbols.find(formatString("t%u_entry", T));
    if (It != Startup->Symbols.end())
      W.addSymbol(formatString("elfie_t%u_start", T), It->second,
                  StartupSec, elf::STB_GLOBAL, elf::STT_FUNC);
    W.addSymbol(formatString(".t%u.icount", T),
                PB.Threads[T].RegionIcount, elf::SHN_ABS, elf::STB_LOCAL);
  }
  W.addSymbol("elfie_region_length", PB.Meta.RegionLength, elf::SHN_ABS,
              elf::STB_GLOBAL);
  if (Opts.WarmupLength)
    W.addSymbol("elfie_warmup_length", Opts.WarmupLength, elf::SHN_ABS,
                elf::STB_GLOBAL);
  (void)FirstPageSec;
  return W.finalize();
}
