//===- core/Pinball2Elf.cpp - dispatch + layout description ---------------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/Pinball2Elf.h"

#include "elf/ELFWriter.h"
#include "support/FileIO.h"
#include "support/Format.h"

#include <algorithm>
#include <cstring>

using namespace elfie;
using namespace elfie::core;

Expected<std::vector<uint8_t>>
core::pinballToElf(const pinball::Pinball &PB,
                   const Pinball2ElfOptions &Opts) {
  if (Opts.TargetKind == Pinball2ElfOptions::Target::NativeX86)
    return emitNativeElfie(PB, Opts);
  if (Opts.TargetKind == Pinball2ElfOptions::Target::Object)
    return emitElfieObject(PB, Opts);
  return emitGuestElfie(PB, Opts);
}

Expected<std::vector<uint8_t>>
core::emitElfieObject(const pinball::Pinball &PB,
                      const Pinball2ElfOptions &Opts) {
  if (PB.Threads.empty())
    return makeError("pinball has no threads");
  // Relocatable object: the pinball memory image as sections plus the
  // packed per-thread contexts (initial register values, as in Fig. 3),
  // with the .t<N>.<reg> symbols; no startup code, no program headers.
  elf::ELFWriter W(elf::ET_REL, elf::EM_EG64);
  auto Pages = PB.allPages();
  std::sort(Pages.begin(), Pages.end(),
            [](const pinball::PageRecord *A, const pinball::PageRecord *B) {
              return A->Addr < B->Addr;
            });
  size_t I = 0;
  while (I < Pages.size()) {
    size_t J = I + 1;
    while (J < Pages.size() &&
           Pages[J]->Addr == Pages[J - 1]->Addr + vm::GuestPageSize &&
           Pages[J]->Perm == Pages[I]->Perm)
      ++J;
    // Borrowed page views; the pinball stays alive through finalize(), so
    // emission writes pages straight from the (typically mmap'd) image.
    std::vector<std::span<const uint8_t>> Run;
    Run.reserve(J - I);
    for (size_t K = I; K < J; ++K)
      Run.push_back({Pages[K]->Bytes.data(), Pages[K]->Bytes.size()});
    uint64_t Flags = elf::SHF_ALLOC;
    if (Pages[I]->Perm & vm::PermWrite)
      Flags |= elf::SHF_WRITE;
    if (Pages[I]->Perm & vm::PermExec)
      Flags |= elf::SHF_EXECINSTR;
    const char *Prefix =
        (Pages[I]->Perm & vm::PermExec) ? ".text" : ".data";
    W.addSectionChunks(formatString("%s.0x%llx", Prefix,
                                    static_cast<unsigned long long>(
                                        Pages[I]->Addr)),
                       Flags, Pages[I]->Addr, std::move(Run),
                       vm::GuestPageSize);
    I = J;
  }

  // Packed thread contexts: GPRs, FPR bit patterns, pc, budget per thread.
  std::vector<uint8_t> Ctx;
  auto Put64 = [&Ctx](uint64_t V) {
    const uint8_t *P = reinterpret_cast<const uint8_t *>(&V);
    Ctx.insert(Ctx.end(), P, P + 8);
  };
  for (const pinball::ThreadRegs &T : PB.Threads) {
    for (uint64_t G : T.GPR)
      Put64(G);
    for (double F : T.FPR) {
      uint64_t Bits;
      std::memcpy(&Bits, &F, 8);
      Put64(Bits);
    }
    Put64(T.PC);
    Put64(T.RegionIcount);
  }
  size_t PerThread = (isa::NumGPRs + isa::NumFPRs + 2) * 8;
  unsigned CtxSec = W.addSection(".data.contexts", 0, 0, std::move(Ctx));
  for (size_t T = 0; T < PB.Threads.size(); ++T) {
    uint64_t Base = T * PerThread;
    for (unsigned R = 0; R < isa::NumGPRs; ++R)
      W.addSymbol(formatString(".t%zu.r%u", T, R), Base + 8 * R, CtxSec,
                  elf::STB_LOCAL, elf::STT_OBJECT, 8);
    for (unsigned R = 0; R < isa::NumFPRs; ++R)
      W.addSymbol(formatString(".t%zu.f%u", T, R),
                  Base + 8 * (isa::NumGPRs + R), CtxSec, elf::STB_LOCAL,
                  elf::STT_OBJECT, 8);
    W.addSymbol(formatString(".t%zu.pc", T),
                Base + 8 * (isa::NumGPRs + isa::NumFPRs), CtxSec,
                elf::STB_LOCAL, elf::STT_OBJECT, 8);
    W.addSymbol(formatString(".t%zu.icount", T),
                PB.Threads[T].RegionIcount, elf::SHN_ABS, elf::STB_LOCAL);
  }
  W.addSymbol("elfie_region_length", PB.Meta.RegionLength, elf::SHN_ABS,
              elf::STB_GLOBAL);
  if (Opts.WarmupLength)
    W.addSymbol("elfie_warmup_length", Opts.WarmupLength, elf::SHN_ABS,
                elf::STB_GLOBAL);
  return W.finalize();
}

Error core::pinballToElfFile(const pinball::Pinball &PB,
                             const Pinball2ElfOptions &Opts,
                             const std::string &OutPath) {
  auto Image = pinballToElf(PB, Opts);
  if (!Image)
    return Image.takeError();
  // Atomic: a crash mid-write must never leave a half-emitted (but
  // executable-looking) ELFie behind.
  bool Executable = Opts.TargetKind != Pinball2ElfOptions::Target::Object;
  return writeFileAtomic(OutPath, Image->data(), Image->size(), Executable)
      .withContext("emitting '" + OutPath + "'");
}

std::string core::describeLayout(const pinball::Pinball &PB,
                                 const Pinball2ElfOptions &Opts) {
  // Linker-script style dump of the parent pinball's memory layout
  // (paper §II-B5: the generated linker script preserves this layout).
  std::string Out = "/* ELFie memory layout (from parent pinball) */\n";
  Out += "SECTIONS\n{\n";
  auto Pages = PB.allPages();
  std::sort(Pages.begin(), Pages.end(),
            [](const pinball::PageRecord *A, const pinball::PageRecord *B) {
              return A->Addr < B->Addr;
            });
  size_t I = 0;
  while (I < Pages.size()) {
    size_t J = I + 1;
    while (J < Pages.size() &&
           Pages[J]->Addr == Pages[J - 1]->Addr + vm::GuestPageSize &&
           Pages[J]->Perm == Pages[I]->Perm)
      ++J;
    const pinball::PageRecord *P = Pages[I];
    bool IsStack =
        P->Addr >= PB.Meta.StackBase && P->Addr < PB.Meta.StackTop;
    const char *Kind = IsStack                     ? "stack"
                       : (P->Perm & vm::PermExec)  ? "text"
                       : (P->Perm & vm::PermWrite) ? "data"
                                                   : "rodata";
    Out += formatString("  .%s.0x%llx 0x%llx : { /* %llu pages%s */ }\n",
                        Kind, static_cast<unsigned long long>(P->Addr),
                        static_cast<unsigned long long>(P->Addr),
                        static_cast<unsigned long long>(J - I),
                        IsStack ? ", stashed + remapped at startup" : "");
    I = J;
  }
  if (Opts.TargetKind == Pinball2ElfOptions::Target::NativeX86) {
    Out += formatString("  .elfie.text  0x%llx : { /* startup + runtime + "
                        "translated code */ }\n",
                        static_cast<unsigned long long>(
                            NativeLayout::HostCodeBase));
    Out += formatString(
        "  .elfie.data  0x%llx : { /* thread contexts, address table */ }\n",
        static_cast<unsigned long long>(NativeLayout::HostDataBase));
    Out += formatString(
        "  .elfie.stacks 0x%llx : { /* per-thread host stacks */ }\n",
        static_cast<unsigned long long>(NativeLayout::HostStackBase));
    Out += formatString("  .elfie.stash 0x%llx : { /* stashed stack pages "
                        "*/ }\n",
                        static_cast<unsigned long long>(
                            NativeLayout::StashBase));
  } else {
    Out += formatString("  .elfie.text 0x%llx : { /* guest startup */ }\n",
                        static_cast<unsigned long long>(
                            GuestLayout::StartupBase));
  }
  Out += formatString("  /* threads: %zu, region length: %llu */\n",
                      PB.Threads.size(),
                      static_cast<unsigned long long>(
                          PB.Meta.RegionLength));
  Out += "}\n";
  return Out;
}
