//===- core/NativeElfie.cpp - native x86-64 ELFie emission ----------------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// Emits a native, statically linked x86-64 ELFie from a pinball:
/// startup code (stack remap, sysstate preopen, thread creation), the
/// runtime (syscall stub, graceful/ungraceful exits, perfle reporting),
/// the AOT translation of the guest code pages, and the data image.
/// See core/Pinball2Elf.h for the big picture.
///
//===----------------------------------------------------------------------===//

#include "core/Pinball2Elf.h"

#include "elf/ELFWriter.h"
#include "support/Format.h"
#include "support/Watchdog.h"
#include "x86/Encoder.h"
#include "x86/Translator.h"

#include <algorithm>
#include <cstring>

using namespace elfie;
using namespace elfie::core;
using namespace elfie::x86;
using pinball::PageRecord;
using pinball::Pinball;

namespace {

// Linux x86-64 syscall numbers used by the runtime.
enum : uint32_t {
  NR_read = 0,
  NR_write = 1,
  NR_open = 2,
  NR_close = 3,
  NR_lseek = 8,
  NR_mmap = 9,
  NR_munmap = 11,
  NR_rt_sigaction = 13,
  NR_rt_sigreturn = 15,
  NR_sched_yield = 24,
  NR_dup2 = 33,
  NR_alarm = 37,
  NR_clone = 56,
  NR_exit = 60,
  NR_sigaltstack = 131,
  NR_gettid = 186,
  NR_clock_gettime = 228,
  NR_exit_group = 231,
};

// Signal-delivery ABI constants (kernel, x86-64). The kernel struct
// sigaction is {handler, sa_flags, restorer, mask} (32 bytes) and requires
// SA_RESTORER; siginfo carries si_addr at +16; the saved user context puts
// gregs at +40 in kernel sigcontext order (R8..R15 = 0..7, RIP = 16).
enum : uint32_t {
  SIG_ILL = 4,
  SIG_BUS = 7,
  SIG_FPE = 8,
  SIG_SEGV = 11,
  SIG_ALRM = 14,
};
constexpr uint64_t SigActionFlags = 0x0C000004; // SIGINFO|RESTORER|ONSTACK
constexpr int32_t SigInfoAddrOff = 16;
constexpr int32_t UCtxSavedR15Off = 40 + 7 * 8;  // gregs[7]
constexpr int32_t UCtxSavedRipOff = 40 + 16 * 8; // gregs[16]

// Ungraceful-exit codes of the emitted ELFie itself (documented in
// DESIGN.md §8): the abort stub (divergence) exits 127, a trapped hardware
// signal exits 126, the watchdog exits 125.
enum : uint32_t {
  ExitCodeDivergence = 127,
  ExitCodeSignal = 126,
  ExitCodeWatchdog = 125,
};

// elfie_fault_report block layout (64 bytes in .elfie.data; statically
// checkable by everify's REACH pass, populated by the abort stub and the
// signal handler before exit).
constexpr const char FaultReportMagic[8] = {'E', 'F', 'L', 'T',
                                            'R', 'P', 'T', '1'};
enum : int32_t {
  FltMagicOff = 0,
  FltKindOff = 8, // 0 none, 1 signal, 2 divergence, 3 watchdog
  FltSignalOff = 16,
  FltAddrOff = 24,
  FltRipOff = 32,
  FltSlotOff = 40,
  FltIcountLeftOff = 48,
  FltReportSize = 64,
};

constexpr uint64_t CloneFlags = 0x50f00; // VM|FS|FILES|SIGHAND|THREAD|SYSVSEM
constexpr int32_t MmapFixedAnon = 0x32;  // PRIVATE|ANON|FIXED

/// Builds the ELFie's data image with named offsets.
class DataBuilder {
public:
  size_t reserve(size_t Size, size_t Align = 8) {
    size_t Off = (Bytes.size() + Align - 1) & ~(Align - 1);
    Bytes.resize(Off + Size, 0);
    return Off;
  }
  size_t addString(const std::string &S) {
    size_t Off = reserve(S.size() + 1, 1);
    std::memcpy(Bytes.data() + Off, S.data(), S.size());
    return Off;
  }
  void poke64(size_t Off, uint64_t V) {
    std::memcpy(Bytes.data() + Off, &V, 8);
  }
  void pokeBytes(size_t Off, const void *P, size_t N) {
    std::memcpy(Bytes.data() + Off, P, N);
  }
  std::vector<uint8_t> &bytes() { return Bytes; }

private:
  std::vector<uint8_t> Bytes;
};

class NativeEmitter {
public:
  NativeEmitter(const Pinball &PB, const Pinball2ElfOptions &Opts)
      : PB(PB), Opts(Opts) {}

  Expected<std::vector<uint8_t>> emit();

private:
  uint64_t dataAddr(size_t Off) const {
    return NativeLayout::HostDataBase + Off;
  }
  uint64_t ctxAddr(unsigned Slot) const {
    return dataAddr(CtxOff) + uint64_t(Slot) * CtxLayout::Size;
  }
  uint64_t stackTop(unsigned Slot) const {
    return NativeLayout::HostStackBase +
           (uint64_t(Slot) + 1) * NativeLayout::HostStackSize;
  }

  void layoutData();
  void emitStartup();
  void emitThreadEntryCommon();
  void emitTableLookupAndJump(); // rax = guest pc -> jmp translation
  void emitRuntime();
  void emitSyscallStub();
  void emitFmtDec();
  void emitFaultHandler(); // signal/watchdog containment + restorer
  void emitReport(); // inline report fragment (uses r15 ctx)
  void fillContexts();
  uint64_t watchdogSeconds() const;

  const Pinball &PB;
  const Pinball2ElfOptions &Opts;

  Encoder E;
  DataBuilder Data;

  // Data offsets.
  size_t LiveThreadsOff = 0, NextSlotOff = 0, BrkTopOff = 0,
         MmapCursorOff = 0, ReportLockOff = 0;
  size_t StashTableOff = 0;
  size_t FdTableOff = 0;
  size_t BannerOff = 0;
  size_t PerfA = 0, PerfB = 0, PerfC = 0, PerfNl = 0; // message pieces
  size_t AbortMsgOff = 0;
  size_t FaultReportOff = 0; ///< 64-byte elfie_fault_report block
  size_t SigActOff = 0;      ///< 32-byte kernel struct sigaction
  size_t FltA = 0, FltB = 0, FltC = 0, FltD = 0, FltE = 0; // msg pieces
  size_t TableOff = 0;
  size_t CtxOff = 0;
  size_t PreTouchOff = 0; ///< table of guest page addresses

  std::string Banner;
  std::string AbortMsg;
  static constexpr const char *PerfPieceA = "elfie-perf: thread ";
  static constexpr const char *PerfPieceB = " retired ";
  static constexpr const char *PerfPieceC = " cycles ";

  unsigned NumStartThreads = 0;
  unsigned TotalSlots = 0;
  std::vector<const PageRecord *> StackPages;
  std::vector<const PageRecord *> NormalPages;
  sysstate::SysState SysState;
  std::vector<const sysstate::FileProxy *> Preopens;

  uint64_t CodeLo = 0, CodeHi = 0;

  // Labels.
  Label ThreadEntryCommon, FmtDec, ExitBudget, ExitCommon, Abort, Syscall;
  Label FaultHandler, Restorer;
  // Encoder offsets for symbols.
  size_t StartupOff = 0, ThreadEntryOff = 0, ExitOff = 0, SyscallOff = 0,
         AbortOff = 0, FaultHandlerOff = 0, RestorerOff = 0;

  std::unique_ptr<Translator> Xlate;
};

void NativeEmitter::layoutData() {
  // Globals.
  LiveThreadsOff = Data.reserve(8);
  NextSlotOff = Data.reserve(8);
  BrkTopOff = Data.reserve(8);
  MmapCursorOff = Data.reserve(8);
  ReportLockOff = Data.reserve(8);
  Data.poke64(LiveThreadsOff, NumStartThreads);
  Data.poke64(NextSlotOff, NumStartThreads);
  Data.poke64(BrkTopOff, PB.Meta.BrkAtStart ? PB.Meta.BrkAtStart
                                            : isa::HeapBase);
  Data.poke64(MmapCursorOff, 0x20000000ull);

  // Stash table: guest addresses of relocated stack pages, in stash order.
  StashTableOff = Data.reserve(StackPages.size() * 8);
  for (size_t I = 0; I < StackPages.size(); ++I)
    Data.poke64(StashTableOff + I * 8, StackPages[I]->Addr);

  // Sysstate preopen table: {fd, pathAddr, flags} triples.
  std::vector<size_t> PathOffsets;
  for (const auto *F : Preopens)
    PathOffsets.push_back(Data.addString(F->ProxyName));
  FdTableOff = Data.reserve(Preopens.size() * 24);
  for (size_t I = 0; I < Preopens.size(); ++I) {
    Data.poke64(FdTableOff + I * 24 + 0,
                static_cast<uint64_t>(Preopens[I]->Fd));
    Data.poke64(FdTableOff + I * 24 + 8, dataAddr(PathOffsets[I]));
    // O_RDONLY unless the region writes through the descriptor.
    Data.poke64(FdTableOff + I * 24 + 16,
                Preopens[I]->Written ? uint64_t(0x42) /*O_RDWR|O_CREAT*/
                                     : 0);
  }

  // Strings.
  Banner = formatString("elfie: %s region @%llu len %llu threads %u\n",
                        PB.Meta.ProgramName.c_str(),
                        static_cast<unsigned long long>(PB.Meta.RegionStart),
                        static_cast<unsigned long long>(PB.Meta.RegionLength),
                        NumStartThreads);
  BannerOff = Data.addString(Banner);
  AbortMsg = "elfie: execution diverged from the captured region\n";
  AbortMsgOff = Data.addString(AbortMsg);
  PerfA = Data.addString(PerfPieceA);
  PerfB = Data.addString(PerfPieceB);
  PerfC = Data.addString(PerfPieceC);
  PerfNl = Data.addString("\n");
  FltA = Data.addString("elfie-fault: signal ");
  FltB = Data.addString(" addr ");
  FltC = Data.addString(" rip ");
  FltD = Data.addString(" slot ");
  FltE = Data.addString(" icount-left ");

  // elfie_fault_report: magic now, everything else at fault time.
  FaultReportOff = Data.reserve(FltReportSize, 8);
  Data.pokeBytes(FaultReportOff + FltMagicOff, FaultReportMagic, 8);

  // Kernel struct sigaction {handler, flags, restorer, mask}. The handler
  // and restorer addresses are poked after code emission fixes them.
  SigActOff = Data.reserve(32, 8);
  Data.poke64(SigActOff + 8, SigActionFlags);

  // Pre-touch table: every loader-mapped guest page, so startup can fault
  // them in before any measurement begins (all application pages are in
  // memory by elfie_on_start, paper §II-B5).
  PreTouchOff = Data.reserve(NormalPages.size() * 8);
  for (size_t I = 0; I < NormalPages.size(); ++I)
    Data.poke64(PreTouchOff + I * 8, NormalPages[I]->Addr);

  // Address-translation table (content filled after translation).
  TableOff = Data.reserve(static_cast<size_t>(CodeHi - CodeLo), 8);

  // Thread contexts.
  CtxOff = Data.reserve(size_t(TotalSlots) * CtxLayout::Size, 64);
}

void NativeEmitter::fillContexts() {
  for (unsigned I = 0; I < NumStartThreads; ++I) {
    const pinball::ThreadRegs &T = PB.Threads[I];
    size_t Base = CtxOff + size_t(I) * CtxLayout::Size;
    for (unsigned R = 0; R < isa::NumGPRs; ++R)
      Data.poke64(Base + CtxLayout::gpr(R), R == 0 ? 0 : T.GPR[R]);
    for (unsigned R = 0; R < isa::NumFPRs; ++R) {
      uint64_t Bits;
      std::memcpy(&Bits, &T.FPR[R], 8);
      Data.poke64(Base + CtxLayout::fpr(R), Bits);
    }
    uint64_t Budget =
        Opts.EmitICountChecks ? T.RegionIcount : uint64_t(INT64_MAX);
    Data.poke64(Base + CtxLayout::ICountOff, Budget);
    Data.poke64(Base + CtxLayout::BudgetOff, Budget);
    Data.poke64(Base + CtxLayout::SlotOff, I);
    Data.poke64(Base + CtxLayout::StartPCOff, T.PC);
  }
}

void NativeEmitter::emitTableLookupAndJump() {
  // rax = guest code address. Clobbers rdx. Jumps to the translation or to
  // the abort stub.
  E.testRegImm32(RAX, 7);
  E.jcc(CondNE, Abort);
  E.movRegImm64(RDX, CodeLo);
  E.subRegReg(RAX, RDX);
  E.movRegImm64(RDX, CodeHi - CodeLo);
  E.cmpRegReg(RAX, RDX);
  E.jcc(CondAE, Abort);
  E.movRegImm64(RDX, dataAddr(TableOff));
  E.addRegReg(RDX, RAX);
  E.movRegMem(RAX, RDX, 0);
  E.testRegReg(RAX, RAX);
  E.jcc(CondE, Abort);
  E.jmpReg(RAX);
}

uint64_t NativeEmitter::watchdogSeconds() const {
  if (Opts.WatchdogSecs)
    return Opts.WatchdogSecs;
  // Budget-scaled via the shared rule (support/Watchdog.h): generous
  // headroom over any plausible execution rate (50M retired/s is far below
  // real hardware), bounded so a corrupt region length cannot disable the
  // guard. ereplay/evm and efleet derive their timeouts from the same rule.
  return scaledWatchdogSeconds(PB.Meta.RegionLength);
}

void NativeEmitter::emitStartup() {
  StartupOff = E.here();
  // Run on slot 0's host stack from the first instruction: the kernel's
  // initial stack may be about to be overwritten by the remap below.
  E.movRegImm64(RAX, stackTop(0) - 64);
  E.movRegReg(RSP, RAX);

  // --- Divergence containment: trap the fault signals process-wide and
  // arm the watchdog before anything can go wrong, so even a corrupt
  // stash/preopen table dies with the structured report. ---
  for (uint32_t Sig : {SIG_ILL, SIG_BUS, SIG_FPE, SIG_SEGV, SIG_ALRM}) {
    E.movRegImm32(RDI, Sig);
    E.movRegImm64(RSI, dataAddr(SigActOff));
    E.xorRegReg(RDX, RDX);
    E.movRegImm32(R10, 8); // sigsetsize
    E.movRegImm32(RAX, NR_rt_sigaction);
    E.syscall();
  }
  E.movRegImm32(RDI, static_cast<uint32_t>(watchdogSeconds()));
  E.movRegImm32(RAX, NR_alarm);
  E.syscall();

  // --- Stack-collision workaround (paper Figs. 4/5): map the guest stack
  // range fresh and copy the checkpointed stack pages from the stash. ---
  if (!StackPages.empty()) {
    E.movRegImm64(R12, dataAddr(StashTableOff));
    E.movRegImm64(R13, NativeLayout::StashBase);
    E.movRegImm64(R14, StackPages.size());
    Label Loop;
    E.bind(Loop);
    // mmap(guestAddr, 4096, RW, FIXED|ANON, -1, 0)
    E.movRegMem(RDI, R12, 0);
    E.movRegImm32(RSI, 4096);
    E.movRegImm32(RDX, 3);
    E.movRegImm32(R10, MmapFixedAnon);
    E.movRegImm64(R8, static_cast<uint64_t>(-1));
    E.xorRegReg(R9, R9);
    E.movRegImm32(RAX, NR_mmap);
    E.syscall();
    // copy the page from the stash
    E.movRegMem(RDI, R12, 0);
    E.movRegReg(RSI, R13);
    E.movRegImm32(RCX, 4096);
    E.repMovsb();
    E.addRegImm32(R12, 8);
    E.addRegImm32(R13, 4096);
    E.subRegImm32(R14, 1);
    E.jcc(CondNE, Loop);
  }

  // --- Sysstate descriptor preopen (paper §II-C2): open FD_<n> proxies in
  // the working directory and dup2() them onto the captured fds. ---
  if (!Preopens.empty()) {
    E.movRegImm64(R12, dataAddr(FdTableOff));
    E.movRegImm64(R14, Preopens.size());
    Label Loop, Next;
    E.bind(Loop);
    E.movRegMem(RDI, R12, 8);  // path
    E.movRegMem(RSI, R12, 16); // flags
    E.movRegImm32(RDX, 0644);
    E.movRegImm32(RAX, NR_open);
    E.syscall();
    E.testRegReg(RAX, RAX);
    E.jcc(CondS, Next); // open failed; leave the fd dead
    E.movRegReg(RBX, RAX);
    E.movRegReg(RDI, RAX);
    E.movRegMem(RSI, R12, 0); // target fd
    E.cmpRegReg(RDI, RSI);
    E.jcc(CondE, Next); // already the right descriptor
    E.movRegImm32(RAX, NR_dup2);
    E.syscall();
    E.movRegReg(RDI, RBX);
    E.movRegImm32(RAX, NR_close);
    E.syscall();
    E.bind(Next);
    E.addRegImm32(R12, 24);
    E.subRegImm32(R14, 1);
    E.jcc(CondNE, Loop);
  }

  // --- Pre-touch all guest pages (fault them in before any counters
  // start; the stash loop above already touched the stack pages). ---
  if (!NormalPages.empty()) {
    E.movRegImm64(R12, dataAddr(PreTouchOff));
    E.movRegImm64(R14, NormalPages.size());
    Label Loop;
    E.bind(Loop);
    E.movRegMem(RAX, R12, 0);
    E.movzxRegMem8(RCX, RAX, 0); // read one byte of the page
    E.addRegImm32(R12, 8);
    E.subRegImm32(R14, 1);
    E.jcc(CondNE, Loop);
  }

  // --- elfie_on_start banner ---
  if (Opts.Verbose) {
    E.movRegImm32(RDI, 2);
    E.movRegImm64(RSI, dataAddr(BannerOff));
    E.movRegImm32(RDX, static_cast<uint32_t>(Banner.size()));
    E.movRegImm32(RAX, NR_write);
    E.syscall();
  }

  // --- Recreate the checkpointed threads (paper Fig. 6): one clone() per
  // thread beyond the first; each child stack top carries its context
  // pointer. ---
  for (unsigned I = 1; I < NumStartThreads; ++I) {
    E.movRegImm64(RAX, ctxAddr(I));
    E.movRegImm64(RCX, stackTop(I) - 8);
    E.movMemReg(RCX, 0, RAX);
    E.movRegImm64(RDI, CloneFlags);
    E.movRegReg(RSI, RCX);
    E.xorRegReg(RDX, RDX);
    E.xorRegReg(R10, R10);
    E.xorRegReg(R8, R8);
    E.movRegImm32(RAX, NR_clone);
    E.syscall();
    E.testRegReg(RAX, RAX);
    E.jcc(CondE, ThreadEntryCommon); // child
  }
  // The initial thread becomes guest thread 0.
  E.movRegImm64(RAX, ctxAddr(0));
  E.pushReg(RAX);
  E.jmp(ThreadEntryCommon);
}

void NativeEmitter::emitThreadEntryCommon() {
  ThreadEntryOff = E.here();
  E.bind(ThreadEntryCommon);
  // [rsp] = context pointer (pushed by startup / placed by clone).
  E.popReg(R15);

  // Per-thread alternate signal stack (sigaltstack is per-thread): the
  // fault handler must run even when the guest stack pointer is the thing
  // that diverged. stack_t {ss_sp, ss_flags, ss_size} built on the host
  // stack.
  E.movRegMem(RAX, R15, CtxLayout::SlotOff);
  E.shlRegImm(RAX, 14); // NativeLayout::AltStackSize == 1 << 14
  E.movRegImm64(RCX, NativeLayout::AltStackBase);
  E.addRegReg(RAX, RCX);
  E.subRegImm32(RSP, 32);
  E.movMemReg(RSP, 0, RAX); // ss_sp
  E.xorRegReg(RCX, RCX);
  E.movMemReg(RSP, 8, RCX); // ss_flags (+ padding)
  E.movRegImm32(RCX, static_cast<uint32_t>(NativeLayout::AltStackSize));
  E.movMemReg(RSP, 16, RCX); // ss_size
  E.movRegReg(RDI, RSP);
  E.xorRegReg(RSI, RSI);
  E.movRegImm32(RAX, NR_sigaltstack);
  E.syscall();
  E.addRegImm32(RSP, 32);
  if (Opts.Perfle) {
    E.rdtsc();
    E.shlRegImm(RDX, 32);
    E.orRegReg(RAX, RDX);
    E.movMemReg(R15, CtxLayout::StartTscOff, RAX);
  }
  if (Opts.EmitMarkers) {
    // elfie_on_thread_start + ROI-begin marker.
    E.movRegImm32(RBX, static_cast<uint32_t>(Opts.MarkerTag));
    E.emitBytes({0x64, 0x67, 0x90});
  }
  E.movRegMem(RAX, R15, CtxLayout::StartPCOff);
  emitTableLookupAndJump();
}

void NativeEmitter::emitFmtDec() {
  // fmt_dec: rax = value, rdi = buffer end. Returns rsi = start, rdx = len.
  // Clobbers rax, rcx, r8. Used by perfle reporting and by the fault
  // handler, so it is emitted unconditionally.
  E.bind(FmtDec);
  E.movRegReg(R8, RDI);
  E.movRegImm32(RCX, 10);
  Label Loop;
  E.bind(Loop);
  E.xorRegReg(RDX, RDX);
  E.divReg(RCX);
  E.addRegImm32(RDX, '0');
  E.subRegImm32(RDI, 1);
  E.movMemReg8(RDI, 0, RDX);
  E.testRegReg(RAX, RAX);
  E.jcc(CondNE, Loop);
  E.movRegReg(RSI, RDI);
  E.movRegReg(RDX, R8);
  E.subRegReg(RDX, RSI);
  E.ret();
}

void NativeEmitter::emitReport() {
  // Uses r15 (ctx). Clobbers caller-saved registers and rbx.
  auto WriteStr = [&](size_t StrOff, size_t Len) {
    E.movRegImm32(RDI, 2);
    E.movRegImm64(RSI, dataAddr(StrOff));
    E.movRegImm32(RDX, static_cast<uint32_t>(Len));
    E.movRegImm32(RAX, NR_write);
    E.syscall();
  };
  auto WriteDec = [&]() {
    // value in rax
    E.subRegImm32(RSP, 32);
    E.leaRegMem(RDI, RSP, 32);
    E.call(FmtDec);
    E.movRegImm32(RDI, 2);
    E.movRegImm32(RAX, NR_write);
    E.syscall();
    E.addRegImm32(RSP, 32);
  };

  // Spinlock so multi-threaded reports do not interleave.
  Label Spin, Locked;
  E.bind(Spin);
  E.movRegImm32(RAX, 1);
  E.movRegImm64(RCX, dataAddr(ReportLockOff));
  E.xchgMemReg(RCX, 0, RAX);
  E.testRegReg(RAX, RAX);
  E.jcc(CondE, Locked);
  E.pause();
  E.jmp(Spin);
  E.bind(Locked);

  WriteStr(PerfA, std::strlen(PerfPieceA));
  E.movRegMem(RAX, R15, CtxLayout::SlotOff);
  WriteDec();
  WriteStr(PerfB, std::strlen(PerfPieceB));
  E.movRegMem(RAX, R15, CtxLayout::BudgetOff);
  E.subRegMem(RAX, R15, CtxLayout::ICountOff);
  WriteDec();
  WriteStr(PerfC, std::strlen(PerfPieceC));
  E.rdtsc();
  E.shlRegImm(RDX, 32);
  E.orRegReg(RAX, RDX);
  E.subRegMem(RAX, R15, CtxLayout::StartTscOff);
  WriteDec();
  WriteStr(PerfNl, 1);

  // Release the lock.
  E.xorRegReg(RAX, RAX);
  E.movRegImm64(RCX, dataAddr(ReportLockOff));
  E.movMemReg(RCX, 0, RAX);
}

void NativeEmitter::emitRuntime() {
  emitFmtDec();

  // --- Graceful exit (paper §II-C1) ---
  E.bind(ExitBudget);
  // The countdown went to -1: the pending instruction did not retire.
  E.incMem(R15, CtxLayout::ICountOff);
  ExitOff = E.here();
  E.bind(ExitCommon);
  if (Opts.Perfle)
    emitReport();
  // lock dec LiveThreads; the last thread exits the whole group.
  E.movRegImm64(RAX, static_cast<uint64_t>(-1));
  E.movRegImm64(RCX, dataAddr(LiveThreadsOff));
  E.lockXaddMemReg(RCX, 0, RAX);
  Label Last;
  E.cmpRegImm32(RAX, 1);
  E.jcc(CondE, Last);
  E.xorRegReg(RDI, RDI);
  E.movRegImm32(RAX, NR_exit);
  E.syscall();
  E.bind(Last);
  E.xorRegReg(RDI, RDI);
  E.movRegImm32(RAX, NR_exit_group);
  E.syscall();

  // --- Ungraceful exit (divergence, §II-C1): fill the fault report so
  // post-mortem tooling sees what diverged, then exit 127. r15 is the
  // thread context at every abort site (table lookup + syscall stub). ---
  AbortOff = E.here();
  E.bind(Abort);
  E.movRegImm64(RCX, dataAddr(FaultReportOff));
  E.movRegImm32(RAX, 2); // kind = divergence
  E.movMemReg(RCX, FltKindOff, RAX);
  E.movRegMem(RAX, R15, CtxLayout::SlotOff);
  E.movMemReg(RCX, FltSlotOff, RAX);
  E.movRegMem(RAX, R15, CtxLayout::ICountOff);
  E.movMemReg(RCX, FltIcountLeftOff, RAX);
  E.movRegImm32(RDI, 2);
  E.movRegImm64(RSI, dataAddr(AbortMsgOff));
  E.movRegImm32(RDX, static_cast<uint32_t>(AbortMsg.size()));
  E.movRegImm32(RAX, NR_write);
  E.syscall();
  E.movRegImm32(RDI, ExitCodeDivergence);
  E.movRegImm32(RAX, NR_exit_group);
  E.syscall();

  emitSyscallStub();
  emitFaultHandler();
}

void NativeEmitter::emitFaultHandler() {
  // SA_SIGINFO entry: rdi = signal, rsi = siginfo*, rdx = ucontext*.
  // Runs on the per-thread altstack; fills elfie_fault_report, prints one
  // "elfie-fault:" line to stderr, and exits the whole group with the
  // documented code (126 hardware signal, 125 watchdog). Never returns.
  FaultHandlerOff = E.here();
  E.bind(FaultHandler);
  E.movRegReg(R12, RDI);                     // signal number
  E.movRegMem(R13, RSI, SigInfoAddrOff);     // si_addr
  E.movRegMem(R14, RDX, UCtxSavedRipOff);    // faulting host RIP
  E.movRegMem(RBX, RDX, UCtxSavedR15Off);    // interrupted thread's r15

  E.movRegImm64(RCX, dataAddr(FaultReportOff));
  Label KindWatch, KindDone;
  E.cmpRegImm32(R12, SIG_ALRM);
  E.jcc(CondE, KindWatch);
  E.movRegImm32(RAX, 1); // kind = signal
  E.jmp(KindDone);
  E.bind(KindWatch);
  E.movRegImm32(RAX, 3); // kind = watchdog
  E.bind(KindDone);
  E.movMemReg(RCX, FltKindOff, RAX);
  E.movMemReg(RCX, FltSignalOff, R12);
  E.movMemReg(RCX, FltAddrOff, R13);
  E.movMemReg(RCX, FltRipOff, R14);

  // The interrupted r15 is only a *candidate* context pointer — divergent
  // code may have clobbered it. Range-check against the context array
  // before dereferencing, or the handler itself would fault.
  uint64_t CtxBase = dataAddr(CtxOff);
  Label NoCtx, CtxDone;
  E.movRegImm64(RAX, CtxBase);
  E.cmpRegReg(RBX, RAX);
  E.jcc(CondB, NoCtx);
  E.movRegImm64(RAX, CtxBase + uint64_t(TotalSlots) * CtxLayout::Size);
  E.cmpRegReg(RBX, RAX);
  E.jcc(CondAE, NoCtx);
  E.movRegMem(RAX, RBX, CtxLayout::SlotOff);
  E.movMemReg(RCX, FltSlotOff, RAX);
  E.movRegMem(RAX, RBX, CtxLayout::ICountOff);
  E.movMemReg(RCX, FltIcountLeftOff, RAX);
  E.jmp(CtxDone);
  E.bind(NoCtx);
  E.movRegImm64(RAX, static_cast<uint64_t>(-1));
  E.movMemReg(RCX, FltSlotOff, RAX);
  E.movMemReg(RCX, FltIcountLeftOff, RAX);
  E.bind(CtxDone);

  // One structured line on stderr:
  // "elfie-fault: signal N addr N rip N slot N icount-left N\n".
  auto WriteStr = [&](size_t StrOff, size_t Len) {
    E.movRegImm32(RDI, 2);
    E.movRegImm64(RSI, dataAddr(StrOff));
    E.movRegImm32(RDX, static_cast<uint32_t>(Len));
    E.movRegImm32(RAX, NR_write);
    E.syscall();
  };
  auto WriteDecFromReport = [&](int32_t FieldOff) {
    E.movRegImm64(RCX, dataAddr(FaultReportOff));
    E.movRegMem(RAX, RCX, FieldOff);
    E.subRegImm32(RSP, 32);
    E.leaRegMem(RDI, RSP, 32);
    E.call(FmtDec);
    E.movRegImm32(RDI, 2);
    E.movRegImm32(RAX, NR_write);
    E.syscall();
    E.addRegImm32(RSP, 32);
  };
  WriteStr(FltA, std::strlen("elfie-fault: signal "));
  WriteDecFromReport(FltSignalOff);
  WriteStr(FltB, std::strlen(" addr "));
  WriteDecFromReport(FltAddrOff);
  WriteStr(FltC, std::strlen(" rip "));
  WriteDecFromReport(FltRipOff);
  WriteStr(FltD, std::strlen(" slot "));
  WriteDecFromReport(FltSlotOff);
  WriteStr(FltE, std::strlen(" icount-left "));
  WriteDecFromReport(FltIcountLeftOff);
  WriteStr(PerfNl, 1);

  Label WatchExit;
  E.cmpRegImm32(R12, SIG_ALRM);
  E.jcc(CondE, WatchExit);
  E.movRegImm32(RDI, ExitCodeSignal);
  E.movRegImm32(RAX, NR_exit_group);
  E.syscall();
  E.bind(WatchExit);
  E.movRegImm32(RDI, ExitCodeWatchdog);
  E.movRegImm32(RAX, NR_exit_group);
  E.syscall();

  // The kernel requires SA_RESTORER on x86-64; the restorer is never
  // reached (the handler exits) but must exist and be well-formed.
  RestorerOff = E.here();
  E.bind(Restorer);
  E.movRegImm32(RAX, NR_rt_sigreturn);
  E.syscall();
}

void NativeEmitter::emitSyscallStub() {
  SyscallOff = E.here();
  E.bind(Syscall);
  auto GuestArg = [&](unsigned N) {
    return CtxLayout::gpr(isa::SysArgReg0 + N); // a1..a6 offsets
  };
  auto StoreResultAndRet = [&]() {
    E.movMemReg(R15, CtxLayout::gpr(isa::SysRetReg), RAX);
    E.ret();
  };

  E.movRegMem(RAX, R15, CtxLayout::gpr(isa::SysNrReg));

  Label HExit, HExitGroup, HWrite, HRead, HOpen, HClose, HLseek, HBrk,
      HClock, HClone, HGettid, HYield, HMmap, HMunmap, Unknown;
  struct Case {
    isa::Sys Nr;
    Label *L;
  } Cases[] = {
      {isa::Sys::Exit, &HExit},       {isa::Sys::ExitGroup, &HExitGroup},
      {isa::Sys::Write, &HWrite},     {isa::Sys::Read, &HRead},
      {isa::Sys::Open, &HOpen},       {isa::Sys::Close, &HClose},
      {isa::Sys::Lseek, &HLseek},     {isa::Sys::Brk, &HBrk},
      {isa::Sys::ClockGetTimeNs, &HClock}, {isa::Sys::Clone, &HClone},
      {isa::Sys::GetTid, &HGettid},   {isa::Sys::Yield, &HYield},
      {isa::Sys::MmapAnon, &HMmap},   {isa::Sys::Munmap, &HMunmap},
  };
  for (const Case &C : Cases) {
    E.cmpRegImm32(RAX, static_cast<int32_t>(C.Nr));
    E.jcc(CondE, *C.L);
  }
  E.bind(Unknown);
  E.jmp(Abort); // unknown guest syscall: divergence

  // exit(code): the thread ends gracefully.
  E.bind(HExit);
  E.jmp(ExitCommon);

  // exit_group(code)
  E.bind(HExitGroup);
  E.movRegMem(R12, R15, GuestArg(0));
  if (Opts.Perfle)
    emitReport();
  E.movRegReg(RDI, R12);
  E.movRegImm32(RAX, NR_exit_group);
  E.syscall();

  // Simple pass-through 3-argument syscalls.
  auto PassThrough3 = [&](Label &L, uint32_t HostNr) {
    E.bind(L);
    E.movRegMem(RDI, R15, GuestArg(0));
    E.movRegMem(RSI, R15, GuestArg(1));
    E.movRegMem(RDX, R15, GuestArg(2));
    E.movRegImm32(RAX, HostNr);
    E.syscall();
    StoreResultAndRet();
  };
  PassThrough3(HWrite, NR_write);
  PassThrough3(HRead, NR_read);
  PassThrough3(HOpen, NR_open);
  PassThrough3(HLseek, NR_lseek);

  E.bind(HClose);
  E.movRegMem(RDI, R15, GuestArg(0));
  E.movRegImm32(RAX, NR_close);
  E.syscall();
  StoreResultAndRet();

  // brk(addr): grow-only emulation on top of the captured heap.
  {
    E.bind(HBrk);
    Label Query, Store;
    E.movRegMem(RDI, R15, GuestArg(0));
    E.movRegImm64(RCX, dataAddr(BrkTopOff));
    E.movRegMem(RAX, RCX, 0); // current top
    E.testRegReg(RDI, RDI);
    E.jcc(CondE, Query);
    E.cmpRegReg(RDI, RAX);
    E.jcc(CondBE, Query); // shrink/equal: refuse, return current
    E.movRegReg(RBX, RDI); // new top
    E.movRegReg(RBP, RAX); // old top
    // oldAligned = align_up(oldTop); len = align_up(newTop) - oldAligned
    E.addRegImm32(RBP, 4095);
    E.andRegImm32(RBP, ~4095);
    E.movRegReg(RSI, RBX);
    E.addRegImm32(RSI, 4095);
    E.andRegImm32(RSI, ~4095);
    E.subRegReg(RSI, RBP);
    Label NoMap;
    E.testRegReg(RSI, RSI);
    E.jcc(CondE, NoMap);
    E.movRegReg(RDI, RBP);
    E.movRegImm32(RDX, 3);
    E.movRegImm32(R10, MmapFixedAnon);
    E.movRegImm64(R8, static_cast<uint64_t>(-1));
    E.xorRegReg(R9, R9);
    E.movRegImm32(RAX, NR_mmap);
    E.syscall();
    E.bind(NoMap);
    E.movRegImm64(RCX, dataAddr(BrkTopOff));
    E.movMemReg(RCX, 0, RBX);
    E.movRegReg(RAX, RBX);
    E.jmp(Store);
    E.bind(Query);
    // rax already holds the current top.
    E.bind(Store);
    StoreResultAndRet();
  }

  // clock_gettime_ns: CLOCK_MONOTONIC in nanoseconds.
  {
    E.bind(HClock);
    E.subRegImm32(RSP, 16);
    E.movRegImm32(RDI, 1); // CLOCK_MONOTONIC
    E.movRegReg(RSI, RSP);
    E.movRegImm32(RAX, NR_clock_gettime);
    E.syscall();
    E.movRegMem(RAX, RSP, 0); // tv_sec
    E.movRegImm64(RCX, 1000000000ull);
    E.imulRegReg(RAX, RCX);
    E.addRegMem(RAX, RSP, 8); // + tv_nsec
    E.addRegImm32(RSP, 16);
    StoreResultAndRet();
  }

  // clone(entry, stack, arg) -> child tid (slot index).
  {
    E.bind(HClone);
    Label Fail;
    E.movRegImm32(RAX, 1);
    E.movRegImm64(RCX, dataAddr(NextSlotOff));
    E.lockXaddMemReg(RCX, 0, RAX); // rax = slot
    E.cmpRegImm32(RAX, static_cast<int32_t>(TotalSlots));
    E.jcc(CondAE, Fail);
    E.movRegReg(RBX, RAX); // slot
    // ctx = CtxBase + slot * CtxSize
    E.movRegReg(RBP, RAX);
    E.shlRegImm(RBP, 9); // CtxLayout::Size == 512
    E.movRegImm64(RCX, dataAddr(CtxOff));
    E.addRegReg(RBP, RCX);
    // Child context: entry/sp/arg from the parent's a1..a3.
    E.movRegMem(RDX, R15, GuestArg(0));
    E.movMemReg(RBP, CtxLayout::StartPCOff, RDX);
    E.movRegMem(RDX, R15, GuestArg(1));
    E.movMemReg(RBP, CtxLayout::gpr(isa::RegSP), RDX);
    E.movRegMem(RDX, R15, GuestArg(2));
    E.movMemReg(RBP, CtxLayout::gpr(1), RDX);
    E.movRegImm64(RDX, static_cast<uint64_t>(INT64_MAX));
    E.movMemReg(RBP, CtxLayout::ICountOff, RDX);
    E.movMemReg(RBP, CtxLayout::BudgetOff, RDX);
    E.movMemReg(RBP, CtxLayout::SlotOff, RBX);
    // LiveThreads++
    E.movRegImm32(RAX, 1);
    E.movRegImm64(RCX, dataAddr(LiveThreadsOff));
    E.lockXaddMemReg(RCX, 0, RAX);
    // child host stack top = HostStackBase + (slot+1)*HostStackSize
    E.movRegReg(RDI, RBX);
    E.addRegImm32(RDI, 1);
    E.shlRegImm(RDI, 16); // HostStackSize == 1<<16
    E.movRegImm64(RCX, NativeLayout::HostStackBase);
    E.addRegReg(RDI, RCX);
    E.subRegImm32(RDI, 8);
    E.movMemReg(RDI, 0, RBP); // ctx at the top of the child stack
    E.movRegReg(RSI, RDI);
    E.movRegImm64(RDI, CloneFlags);
    E.xorRegReg(RDX, RDX);
    E.xorRegReg(R10, R10);
    E.xorRegReg(R8, R8);
    E.movRegImm32(RAX, NR_clone);
    E.syscall();
    E.testRegReg(RAX, RAX);
    E.jcc(CondE, ThreadEntryCommon); // child bootstraps itself
    E.movRegReg(RAX, RBX);           // parent: child guest tid = slot
    StoreResultAndRet();
    E.bind(Fail);
    E.movRegImm64(RAX, static_cast<uint64_t>(-11)); // -EAGAIN
    StoreResultAndRet();
  }

  E.bind(HGettid);
  E.movRegMem(RAX, R15, CtxLayout::SlotOff);
  StoreResultAndRet();

  E.bind(HYield);
  E.movRegImm32(RAX, NR_sched_yield);
  E.syscall();
  StoreResultAndRet();

  // mmap_anon(addr, len)
  {
    E.bind(HMmap);
    Label Fixed;
    E.movRegMem(RDI, R15, GuestArg(0));
    E.testRegReg(RDI, RDI);
    E.jcc(CondNE, Fixed);
    // Bump the cursor by align_up(len).
    E.movRegMem(RAX, R15, GuestArg(1));
    E.addRegImm32(RAX, 4095);
    E.andRegImm32(RAX, ~4095);
    E.movRegImm64(RCX, dataAddr(MmapCursorOff));
    E.lockXaddMemReg(RCX, 0, RAX);
    E.movRegReg(RDI, RAX);
    E.bind(Fixed);
    E.movRegReg(RBX, RDI); // result address
    E.movRegMem(RSI, R15, GuestArg(1));
    E.movRegImm32(RDX, 3);
    E.movRegImm32(R10, MmapFixedAnon);
    E.movRegImm64(R8, static_cast<uint64_t>(-1));
    E.xorRegReg(R9, R9);
    E.movRegImm32(RAX, NR_mmap);
    E.syscall();
    E.movRegReg(RAX, RBX);
    StoreResultAndRet();
  }

  E.bind(HMunmap);
  E.movRegMem(RDI, R15, GuestArg(0));
  E.movRegMem(RSI, R15, GuestArg(1));
  E.movRegImm32(RAX, NR_munmap);
  E.syscall();
  StoreResultAndRet();
}

Expected<std::vector<uint8_t>> NativeEmitter::emit() {
  if (PB.Threads.empty())
    return makeError("pinball has no threads");
  if (!PB.isFat())
    return makeError("native ELFie emission requires a fat pinball "
                     "(-log:fat 1); regular pinballs lack the pages an "
                     "unconstrained run needs (paper §II-A)");
  NumStartThreads = static_cast<unsigned>(PB.Threads.size());
  TotalSlots = NumStartThreads + Opts.MaxDynThreads;

  // Partition pages: checkpointed stack pages are stashed (§II-B3).
  for (const PageRecord &P : PB.Image) {
    bool IsStack =
        P.Addr >= PB.Meta.StackBase && P.Addr < PB.Meta.StackTop;
    (IsStack ? StackPages : NormalPages).push_back(&P);
  }

  // Compute the guest code range.
  bool AnyCode = false;
  for (const PageRecord *P : NormalPages) {
    if (!(P->Perm & vm::PermExec))
      continue;
    if (!AnyCode) {
      CodeLo = P->Addr;
      CodeHi = P->Addr + vm::GuestPageSize;
      AnyCode = true;
    } else {
      CodeLo = std::min(CodeLo, P->Addr);
      CodeHi = std::max(CodeHi, P->Addr + vm::GuestPageSize);
    }
  }
  if (!AnyCode)
    return makeError("pinball contains no executable pages");

  if (Opts.EmbedSysstate) {
    SysState = sysstate::analyze(PB);
    for (const sysstate::FileProxy &F : SysState.Files)
      if (F.OpenedBeforeRegion)
        Preopens.push_back(&F);
  }

  layoutData();
  fillContexts();

  // Emit code: startup, bootstrap, runtime, then the translation.
  TranslatorConfig TC;
  TC.HostCodeBase = NativeLayout::HostCodeBase;
  TC.TableBase = dataAddr(TableOff);
  TC.EmitICountChecks = Opts.EmitICountChecks;
  Xlate = std::make_unique<Translator>(E, TC);
  for (const PageRecord *P : NormalPages)
    if (P->Perm & vm::PermExec)
      Xlate->addCodePage(P->Addr, P->Bytes.data(), P->Bytes.size());

  emitStartup();
  emitThreadEntryCommon();
  emitRuntime();

  Translator::RuntimeLabels RT;
  RT.SyscallStub = &Syscall;
  RT.CountdownExit = &ExitBudget;
  RT.HaltExit = &ExitCommon;
  RT.AbortStub = &Abort;
  if (Error Err = Xlate->translateAll(RT))
    return Err;

  // Fill the address table now that host offsets are known.
  std::vector<uint8_t> Table = Xlate->buildAddressTable();
  Data.pokeBytes(TableOff, Table.data(), Table.size());

  // Complete the sigaction struct: the handler and restorer addresses were
  // only fixed by code emission above.
  Data.poke64(SigActOff + 0, NativeLayout::HostCodeBase + FaultHandlerOff);
  Data.poke64(SigActOff + 16, NativeLayout::HostCodeBase + RestorerOff);

  // ---- Assemble the ELF ----
  elf::ELFWriter W(elf::ET_EXEC, elf::EM_X86_64);
  W.setEntry(NativeLayout::HostCodeBase + StartupOff);

  // Guest pages at their original addresses; runs of consecutive pages
  // with equal permissions become one section each (paper §II-B2, Fig. 3).
  {
    std::vector<const PageRecord *> Sorted = NormalPages;
    std::sort(Sorted.begin(), Sorted.end(),
              [](const PageRecord *A, const PageRecord *B) {
                return A->Addr < B->Addr;
              });
    size_t I = 0;
    while (I < Sorted.size()) {
      size_t J = I + 1;
      while (J < Sorted.size() &&
             Sorted[J]->Addr == Sorted[J - 1]->Addr + vm::GuestPageSize &&
             Sorted[J]->Perm == Sorted[I]->Perm)
        ++J;
      std::vector<std::span<const uint8_t>> Run;
      Run.reserve(J - I);
      for (size_t K = I; K < J; ++K)
        Run.push_back({Sorted[K]->Bytes.data(), Sorted[K]->Bytes.size()});
      uint64_t Flags = elf::SHF_ALLOC;
      if (Sorted[I]->Perm & vm::PermWrite)
        Flags |= elf::SHF_WRITE;
      if (Sorted[I]->Perm & vm::PermExec)
        Flags |= elf::SHF_EXECINSTR;
      const char *Prefix =
          (Sorted[I]->Perm & vm::PermExec) ? ".text" : ".data";
      W.addSectionChunks(
          formatString("%s.0x%llx", Prefix,
                       static_cast<unsigned long long>(Sorted[I]->Addr)),
          Flags, Sorted[I]->Addr, std::move(Run), vm::GuestPageSize);
      I = J;
    }
  }
  // Stashed stack pages, loaded at the stash address, never at the real
  // stack address (the loader must not map them there: §II-B3).
  if (!StackPages.empty()) {
    std::vector<std::span<const uint8_t>> Stash;
    Stash.reserve(StackPages.size());
    for (const PageRecord *P : StackPages)
      Stash.push_back({P->Bytes.data(), P->Bytes.size()});
    W.addSectionChunks(".elfie.stash", elf::SHF_ALLOC,
                       NativeLayout::StashBase, std::move(Stash),
                       vm::GuestPageSize);
  }
  // Runtime code + data.
  unsigned CodeSec =
      W.addSection(".elfie.text", elf::SHF_ALLOC | elf::SHF_EXECINSTR,
                   NativeLayout::HostCodeBase, E.code(), vm::GuestPageSize);
  unsigned DataSec =
      W.addSection(".elfie.data", elf::SHF_ALLOC | elf::SHF_WRITE,
                   NativeLayout::HostDataBase, Data.bytes(),
                   vm::GuestPageSize);
  // Host thread stacks: zero pages, no file payload.
  W.addNoBitsSection(".elfie.stacks", elf::SHF_ALLOC | elf::SHF_WRITE,
                     NativeLayout::HostStackBase,
                     uint64_t(TotalSlots) * NativeLayout::HostStackSize,
                     vm::GuestPageSize);
  // Per-thread alternate signal stacks for the fault handler.
  W.addNoBitsSection(".elfie.altstack", elf::SHF_ALLOC | elf::SHF_WRITE,
                     NativeLayout::AltStackBase,
                     uint64_t(TotalSlots) * NativeLayout::AltStackSize,
                     vm::GuestPageSize);

  // Debugging symbols (paper §II-B5).
  W.addSymbol("elfie_on_start", NativeLayout::HostCodeBase + StartupOff,
              CodeSec, elf::STB_GLOBAL, elf::STT_FUNC);
  W.addSymbol("elfie_on_thread_start",
              NativeLayout::HostCodeBase + ThreadEntryOff, CodeSec,
              elf::STB_GLOBAL, elf::STT_FUNC);
  W.addSymbol("elfie_on_exit", NativeLayout::HostCodeBase + ExitOff, CodeSec,
              elf::STB_GLOBAL, elf::STT_FUNC);
  W.addSymbol("elfie_syscall", NativeLayout::HostCodeBase + SyscallOff,
              CodeSec, elf::STB_GLOBAL, elf::STT_FUNC);
  W.addSymbol("elfie_abort", NativeLayout::HostCodeBase + AbortOff, CodeSec,
              elf::STB_GLOBAL, elf::STT_FUNC);
  W.addSymbol("elfie_on_fault", NativeLayout::HostCodeBase + FaultHandlerOff,
              CodeSec, elf::STB_GLOBAL, elf::STT_FUNC);
  W.addSymbol("elfie_fault_report", dataAddr(FaultReportOff), DataSec,
              elf::STB_GLOBAL, elf::STT_OBJECT, FltReportSize);
  for (unsigned I = 0; I < NumStartThreads; ++I) {
    W.addSymbol(formatString(".t%u.ctx", I), ctxAddr(I), DataSec,
                elf::STB_LOCAL, elf::STT_OBJECT, CtxLayout::Size);
    for (unsigned R = 0; R < isa::NumGPRs; ++R)
      W.addSymbol(formatString(".t%u.r%u", I, R),
                  ctxAddr(I) + CtxLayout::gpr(R), DataSec, elf::STB_LOCAL,
                  elf::STT_OBJECT, 8);
    W.addSymbol(formatString(".t%u.icount", I), PB.Threads[I].RegionIcount,
                elf::SHN_ABS, elf::STB_LOCAL, elf::STT_NOTYPE);
  }
  W.addSymbol("elfie_region_length", PB.Meta.RegionLength, elf::SHN_ABS,
              elf::STB_GLOBAL);
  if (Opts.WarmupLength)
    W.addSymbol("elfie_warmup_length", Opts.WarmupLength, elf::SHN_ABS,
                elf::STB_GLOBAL);
  // Runtime tables, for everify and post-mortem inspection: the stash
  // table (8-byte guest address per stashed stack page) and the sysstate
  // preopen table ({fd, path address, open flags} triples, 24 bytes each).
  if (!StackPages.empty())
    W.addSymbol("elfie_stash_table", dataAddr(StashTableOff), DataSec,
                elf::STB_GLOBAL, elf::STT_OBJECT, StackPages.size() * 8);
  if (!Preopens.empty())
    W.addSymbol("elfie_fd_table", dataAddr(FdTableOff), DataSec,
                elf::STB_GLOBAL, elf::STT_OBJECT, Preopens.size() * 24);

  return W.finalize();
}

} // namespace

Expected<std::vector<uint8_t>>
core::emitNativeElfie(const Pinball &PB, const Pinball2ElfOptions &Opts) {
  NativeEmitter Emitter(PB, Opts);
  return Emitter.emit();
}
