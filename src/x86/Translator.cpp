//===- x86/Translator.cpp -------------------------------------------------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "x86/Translator.h"

#include <cstring>

using namespace elfie;
using namespace elfie::x86;
using isa::Inst;
using isa::Opcode;

void Translator::addCodePage(uint64_t GuestAddr, const uint8_t *Bytes,
                             size_t Size) {
  std::vector<uint8_t> Copy(Bytes, Bytes + Size);
  if (Pages.empty()) {
    CodeLo = GuestAddr;
    CodeHi = GuestAddr + Size;
  } else {
    CodeLo = std::min(CodeLo, GuestAddr);
    CodeHi = std::max(CodeHi, GuestAddr + Size);
  }
  Pages[GuestAddr] = std::move(Copy);
}

Label &Translator::labelFor(uint64_t GuestAddr) { return Labels[GuestAddr]; }

void Translator::loadGpr(Reg Dst, unsigned GuestReg) {
  E.movRegMem(Dst, R15, CtxLayout::gpr(GuestReg));
}

void Translator::storeGpr(unsigned GuestReg, Reg Src) {
  if (GuestReg == isa::RegZero)
    return; // r0 stays zero: its slot is initialized to 0 and never written
  E.movMemReg(R15, CtxLayout::gpr(GuestReg), Src);
}

void Translator::loadFprBits(Reg Dst, unsigned GuestReg) {
  E.movRegMem(Dst, R15, CtxLayout::fpr(GuestReg));
}

void Translator::storeFprBits(unsigned GuestReg, Reg Src) {
  E.movMemReg(R15, CtxLayout::fpr(GuestReg), Src);
}

void Translator::storeLinkAddress(unsigned GuestReg, uint64_t Value) {
  if (Value <= 0x7fffffffull) {
    E.movMemImm32(R15, CtxLayout::gpr(GuestReg),
                  static_cast<int32_t>(Value));
  } else {
    E.movRegImm64(RDX, Value);
    E.movMemReg(R15, CtxLayout::gpr(GuestReg), RDX);
  }
}

Error Translator::translateAll(const RuntimeLabels &RT) {
  if (Pages.empty())
    return makeError("no executable pages to translate");
  Abort = RT.AbortStub;

  // Translate pages in address order; each 8-byte slot gets a label bound
  // at its translation. Slots that fail to decode jump to the abort stub
  // (data bytes inside an executable page).
  for (const auto &[PageAddr, Bytes] : Pages) {
    for (size_t Off = 0; Off + 8 <= Bytes.size(); Off += 8) {
      uint64_t PC = PageAddr + Off;
      Label &L = labelFor(PC);
      E.bind(L);
      InstOffsets[PC] = E.here();
      Inst I;
      if (!isa::decode(Bytes.data() + Off, I)) {
        E.jmp(*RT.AbortStub);
        continue;
      }
      translateInst(PC, I, RT);
    }
  }

  // Bind any labels created for branch targets that fall in gaps between
  // captured pages: executing them means divergence -> abort.
  for (auto &[Addr, L] : Labels)
    if (!L.isBound()) {
      E.bind(L);
      E.jmp(*RT.AbortStub);
    }
  return Error::success();
}

bool Translator::hostOffsetFor(uint64_t GuestAddr, size_t &Out) const {
  auto It = InstOffsets.find(GuestAddr);
  if (It == InstOffsets.end())
    return false;
  Out = It->second;
  return true;
}

std::vector<uint8_t> Translator::buildAddressTable() const {
  size_t Slots = static_cast<size_t>((CodeHi - CodeLo) / 8);
  std::vector<uint8_t> Table(Slots * 8, 0);
  for (const auto &[Addr, Off] : InstOffsets) {
    uint64_t Host = Config.HostCodeBase + Off;
    size_t Slot = static_cast<size_t>((Addr - CodeLo) / 8);
    std::memcpy(Table.data() + Slot * 8, &Host, 8);
  }
  return Table;
}

void Translator::translateInst(uint64_t PC, const Inst &I,
                               const RuntimeLabels &RT) {
  Label &SyscallStub = *RT.SyscallStub;
  Label &AbortStub = *RT.AbortStub;
  // Graceful-exit countdown (software retired-instruction counter). When
  // the counter goes negative the current instruction has NOT retired;
  // the countdown-exit stub un-decrements before accounting.
  if (Config.EmitICountChecks) {
    E.decMem(R15, CtxLayout::ICountOff);
    E.jcc(CondS, *RT.CountdownExit);
  }

  auto Imm64 = [&]() { return static_cast<int64_t>(I.Imm); };

  // Emits a direct control transfer to guest address \p Target.
  auto JumpTo = [&](uint64_t Target) {
    if (Target < CodeLo || Target >= CodeHi || (Target & 7)) {
      E.jmp(AbortStub);
      return;
    }
    E.jmp(labelFor(Target));
  };

  // rd = rs1 <op> rs2 with a simple reg-mem ALU op.
  auto BinOp = [&](void (Encoder::*Op)(Reg, Reg, int32_t)) {
    loadGpr(RAX, I.Rs1);
    (E.*Op)(RAX, R15, CtxLayout::gpr(I.Rs2));
    storeGpr(I.Rd, RAX);
  };
  // rd = rs1 <op> imm.
  auto BinOpImm = [&](void (Encoder::*Op)(Reg, int32_t)) {
    loadGpr(RAX, I.Rs1);
    (E.*Op)(RAX, I.Imm);
    storeGpr(I.Rd, RAX);
  };
  auto ShiftOp = [&](void (Encoder::*Op)(Reg)) {
    loadGpr(RAX, I.Rs1);
    loadGpr(RCX, I.Rs2);
    (E.*Op)(RAX);
    storeGpr(I.Rd, RAX);
  };
  auto ShiftOpImm = [&](void (Encoder::*Op)(Reg, uint8_t)) {
    loadGpr(RAX, I.Rs1);
    (E.*Op)(RAX, static_cast<uint8_t>(I.Imm & 63));
    storeGpr(I.Rd, RAX);
  };
  auto CmpSet = [&](Cond C) {
    loadGpr(RAX, I.Rs1);
    E.cmpRegMem(RAX, R15, CtxLayout::gpr(I.Rs2));
    E.setcc(C, RAX);
    storeGpr(I.Rd, RAX);
  };
  auto Branch = [&](Cond C) {
    uint64_t Target = PC + Imm64();
    loadGpr(RAX, I.Rs1);
    E.cmpRegMem(RAX, R15, CtxLayout::gpr(I.Rs2));
    if (Target < CodeLo || Target >= CodeHi || (Target & 7)) {
      // Taken path diverges out of the captured code: abort if taken.
      E.jcc(C, AbortStub);
    } else {
      E.jcc(C, labelFor(Target));
    }
  };
  // Effective address of a load/store into RAX.
  auto LoadEA = [&]() {
    loadGpr(RAX, I.Rs1);
    if (I.Imm != 0)
      E.leaRegMem(RAX, RAX, I.Imm);
  };
  auto FBinOp = [&](void (Encoder::*Op)(XmmReg, XmmReg)) {
    E.movsdXmmMem(XMM0, R15, CtxLayout::fpr(I.Rs1));
    E.movsdXmmMem(XMM1, R15, CtxLayout::fpr(I.Rs2));
    (E.*Op)(XMM0, XMM1);
    E.movsdMemXmm(R15, CtxLayout::fpr(I.Rd), XMM0);
  };

  switch (I.Op) {
  case Opcode::Nop:
    break;
  case Opcode::Fence:
    E.mfence();
    break;
  case Opcode::Pause:
    E.pause();
    break;
  case Opcode::Halt:
    // Guest machine stop: treat as region end (halt itself retires).
    E.jmp(*RT.HaltExit);
    break;
  case Opcode::Marker:
    // SSC-style marker so x86 tools can locate ROI boundaries.
    E.movRegImm32(RBX, static_cast<uint32_t>(I.Imm));
    E.emitBytes({0x64, 0x67, 0x90});
    break;
  case Opcode::Syscall:
    E.call(SyscallStub);
    break;

  case Opcode::Add: BinOp(&Encoder::addRegMem); break;
  case Opcode::Sub: BinOp(&Encoder::subRegMem); break;
  case Opcode::Mul: BinOp(&Encoder::imulRegMem); break;
  case Opcode::Mulh:
    loadGpr(RAX, I.Rs1);
    E.imulMem(R15, CtxLayout::gpr(I.Rs2)); // rdx:rax = rax * m64
    storeGpr(I.Rd, RDX);
    break;
  case Opcode::Div:
  case Opcode::Rem: {
    bool IsRem = I.Op == Opcode::Rem;
    Label Done, DoDiv, ZeroDiv;
    loadGpr(RAX, I.Rs1);
    loadGpr(RCX, I.Rs2);
    E.testRegReg(RCX, RCX);
    E.jcc(CondE, ZeroDiv);
    // INT64_MIN / -1 overflow guard (RISC-V defined result).
    E.cmpRegImm32(RCX, -1);
    E.jcc(CondNE, DoDiv);
    E.movRegImm64(RDX, 0x8000000000000000ull);
    E.cmpRegReg(RAX, RDX);
    E.jcc(CondNE, DoDiv);
    if (IsRem)
      E.xorRegReg(RAX, RAX); // rem = 0
    // div: rax already INT64_MIN
    E.jmp(Done);
    E.bind(DoDiv);
    E.cqo();
    E.idivReg(RCX);
    if (IsRem)
      E.movRegReg(RAX, RDX);
    E.jmp(Done);
    E.bind(ZeroDiv);
    if (!IsRem)
      E.movRegImm64(RAX, UINT64_MAX); // div by zero -> all ones
    // rem by zero -> dividend (already in rax)
    E.bind(Done);
    storeGpr(I.Rd, RAX);
    break;
  }
  case Opcode::Divu:
  case Opcode::Remu: {
    bool IsRem = I.Op == Opcode::Remu;
    Label Done, ZeroDiv;
    loadGpr(RAX, I.Rs1);
    loadGpr(RCX, I.Rs2);
    E.testRegReg(RCX, RCX);
    E.jcc(CondE, ZeroDiv);
    E.xorRegReg(RDX, RDX);
    E.divReg(RCX);
    if (IsRem)
      E.movRegReg(RAX, RDX);
    E.jmp(Done);
    E.bind(ZeroDiv);
    if (!IsRem)
      E.movRegImm64(RAX, UINT64_MAX);
    E.bind(Done);
    storeGpr(I.Rd, RAX);
    break;
  }
  case Opcode::And: BinOp(&Encoder::andRegMem); break;
  case Opcode::Or: BinOp(&Encoder::orRegMem); break;
  case Opcode::Xor: BinOp(&Encoder::xorRegMem); break;
  case Opcode::Shl: ShiftOp(&Encoder::shlRegCl); break;
  case Opcode::Shr: ShiftOp(&Encoder::shrRegCl); break;
  case Opcode::Sar: ShiftOp(&Encoder::sarRegCl); break;
  case Opcode::Slt: CmpSet(CondL); break;
  case Opcode::Sltu: CmpSet(CondB); break;
  case Opcode::Seq: CmpSet(CondE); break;
  case Opcode::Mov:
    loadGpr(RAX, I.Rs1);
    storeGpr(I.Rd, RAX);
    break;

  case Opcode::Addi: BinOpImm(&Encoder::addRegImm32); break;
  case Opcode::Muli:
    loadGpr(RAX, I.Rs1);
    E.movRegImm64(RCX, static_cast<uint64_t>(Imm64()));
    E.imulRegReg(RAX, RCX);
    storeGpr(I.Rd, RAX);
    break;
  case Opcode::Andi: BinOpImm(&Encoder::andRegImm32); break;
  case Opcode::Ori:
    loadGpr(RAX, I.Rs1);
    E.movRegImm64(RCX, static_cast<uint64_t>(Imm64()));
    E.orRegReg(RAX, RCX);
    storeGpr(I.Rd, RAX);
    break;
  case Opcode::Xori:
    loadGpr(RAX, I.Rs1);
    E.movRegImm64(RCX, static_cast<uint64_t>(Imm64()));
    E.xorRegReg(RAX, RCX);
    storeGpr(I.Rd, RAX);
    break;
  case Opcode::Shli: ShiftOpImm(&Encoder::shlRegImm); break;
  case Opcode::Shri: ShiftOpImm(&Encoder::shrRegImm); break;
  case Opcode::Sari: ShiftOpImm(&Encoder::sarRegImm); break;
  case Opcode::Slti:
    loadGpr(RAX, I.Rs1);
    E.cmpRegImm32(RAX, I.Imm);
    E.setcc(CondL, RAX);
    storeGpr(I.Rd, RAX);
    break;
  case Opcode::Sltui:
    loadGpr(RAX, I.Rs1);
    E.cmpRegImm32(RAX, I.Imm);
    E.setcc(CondB, RAX);
    storeGpr(I.Rd, RAX);
    break;
  case Opcode::Ldi:
    E.movRegImm64(RAX, static_cast<uint64_t>(Imm64()));
    storeGpr(I.Rd, RAX);
    break;
  case Opcode::Ldih:
    // rd = (imm32 << 32) | (rd & 0xffffffff)
    loadGpr(RAX, I.Rd);
    E.movRegImm64(RDX, 0xffffffffull);
    E.andRegReg(RAX, RDX);
    E.movRegImm64(RDX, static_cast<uint64_t>(static_cast<uint32_t>(I.Imm))
                           << 32);
    E.orRegReg(RAX, RDX);
    storeGpr(I.Rd, RAX);
    break;
  case Opcode::Ld1:
    LoadEA();
    E.movzxRegMem8(RDX, RAX, 0);
    storeGpr(I.Rd, RDX);
    break;
  case Opcode::Ld2:
    LoadEA();
    E.movzxRegMem16(RDX, RAX, 0);
    storeGpr(I.Rd, RDX);
    break;
  case Opcode::Ld4:
    LoadEA();
    E.movRegMem32(RDX, RAX, 0);
    storeGpr(I.Rd, RDX);
    break;
  case Opcode::Ld8:
    LoadEA();
    E.movRegMem(RDX, RAX, 0);
    storeGpr(I.Rd, RDX);
    break;
  case Opcode::Ld1s:
    LoadEA();
    E.movsxRegMem8(RDX, RAX, 0);
    storeGpr(I.Rd, RDX);
    break;
  case Opcode::Ld2s:
    LoadEA();
    E.movsxRegMem16(RDX, RAX, 0);
    storeGpr(I.Rd, RDX);
    break;
  case Opcode::Ld4s:
    LoadEA();
    E.movsxRegMem32(RDX, RAX, 0);
    storeGpr(I.Rd, RDX);
    break;
  case Opcode::St1:
    LoadEA();
    loadGpr(RDX, I.Rd);
    E.movMemReg8(RAX, 0, RDX);
    break;
  case Opcode::St2:
    LoadEA();
    loadGpr(RDX, I.Rd);
    E.movMemReg16(RAX, 0, RDX);
    break;
  case Opcode::St4:
    LoadEA();
    loadGpr(RDX, I.Rd);
    E.movMemReg32(RAX, 0, RDX);
    break;
  case Opcode::St8:
    LoadEA();
    loadGpr(RDX, I.Rd);
    E.movMemReg(RAX, 0, RDX);
    break;

  case Opcode::Beq: Branch(CondE); break;
  case Opcode::Bne: Branch(CondNE); break;
  case Opcode::Blt: Branch(CondL); break;
  case Opcode::Bge: Branch(CondGE); break;
  case Opcode::Bltu: Branch(CondB); break;
  case Opcode::Bgeu: Branch(CondAE); break;
  case Opcode::Jmp:
    JumpTo(PC + Imm64());
    break;
  case Opcode::Jal: {
    if (I.Rd != isa::RegZero)
      storeLinkAddress(I.Rd, PC + 8);
    JumpTo(PC + Imm64());
    break;
  }
  case Opcode::Jalr: {
    if (I.Rd != isa::RegZero)
      storeLinkAddress(I.Rd, PC + 8);
    loadGpr(RAX, I.Rs1);
    if (I.Imm != 0)
      E.leaRegMem(RAX, RAX, I.Imm);
    // Alignment check.
    E.testRegImm32(RAX, 7);
    E.jcc(CondNE, AbortStub);
    // Bounds check and table lookup.
    E.movRegImm64(RDX, CodeLo);
    E.subRegReg(RAX, RDX);
    E.movRegImm64(RDX, CodeHi - CodeLo);
    E.cmpRegReg(RAX, RDX);
    E.jcc(CondAE, AbortStub);
    E.movRegImm64(RDX, Config.TableBase);
    E.addRegReg(RDX, RAX);
    E.movRegMem(RAX, RDX, 0);
    E.testRegReg(RAX, RAX);
    E.jcc(CondE, AbortStub);
    E.jmpReg(RAX);
    break;
  }

  case Opcode::AmoAdd:
    loadGpr(RAX, I.Rs2);
    loadGpr(RCX, I.Rs1);
    E.lockXaddMemReg(RCX, 0, RAX);
    storeGpr(I.Rd, RAX);
    break;
  case Opcode::AmoSwap:
    loadGpr(RAX, I.Rs2);
    loadGpr(RCX, I.Rs1);
    E.xchgMemReg(RCX, 0, RAX);
    storeGpr(I.Rd, RAX);
    break;
  case Opcode::Cas:
    loadGpr(RAX, I.Rd); // expected
    loadGpr(RDX, I.Rs2); // new value
    loadGpr(RCX, I.Rs1); // address
    E.lockCmpxchgMemReg(RCX, 0, RDX);
    storeGpr(I.Rd, RAX); // rax holds the old value either way
    break;

  case Opcode::Fadd: FBinOp(&Encoder::addsd); break;
  case Opcode::Fsub: FBinOp(&Encoder::subsd); break;
  case Opcode::Fmul: FBinOp(&Encoder::mulsd); break;
  case Opcode::Fdiv: FBinOp(&Encoder::divsd); break;
  case Opcode::Fmin: FBinOp(&Encoder::minsd); break;
  case Opcode::Fmax: FBinOp(&Encoder::maxsd); break;
  case Opcode::Fsqrt:
    E.movsdXmmMem(XMM0, R15, CtxLayout::fpr(I.Rs1));
    E.sqrtsd(XMM0, XMM0);
    E.movsdMemXmm(R15, CtxLayout::fpr(I.Rd), XMM0);
    break;
  case Opcode::Fneg:
    loadFprBits(RAX, I.Rs1);
    E.movRegImm64(RDX, 0x8000000000000000ull);
    E.xorRegReg(RAX, RDX);
    storeFprBits(I.Rd, RAX);
    break;
  case Opcode::Fabs:
    loadFprBits(RAX, I.Rs1);
    E.movRegImm64(RDX, 0x7fffffffffffffffull);
    E.andRegReg(RAX, RDX);
    storeFprBits(I.Rd, RAX);
    break;
  case Opcode::Fmov:
    loadFprBits(RAX, I.Rs1);
    storeFprBits(I.Rd, RAX);
    break;
  case Opcode::Feq:
    E.movsdXmmMem(XMM0, R15, CtxLayout::fpr(I.Rs1));
    E.movsdXmmMem(XMM1, R15, CtxLayout::fpr(I.Rs2));
    E.ucomisd(XMM0, XMM1);
    E.setcc(CondE, RAX);
    E.setcc(CondNP, RDX);
    E.andRegReg(RAX, RDX);
    storeGpr(I.Rd, RAX);
    break;
  case Opcode::Flt:
    // a < b  <=>  ucomisd(b, a) sets "above" (NaN-safe).
    E.movsdXmmMem(XMM0, R15, CtxLayout::fpr(I.Rs2));
    E.movsdXmmMem(XMM1, R15, CtxLayout::fpr(I.Rs1));
    E.ucomisd(XMM0, XMM1);
    E.setcc(CondA, RAX);
    storeGpr(I.Rd, RAX);
    break;
  case Opcode::Fle:
    E.movsdXmmMem(XMM0, R15, CtxLayout::fpr(I.Rs2));
    E.movsdXmmMem(XMM1, R15, CtxLayout::fpr(I.Rs1));
    E.ucomisd(XMM0, XMM1);
    E.setcc(CondAE, RAX);
    storeGpr(I.Rd, RAX);
    break;
  case Opcode::Fld:
    LoadEA();
    E.movRegMem(RDX, RAX, 0);
    storeFprBits(I.Rd, RDX);
    break;
  case Opcode::Fst:
    LoadEA();
    loadFprBits(RDX, I.Rd);
    E.movMemReg(RAX, 0, RDX);
    break;
  case Opcode::Fcvtid:
    loadGpr(RAX, I.Rs1);
    E.cvtsi2sd(XMM0, RAX);
    E.movsdMemXmm(R15, CtxLayout::fpr(I.Rd), XMM0);
    break;
  case Opcode::Fcvtdi:
    E.movsdXmmMem(XMM0, R15, CtxLayout::fpr(I.Rs1));
    E.cvttsd2si(RAX, XMM0);
    storeGpr(I.Rd, RAX);
    break;
  case Opcode::FmvToF:
    loadGpr(RAX, I.Rs1);
    storeFprBits(I.Rd, RAX);
    break;
  case Opcode::FmvToI:
    loadFprBits(RAX, I.Rs1);
    storeGpr(I.Rd, RAX);
    break;
  }
}
