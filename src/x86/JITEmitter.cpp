//===- x86/JITEmitter.cpp -------------------------------------------------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "x86/JITEmitter.h"

#include <cstring>
#include <deque>

#include <sys/mman.h>

using namespace elfie;
using namespace elfie::x86;
using isa::Inst;
using isa::Opcode;

namespace {

/// Per-block emission state. Register conventions inside a block:
///   %r14 ThreadState base   %r15 JitExecContext base (both callee-saved)
///   %rax/%rcx/%rdx          scratch (never live across a helper call)
///   %rsi/%rdi               helper arguments
class BlockEmitter {
public:
  BlockEmitter(uint64_t StartPC, const JitLayout &L, JitBlockCode &Out)
      : StartPC(StartPC), L(L), Out(Out) {}

  bool emit(const Inst *Insts, size_t N);

private:
  // A cold exit stub: subtract the retired prefix, set NextPC, return Kind.
  struct Stub {
    Label Target;
    uint32_t Sub;
    uint64_t NextPC;
    uint32_t Kind;
  };

  Label &stub(uint32_t Sub, uint64_t NextPC, uint32_t Kind) {
    Stubs.push_back(Stub{Label(), Sub, NextPC, Kind});
    return Stubs.back().Target;
  }

  void loadGpr(Reg Dst, unsigned R) { E.movRegMem(Dst, R14, L.gpr(R)); }
  void storeGpr(unsigned R, Reg Src) {
    if (R == isa::RegZero)
      return; // r0 stays zero: its slot is never written
    E.movMemReg(R14, L.gpr(R), Src);
  }
  void loadFprBits(Reg Dst, unsigned R) { E.movRegMem(Dst, R14, L.fpr(R)); }
  void storeFprBits(unsigned R, Reg Src) { E.movMemReg(R14, L.fpr(R), Src); }

  void setNextPC(uint64_t V) {
    if (V <= 0x7fffffffull) {
      E.movMemImm32(R15, L.NextPCOff, static_cast<int32_t>(V));
    } else {
      E.movRegImm64(RCX, V);
      E.movMemReg(R15, L.NextPCOff, RCX);
    }
  }

  void subCountdown(uint32_t N) {
    if (N)
      E.addMemImm32(R15, L.CountdownOff, -static_cast<int32_t>(N));
  }

  /// Retires \p N instructions and leaves through a patchable chain jmp to
  /// guest address \p Target (falls through to a Chain return until the
  /// block cache patches it).
  void chainExit(uint32_t N, uint64_t Target) {
    subCountdown(N);
    Out.Exits.push_back({E.here(), Target});
    E.emitBytes({0xE9, 0, 0, 0, 0});
    setNextPC(Target);
    E.movRegImm32(RAX, JitExitChain);
    E.ret();
  }

  /// Calls the load helper for Addr = r[Rs1] + Imm; result in RAX. Emits
  /// the fault check (exit with instruction \p Idx not retired).
  void emitLoadCall(size_t Idx, const Inst &I, JitLoadKind Kind) {
    loadGpr(RSI, I.Rs1);
    if (I.Imm != 0)
      E.leaRegMem(RSI, RSI, I.Imm);
    E.movRegMem(RDI, R15, L.CookieOff);
    E.movRegImm32(RDX, Kind);
    E.movRegMem(RAX, R15, L.LoadFnOff);
    E.callReg(RAX);
    E.cmpMemImm32(R15, L.MemOkOff, 0);
    E.jcc(CondE, stub(static_cast<uint32_t>(Idx), StartPC + 8 * Idx,
                      JitExitMemRetry));
  }

  /// Calls the store helper with the value in RDX. Emits the fault check
  /// and the invalidation-pending check (the store may have clobbered
  /// compiled code, including this block).
  void emitStoreCall(size_t Idx, const Inst &I, uint32_t Size) {
    E.movRegMem(RDI, R15, L.CookieOff);
    E.movRegImm32(RCX, Size);
    E.movRegMem(RAX, R15, L.StoreFnOff);
    E.callReg(RAX);
    E.cmpMemImm32(R15, L.MemOkOff, 0);
    E.jcc(CondE, stub(static_cast<uint32_t>(Idx), StartPC + 8 * Idx,
                      JitExitMemRetry));
    E.cmpMemImm32(R15, L.PendingOff, 0);
    E.jcc(CondNE, stub(static_cast<uint32_t>(Idx) + 1,
                       StartPC + 8 * (Idx + 1), JitExitInvalidate));
  }

  void emitInst(size_t Idx, const Inst &I, uint32_t Prefix);

  uint64_t StartPC;
  const JitLayout &L;
  JitBlockCode &Out;
  Encoder E;
  std::deque<Stub> Stubs; // deque: stable Label addresses across growth
};

bool BlockEmitter::emit(const Inst *Insts, size_t N) {
  // Compilable prefix: everything up to (exclusive) the first instruction
  // that needs the interpreter. Terminators other than those end the block
  // anyway, so the prefix is the whole block in the common case.
  uint32_t Prefix = 0;
  while (Prefix < N && !jitNeedsInterpreter(Insts[Prefix].Op))
    ++Prefix;
  if (Prefix == 0)
    return false;
  Out.NumInsts = Prefix;

  // Entry countdown check: every path below retires at most Prefix
  // instructions, so one signed compare up front replaces the AOT
  // translator's per-instruction dec/js pair.
  E.cmpMemImm32(R15, L.CountdownOff, static_cast<int32_t>(Prefix));
  E.jcc(CondL, stub(0, StartPC, JitExitCountdown));

  bool Terminated = false;
  for (size_t Idx = 0; Idx < Prefix; ++Idx) {
    emitInst(Idx, Insts[Idx], Prefix);
    if (isa::isControlFlow(Insts[Idx].Op)) {
      Terminated = true;
      break; // control flow is last in a decoded block by construction
    }
  }

  if (!Terminated) {
    if (Prefix < N) {
      // Bail: the next instruction (syscall/marker/halt/pause/atomic) runs
      // in the interpreter; the prefix has retired.
      subCountdown(Prefix);
      setNextPC(StartPC + 8 * Prefix);
      E.movRegImm32(RAX, JitExitBail);
      E.ret();
    } else {
      // Page-end / max-length block: plain fallthrough.
      chainExit(Prefix, StartPC + 8 * Prefix);
    }
  }

  for (Stub &S : Stubs) {
    E.bind(S.Target);
    subCountdown(S.Sub);
    setNextPC(S.NextPC);
    E.movRegImm32(RAX, S.Kind);
    E.ret();
  }

  Out.Code = E.code();
  return true;
}

void BlockEmitter::emitInst(size_t Idx, const Inst &I, uint32_t Prefix) {
  uint64_t PC = StartPC + 8 * Idx;
  auto Imm64 = [&]() { return static_cast<int64_t>(I.Imm); };

  auto BinOp = [&](void (Encoder::*Op)(Reg, Reg, int32_t)) {
    loadGpr(RAX, I.Rs1);
    (E.*Op)(RAX, R14, L.gpr(I.Rs2));
    storeGpr(I.Rd, RAX);
  };
  auto BinOpImm = [&](void (Encoder::*Op)(Reg, int32_t)) {
    loadGpr(RAX, I.Rs1);
    (E.*Op)(RAX, I.Imm);
    storeGpr(I.Rd, RAX);
  };
  auto ShiftOp = [&](void (Encoder::*Op)(Reg)) {
    loadGpr(RAX, I.Rs1);
    loadGpr(RCX, I.Rs2);
    (E.*Op)(RAX);
    storeGpr(I.Rd, RAX);
  };
  auto ShiftOpImm = [&](void (Encoder::*Op)(Reg, uint8_t)) {
    loadGpr(RAX, I.Rs1);
    (E.*Op)(RAX, static_cast<uint8_t>(I.Imm & 63));
    storeGpr(I.Rd, RAX);
  };
  auto CmpSet = [&](Cond C) {
    loadGpr(RAX, I.Rs1);
    E.cmpRegMem(RAX, R14, L.gpr(I.Rs2));
    E.setcc(C, RAX);
    storeGpr(I.Rd, RAX);
  };
  // Branches are the block's last instruction: both outcomes leave through
  // chain exits, each retiring the whole prefix.
  auto Branch = [&](Cond C) {
    loadGpr(RAX, I.Rs1);
    E.cmpRegMem(RAX, R14, L.gpr(I.Rs2));
    Label Taken;
    E.jcc(C, Taken);
    chainExit(Prefix, PC + 8);
    E.bind(Taken);
    chainExit(Prefix, PC + Imm64());
  };
  auto StoreLink = [&](unsigned Rd) {
    if (Rd == isa::RegZero)
      return;
    E.movRegImm64(RAX, PC + 8);
    E.movMemReg(R14, L.gpr(Rd), RAX);
  };
  auto FBinOp = [&](void (Encoder::*Op)(XmmReg, XmmReg)) {
    E.movsdXmmMem(XMM0, R14, L.fpr(I.Rs1));
    E.movsdXmmMem(XMM1, R14, L.fpr(I.Rs2));
    (E.*Op)(XMM0, XMM1);
    E.movsdMemXmm(R14, L.fpr(I.Rd), XMM0);
  };
  // Effective address of a load/store into RSI (helper argument).
  auto LoadEA = [&]() {
    loadGpr(RSI, I.Rs1);
    if (I.Imm != 0)
      E.leaRegMem(RSI, RSI, I.Imm);
  };
  auto Load = [&](JitLoadKind Kind) {
    emitLoadCall(Idx, I, Kind);
    storeGpr(I.Rd, RAX);
  };
  auto Store = [&](uint32_t Size) {
    LoadEA();
    loadGpr(RDX, I.Rd);
    emitStoreCall(Idx, I, Size);
  };

  switch (I.Op) {
  case Opcode::Nop:
  case Opcode::Fence:
    // Fence: the EVM runs on one host thread, so like the interpreter the
    // fence only retires.
    break;

  case Opcode::Add: BinOp(&Encoder::addRegMem); break;
  case Opcode::Sub: BinOp(&Encoder::subRegMem); break;
  case Opcode::Mul: BinOp(&Encoder::imulRegMem); break;
  case Opcode::Mulh:
    loadGpr(RAX, I.Rs1);
    E.imulMem(R14, L.gpr(I.Rs2)); // rdx:rax = rax * m64
    storeGpr(I.Rd, RDX);
    break;
  case Opcode::Div:
  case Opcode::Rem: {
    bool IsRem = I.Op == Opcode::Rem;
    Label Done, DoDiv, ZeroDiv;
    loadGpr(RAX, I.Rs1);
    loadGpr(RCX, I.Rs2);
    E.testRegReg(RCX, RCX);
    E.jcc(CondE, ZeroDiv);
    E.cmpRegImm32(RCX, -1);
    E.jcc(CondNE, DoDiv);
    E.movRegImm64(RDX, 0x8000000000000000ull);
    E.cmpRegReg(RAX, RDX);
    E.jcc(CondNE, DoDiv);
    if (IsRem)
      E.xorRegReg(RAX, RAX); // INT64_MIN % -1 == 0
    E.jmp(Done);             // div: rax already INT64_MIN
    E.bind(DoDiv);
    E.cqo();
    E.idivReg(RCX);
    if (IsRem)
      E.movRegReg(RAX, RDX);
    E.jmp(Done);
    E.bind(ZeroDiv);
    if (!IsRem)
      E.movRegImm64(RAX, UINT64_MAX); // div by zero -> all ones
    E.bind(Done);                     // rem by zero -> dividend (in rax)
    storeGpr(I.Rd, RAX);
    break;
  }
  case Opcode::Divu:
  case Opcode::Remu: {
    bool IsRem = I.Op == Opcode::Remu;
    Label Done, ZeroDiv;
    loadGpr(RAX, I.Rs1);
    loadGpr(RCX, I.Rs2);
    E.testRegReg(RCX, RCX);
    E.jcc(CondE, ZeroDiv);
    E.xorRegReg(RDX, RDX);
    E.divReg(RCX);
    if (IsRem)
      E.movRegReg(RAX, RDX);
    E.jmp(Done);
    E.bind(ZeroDiv);
    if (!IsRem)
      E.movRegImm64(RAX, UINT64_MAX);
    E.bind(Done);
    storeGpr(I.Rd, RAX);
    break;
  }
  case Opcode::And: BinOp(&Encoder::andRegMem); break;
  case Opcode::Or: BinOp(&Encoder::orRegMem); break;
  case Opcode::Xor: BinOp(&Encoder::xorRegMem); break;
  case Opcode::Shl: ShiftOp(&Encoder::shlRegCl); break;
  case Opcode::Shr: ShiftOp(&Encoder::shrRegCl); break;
  case Opcode::Sar: ShiftOp(&Encoder::sarRegCl); break;
  case Opcode::Slt: CmpSet(CondL); break;
  case Opcode::Sltu: CmpSet(CondB); break;
  case Opcode::Seq: CmpSet(CondE); break;
  case Opcode::Mov:
    loadGpr(RAX, I.Rs1);
    storeGpr(I.Rd, RAX);
    break;

  case Opcode::Addi: BinOpImm(&Encoder::addRegImm32); break;
  case Opcode::Muli:
    loadGpr(RAX, I.Rs1);
    E.movRegImm64(RCX, static_cast<uint64_t>(Imm64()));
    E.imulRegReg(RAX, RCX);
    storeGpr(I.Rd, RAX);
    break;
  case Opcode::Andi: BinOpImm(&Encoder::andRegImm32); break;
  case Opcode::Ori:
    loadGpr(RAX, I.Rs1);
    E.movRegImm64(RCX, static_cast<uint64_t>(Imm64()));
    E.orRegReg(RAX, RCX);
    storeGpr(I.Rd, RAX);
    break;
  case Opcode::Xori:
    loadGpr(RAX, I.Rs1);
    E.movRegImm64(RCX, static_cast<uint64_t>(Imm64()));
    E.xorRegReg(RAX, RCX);
    storeGpr(I.Rd, RAX);
    break;
  case Opcode::Shli: ShiftOpImm(&Encoder::shlRegImm); break;
  case Opcode::Shri: ShiftOpImm(&Encoder::shrRegImm); break;
  case Opcode::Sari: ShiftOpImm(&Encoder::sarRegImm); break;
  case Opcode::Slti:
    loadGpr(RAX, I.Rs1);
    E.cmpRegImm32(RAX, I.Imm);
    E.setcc(CondL, RAX);
    storeGpr(I.Rd, RAX);
    break;
  case Opcode::Sltui:
    loadGpr(RAX, I.Rs1);
    E.cmpRegImm32(RAX, I.Imm);
    E.setcc(CondB, RAX);
    storeGpr(I.Rd, RAX);
    break;
  case Opcode::Ldi:
    E.movRegImm64(RAX, static_cast<uint64_t>(Imm64()));
    storeGpr(I.Rd, RAX);
    break;
  case Opcode::Ldih:
    loadGpr(RAX, I.Rd);
    E.movRegImm64(RDX, 0xffffffffull);
    E.andRegReg(RAX, RDX);
    E.movRegImm64(RDX, static_cast<uint64_t>(static_cast<uint32_t>(I.Imm))
                           << 32);
    E.orRegReg(RAX, RDX);
    storeGpr(I.Rd, RAX);
    break;

  case Opcode::Ld1: Load(JitLoadU8); break;
  case Opcode::Ld2: Load(JitLoadU16); break;
  case Opcode::Ld4: Load(JitLoadU32); break;
  case Opcode::Ld8: Load(JitLoadU64); break;
  case Opcode::Ld1s: Load(JitLoadS8); break;
  case Opcode::Ld2s: Load(JitLoadS16); break;
  case Opcode::Ld4s: Load(JitLoadS32); break;
  case Opcode::St1: Store(1); break;
  case Opcode::St2: Store(2); break;
  case Opcode::St4: Store(4); break;
  case Opcode::St8: Store(8); break;

  case Opcode::Beq: Branch(CondE); break;
  case Opcode::Bne: Branch(CondNE); break;
  case Opcode::Blt: Branch(CondL); break;
  case Opcode::Bge: Branch(CondGE); break;
  case Opcode::Bltu: Branch(CondB); break;
  case Opcode::Bgeu: Branch(CondAE); break;
  case Opcode::Jmp:
    chainExit(Prefix, PC + Imm64());
    break;
  case Opcode::Jal:
    StoreLink(I.Rd);
    chainExit(Prefix, PC + Imm64());
    break;
  case Opcode::Jalr:
    // Target from the *pre-link* register file; alignment check before the
    // link write (a misaligned jalr faults without writing rd).
    loadGpr(RCX, I.Rs1);
    if (I.Imm != 0)
      E.leaRegMem(RCX, RCX, I.Imm);
    E.testRegImm32(RCX, 7);
    E.jcc(CondNE, stub(static_cast<uint32_t>(Idx), PC, JitExitBail));
    StoreLink(I.Rd);
    E.movMemReg(R15, L.NextPCOff, RCX);
    subCountdown(Prefix);
    E.movRegImm32(RAX, JitExitIndirect);
    E.ret();
    break;

  case Opcode::Fadd: FBinOp(&Encoder::addsd); break;
  case Opcode::Fsub: FBinOp(&Encoder::subsd); break;
  case Opcode::Fmul: FBinOp(&Encoder::mulsd); break;
  case Opcode::Fdiv: FBinOp(&Encoder::divsd); break;
  case Opcode::Fmin: FBinOp(&Encoder::minsd); break;
  case Opcode::Fmax: FBinOp(&Encoder::maxsd); break;
  case Opcode::Fsqrt:
    E.movsdXmmMem(XMM0, R14, L.fpr(I.Rs1));
    E.sqrtsd(XMM0, XMM0);
    E.movsdMemXmm(R14, L.fpr(I.Rd), XMM0);
    break;
  case Opcode::Fneg:
    loadFprBits(RAX, I.Rs1);
    E.movRegImm64(RDX, 0x8000000000000000ull);
    E.xorRegReg(RAX, RDX);
    storeFprBits(I.Rd, RAX);
    break;
  case Opcode::Fabs:
    loadFprBits(RAX, I.Rs1);
    E.movRegImm64(RDX, 0x7fffffffffffffffull);
    E.andRegReg(RAX, RDX);
    storeFprBits(I.Rd, RAX);
    break;
  case Opcode::Fmov:
    loadFprBits(RAX, I.Rs1);
    storeFprBits(I.Rd, RAX);
    break;
  case Opcode::Feq:
    E.movsdXmmMem(XMM0, R14, L.fpr(I.Rs1));
    E.movsdXmmMem(XMM1, R14, L.fpr(I.Rs2));
    E.ucomisd(XMM0, XMM1);
    E.setcc(CondE, RAX);
    E.setcc(CondNP, RDX);
    E.andRegReg(RAX, RDX);
    storeGpr(I.Rd, RAX);
    break;
  case Opcode::Flt:
    // a < b  <=>  ucomisd(b, a) sets "above" (NaN-safe).
    E.movsdXmmMem(XMM0, R14, L.fpr(I.Rs2));
    E.movsdXmmMem(XMM1, R14, L.fpr(I.Rs1));
    E.ucomisd(XMM0, XMM1);
    E.setcc(CondA, RAX);
    storeGpr(I.Rd, RAX);
    break;
  case Opcode::Fle:
    E.movsdXmmMem(XMM0, R14, L.fpr(I.Rs2));
    E.movsdXmmMem(XMM1, R14, L.fpr(I.Rs1));
    E.ucomisd(XMM0, XMM1);
    E.setcc(CondAE, RAX);
    storeGpr(I.Rd, RAX);
    break;
  case Opcode::Fld:
    emitLoadCall(Idx, I, JitLoadU64);
    storeFprBits(I.Rd, RAX);
    break;
  case Opcode::Fst:
    LoadEA();
    loadFprBits(RDX, I.Rd);
    emitStoreCall(Idx, I, 8);
    break;
  case Opcode::Fcvtid:
    loadGpr(RAX, I.Rs1);
    E.cvtsi2sd(XMM0, RAX);
    E.movsdMemXmm(R14, L.fpr(I.Rd), XMM0);
    break;
  case Opcode::Fcvtdi:
    E.movsdXmmMem(XMM0, R14, L.fpr(I.Rs1));
    E.cvttsd2si(RAX, XMM0);
    storeGpr(I.Rd, RAX);
    break;
  case Opcode::FmvToF:
    loadGpr(RAX, I.Rs1);
    storeFprBits(I.Rd, RAX);
    break;
  case Opcode::FmvToI:
    loadFprBits(RAX, I.Rs1);
    storeGpr(I.Rd, RAX);
    break;

  case Opcode::Syscall:
  case Opcode::Marker:
  case Opcode::Halt:
  case Opcode::Pause:
  case Opcode::AmoAdd:
  case Opcode::AmoSwap:
  case Opcode::Cas:
    // Unreachable: jitNeedsInterpreter() keeps these out of the prefix.
    break;
  }
}

} // namespace

/// Atomics bail so the EVM's sequential-consistency bookkeeping (and
/// exec-page invalidation on atomic stores) stays in one place; syscalls
/// and markers keep observer and interceptor callbacks working; pause must
/// end the scheduler quantum.
bool x86::jitNeedsInterpreter(Opcode Op) {
  switch (Op) {
  case Opcode::Syscall:
  case Opcode::Marker:
  case Opcode::Halt:
  case Opcode::Pause:
  case Opcode::AmoAdd:
  case Opcode::AmoSwap:
  case Opcode::Cas:
    return true;
  default:
    return false;
  }
}

bool x86::emitJitBlock(uint64_t StartPC, const Inst *Insts, size_t N,
                       const JitLayout &L, JitBlockCode &Out) {
  Out = JitBlockCode{};
  BlockEmitter BE(StartPC, L, Out);
  return BE.emit(Insts, N);
}

void x86::emitJitTrampoline(Encoder &E, const JitLayout &L) {
  // uint64_t trampoline(void *Ctx /*rdi*/, const void *Entry /*rsi*/)
  E.pushReg(RBP);
  E.pushReg(RBX);
  E.pushReg(R12);
  E.pushReg(R13);
  E.pushReg(R14);
  E.pushReg(R15);
  E.movRegReg(R15, RDI);
  E.movRegMem(R14, R15, L.ThreadOff);
  E.callReg(RSI); // blocks chain among themselves and ret here when done
  E.popReg(R15);
  E.popReg(R14);
  E.popReg(R13);
  E.popReg(R12);
  E.popReg(RBX);
  E.popReg(RBP);
  E.ret();
}

// ---------------------------------------------------------------------------
// ExecBuffer: one mmap'd region, RW only inside begin/endWrite (W^X).
// ---------------------------------------------------------------------------

ExecBuffer::~ExecBuffer() {
  if (Base)
    ::munmap(Base, Cap);
}

bool ExecBuffer::init(size_t Bytes) {
  void *P = ::mmap(nullptr, Bytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (P == MAP_FAILED)
    return false;
  Base = static_cast<uint8_t *>(P);
  Cap = Bytes;
  Used = 0;
  Writable = true;
  return true;
}

void ExecBuffer::beginWrite() {
  if (!Writable) {
    ::mprotect(Base, Cap, PROT_READ | PROT_WRITE);
    Writable = true;
  }
}

void ExecBuffer::endWrite() {
  if (Writable) {
    ::mprotect(Base, Cap, PROT_READ | PROT_EXEC);
    Writable = false;
  }
}

size_t ExecBuffer::append(const uint8_t *Bytes, size_t N) {
  size_t Off = (Used + 15) & ~size_t(15);
  if (Off + N > Cap)
    return SIZE_MAX;
  std::memcpy(Base + Off, Bytes, N);
  Used = Off + N;
  return Off;
}

void ExecBuffer::patchJmp(size_t JmpOff, size_t Target) {
  // rel32 of `E9 rel32` is relative to the end of the 5-byte jmp.
  int64_t Rel = static_cast<int64_t>(Target) -
                (static_cast<int64_t>(JmpOff) + 5);
  uint32_t V = static_cast<uint32_t>(static_cast<int32_t>(Rel));
  std::memcpy(Base + JmpOff + 1, &V, 4);
}
