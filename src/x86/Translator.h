//===- x86/Translator.h - EG64 -> x86-64 AOT translation --------*- C++ -*-===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translates the checkpointed EG64 code pages of a pinball into native
/// x86-64 code for the emitted ELFie. This is the piece that differs most
/// from Intel's pinball2elf — their guest ISA *is* the host ISA, so their
/// ELFies reuse the checkpointed code bytes directly; here the guest is
/// EG64, so pinball2elf compiles the code pages (exact linear disassembly,
/// possible because EG64 is fixed-width with aligned control-flow targets)
/// and the ELFie executes the translation natively. See DESIGN.md §2.
///
/// Translation model:
///  * %r15 holds the current thread's guest context block; guest registers
///    live at fixed offsets (GPR slot 0 is never written, keeping r0 == 0).
///  * Before each guest instruction the translator emits the graceful-exit
///    countdown: `dec qword [r15 + ICountOff]; js exit_stub` — exactly the
///    per-thread retired-instruction budget of paper §II-C1, implemented in
///    software instead of a PMU counter (see DESIGN.md §2 substitutions).
///  * Direct branches resolve at translation time; indirect jumps (`jalr`)
///    go through an address-translation table (guest offset -> host
///    address) with bounds/alignment checks that route divergence to the
///    abort stub (the "ungraceful exit" of §II-C1 becomes a controlled
///    SIGILL or error exit).
///  * `syscall` calls the runtime stub; `marker` emits an SSC-style marker
///    (`mov ebx, tag; 0x64 0x67 0x90`) so x86 analysis tools can find ROI
///    boundaries (§II-B5).
///
//===----------------------------------------------------------------------===//

#ifndef ELFIE_X86_TRANSLATOR_H
#define ELFIE_X86_TRANSLATOR_H

#include "isa/ISA.h"
#include "support/Error.h"
#include "x86/Encoder.h"

#include <cstdint>
#include <map>
#include <vector>

namespace elfie {
namespace x86 {

/// Guest-context block layout (offsets off %r15). One block per thread,
/// pre-initialized from the pinball's .reg data — the ELFie's "thread
/// context" data section (paper Fig. 3).
struct CtxLayout {
  static constexpr int32_t GprOff = 0;     ///< 16 x u64
  static constexpr int32_t FprOff = 128;   ///< 16 x f64 (as bits)
  static constexpr int32_t ICountOff = 256; ///< remaining budget (i64)
  static constexpr int32_t BudgetOff = 264; ///< initial budget
  static constexpr int32_t SlotOff = 272;   ///< thread slot index
  static constexpr int32_t StartTscOff = 280;
  static constexpr int32_t StartPCOff = 288; ///< guest pc to start at
  static constexpr int32_t Size = 512;

  static int32_t gpr(unsigned R) { return GprOff + 8 * static_cast<int>(R); }
  static int32_t fpr(unsigned R) { return FprOff + 8 * static_cast<int>(R); }
};

/// Translator configuration: absolute addresses fixed by pinball2elf's
/// ELFie layout.
struct TranslatorConfig {
  /// Absolute virtual address the encoder's output will be loaded at.
  uint64_t HostCodeBase = 0;
  /// Absolute virtual address of the guest->host address table. Entry i
  /// (8 bytes) corresponds to guest address CodeLo + 8*i and holds the
  /// absolute host address of its translation (0 = not code).
  uint64_t TableBase = 0;
  /// When false, omit the per-instruction countdown (used by ELFies meant
  /// to run under an external tool that enforces the region end, §II-C1).
  bool EmitICountChecks = true;
};

/// One translated guest code range.
class Translator {
public:
  Translator(Encoder &E, TranslatorConfig Config)
      : E(E), Config(Config) {}

  /// Registers the contents of a captured executable page.
  void addCodePage(uint64_t GuestAddr, const uint8_t *Bytes, size_t Size);

  /// Runtime entry points the translation jumps into (labels in the same
  /// encoder, bound by the runtime emitter before or after this call).
  struct RuntimeLabels {
    Label *SyscallStub = nullptr;   ///< guest `syscall`
    Label *CountdownExit = nullptr; ///< budget exhausted (un-retires one)
    Label *HaltExit = nullptr;      ///< guest `halt` (already retired)
    Label *AbortStub = nullptr;     ///< divergence (ungraceful exit)
  };

  /// Translates everything registered.
  Error translateAll(const RuntimeLabels &RT);

  /// Bounds of the translated guest code range.
  uint64_t codeLo() const { return CodeLo; }
  uint64_t codeHi() const { return CodeHi; }

  /// Encoder offset of the translation of \p GuestAddr; returns false when
  /// the address is not translated code.
  bool hostOffsetFor(uint64_t GuestAddr, size_t &Out) const;

  /// Builds the address-translation table: one u64 host absolute address
  /// per 8 guest bytes in [codeLo, codeHi), 0 for non-code slots. Call
  /// after translateAll().
  std::vector<uint8_t> buildAddressTable() const;

  /// Number of guest instructions translated.
  size_t translatedCount() const { return InstOffsets.size(); }

private:
  void translateInst(uint64_t PC, const isa::Inst &I,
                     const RuntimeLabels &RT);
  Label &labelFor(uint64_t GuestAddr);
  // Helpers reading/writing guest register slots.
  void loadGpr(Reg Dst, unsigned GuestReg);
  void storeGpr(unsigned GuestReg, Reg Src);
  void loadFprBits(Reg Dst, unsigned GuestReg);
  void storeFprBits(unsigned GuestReg, Reg Src);
  void storeLinkAddress(unsigned GuestReg, uint64_t Value);

  Encoder &E;
  TranslatorConfig Config;
  std::map<uint64_t, std::vector<uint8_t>> Pages;
  uint64_t CodeLo = 0, CodeHi = 0;
  std::map<uint64_t, Label> Labels;      // guest addr -> host label
  std::map<uint64_t, size_t> InstOffsets; // guest addr -> encoder offset
  Label *Abort = nullptr;
};

} // namespace x86
} // namespace elfie

#endif // ELFIE_X86_TRANSLATOR_H
