//===- x86/Encoder.cpp ----------------------------------------------------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "x86/Encoder.h"

#include <cstring>

using namespace elfie;
using namespace elfie::x86;

void Encoder::dword(uint32_t V) {
  for (int I = 0; I < 4; ++I)
    byte(static_cast<uint8_t>(V >> (8 * I)));
}

void Encoder::qword(uint64_t V) {
  for (int I = 0; I < 8; ++I)
    byte(static_cast<uint8_t>(V >> (8 * I)));
}

void Encoder::rex(bool W, uint8_t RegField, uint8_t RmField) {
  uint8_t B = 0x40;
  if (W)
    B |= 0x08;
  if (RegField >= 8)
    B |= 0x04;
  if (RmField >= 8)
    B |= 0x01;
  byte(B);
}

void Encoder::modrmReg(uint8_t RegField, uint8_t Rm) {
  byte(static_cast<uint8_t>(0xC0 | ((RegField & 7) << 3) | (Rm & 7)));
}

void Encoder::modrmMem(uint8_t RegField, uint8_t Base, int32_t Disp) {
  // Always emit the disp32 form: mod=10. RSP/R12 bases need a SIB byte;
  // RBP/R13 are fine with mod=10.
  byte(static_cast<uint8_t>(0x80 | ((RegField & 7) << 3) | (Base & 7)));
  if ((Base & 7) == 4) // RSP/R12: SIB with no index
    byte(0x24);
  dword(static_cast<uint32_t>(Disp));
}

// ---- Labels ----

void Encoder::bind(Label &L) {
  assert(!L.Bound && "label bound twice");
  L.Bound = true;
  L.Off = Code.size();
  for (size_t FixupOff : L.Fixups) {
    int64_t Rel = static_cast<int64_t>(L.Off) -
                  (static_cast<int64_t>(FixupOff) + 4);
    patch32(FixupOff, static_cast<uint32_t>(static_cast<int32_t>(Rel)));
  }
  L.Fixups.clear();
}

void Encoder::emitRel32To(Label &L) {
  if (L.Bound) {
    int64_t Rel = static_cast<int64_t>(L.Off) -
                  (static_cast<int64_t>(Code.size()) + 4);
    dword(static_cast<uint32_t>(static_cast<int32_t>(Rel)));
  } else {
    L.Fixups.push_back(Code.size());
    dword(0);
  }
}

void Encoder::jmp(Label &L) {
  byte(0xE9);
  emitRel32To(L);
}

void Encoder::jcc(Cond C, Label &L) {
  byte(0x0F);
  byte(static_cast<uint8_t>(0x80 | C));
  emitRel32To(L);
}

void Encoder::call(Label &L) {
  byte(0xE8);
  emitRel32To(L);
}

void Encoder::jmpTo(size_t TargetOffset) {
  byte(0xE9);
  int64_t Rel = static_cast<int64_t>(TargetOffset) -
                (static_cast<int64_t>(Code.size()) + 4);
  dword(static_cast<uint32_t>(static_cast<int32_t>(Rel)));
}

void Encoder::repMovsb() {
  byte(0xF3);
  byte(0xA4);
}

void Encoder::patch32(size_t Offset, uint32_t Value) {
  assert(Offset + 4 <= Code.size());
  std::memcpy(Code.data() + Offset, &Value, 4);
}

// ---- Moves ----

void Encoder::movRegImm64(Reg Dst, uint64_t Imm) {
  rex(true, 0, Dst);
  byte(static_cast<uint8_t>(0xB8 | (Dst & 7)));
  qword(Imm);
}

void Encoder::movRegImm32(Reg Dst, uint32_t Imm) {
  if (Dst >= 8)
    byte(0x41);
  byte(static_cast<uint8_t>(0xB8 | (Dst & 7)));
  dword(Imm);
}

void Encoder::movRegReg(Reg Dst, Reg Src) {
  rex(true, Src, Dst);
  byte(0x89);
  modrmReg(Src, Dst);
}

void Encoder::movRegMem(Reg Dst, Reg Base, int32_t Disp) {
  rex(true, Dst, Base);
  byte(0x8B);
  modrmMem(Dst, Base, Disp);
}

void Encoder::movMemReg(Reg Base, int32_t Disp, Reg Src) {
  rex(true, Src, Base);
  byte(0x89);
  modrmMem(Src, Base, Disp);
}

void Encoder::movMemImm32(Reg Base, int32_t Disp, int32_t Imm) {
  rex(true, 0, Base);
  byte(0xC7);
  modrmMem(0, Base, Disp);
  dword(static_cast<uint32_t>(Imm));
}

void Encoder::movMemReg8(Reg Base, int32_t Disp, Reg Src) {
  // A REX prefix is always emitted so SPL/BPL/SIL/DIL encode correctly.
  rex(false, Src, Base);
  byte(0x88);
  modrmMem(Src, Base, Disp);
}

void Encoder::movMemReg16(Reg Base, int32_t Disp, Reg Src) {
  byte(0x66);
  rex(false, Src, Base);
  byte(0x89);
  modrmMem(Src, Base, Disp);
}

void Encoder::movMemReg32(Reg Base, int32_t Disp, Reg Src) {
  rex(false, Src, Base);
  byte(0x89);
  modrmMem(Src, Base, Disp);
}

void Encoder::movzxRegMem8(Reg Dst, Reg Base, int32_t Disp) {
  rex(true, Dst, Base);
  byte(0x0F);
  byte(0xB6);
  modrmMem(Dst, Base, Disp);
}

void Encoder::movzxRegMem16(Reg Dst, Reg Base, int32_t Disp) {
  rex(true, Dst, Base);
  byte(0x0F);
  byte(0xB7);
  modrmMem(Dst, Base, Disp);
}

void Encoder::movRegMem32(Reg Dst, Reg Base, int32_t Disp) {
  rex(false, Dst, Base);
  byte(0x8B);
  modrmMem(Dst, Base, Disp);
}

void Encoder::movsxRegMem8(Reg Dst, Reg Base, int32_t Disp) {
  rex(true, Dst, Base);
  byte(0x0F);
  byte(0xBE);
  modrmMem(Dst, Base, Disp);
}

void Encoder::movsxRegMem16(Reg Dst, Reg Base, int32_t Disp) {
  rex(true, Dst, Base);
  byte(0x0F);
  byte(0xBF);
  modrmMem(Dst, Base, Disp);
}

void Encoder::movsxRegMem32(Reg Dst, Reg Base, int32_t Disp) {
  rex(true, Dst, Base);
  byte(0x63);
  modrmMem(Dst, Base, Disp);
}

// ---- ALU ----

namespace {
// Helper opcode constants for the common op r64, r/m64 pattern.
} // namespace

void Encoder::addRegReg(Reg Dst, Reg Src) {
  rex(true, Src, Dst);
  byte(0x01);
  modrmReg(Src, Dst);
}

void Encoder::addRegImm32(Reg Dst, int32_t Imm) {
  rex(true, 0, Dst);
  byte(0x81);
  modrmReg(0, Dst);
  dword(static_cast<uint32_t>(Imm));
}

void Encoder::addRegMem(Reg Dst, Reg Base, int32_t Disp) {
  rex(true, Dst, Base);
  byte(0x03);
  modrmMem(Dst, Base, Disp);
}

void Encoder::subRegReg(Reg Dst, Reg Src) {
  rex(true, Src, Dst);
  byte(0x29);
  modrmReg(Src, Dst);
}

void Encoder::subRegImm32(Reg Dst, int32_t Imm) {
  rex(true, 0, Dst);
  byte(0x81);
  modrmReg(5, Dst);
  dword(static_cast<uint32_t>(Imm));
}

void Encoder::subRegMem(Reg Dst, Reg Base, int32_t Disp) {
  rex(true, Dst, Base);
  byte(0x2B);
  modrmMem(Dst, Base, Disp);
}

void Encoder::andRegReg(Reg Dst, Reg Src) {
  rex(true, Src, Dst);
  byte(0x21);
  modrmReg(Src, Dst);
}

void Encoder::andRegImm32(Reg Dst, int32_t Imm) {
  rex(true, 0, Dst);
  byte(0x81);
  modrmReg(4, Dst);
  dword(static_cast<uint32_t>(Imm));
}

void Encoder::andRegMem(Reg Dst, Reg Base, int32_t Disp) {
  rex(true, Dst, Base);
  byte(0x23);
  modrmMem(Dst, Base, Disp);
}

void Encoder::orRegReg(Reg Dst, Reg Src) {
  rex(true, Src, Dst);
  byte(0x09);
  modrmReg(Src, Dst);
}

void Encoder::orRegMem(Reg Dst, Reg Base, int32_t Disp) {
  rex(true, Dst, Base);
  byte(0x0B);
  modrmMem(Dst, Base, Disp);
}

void Encoder::xorRegReg(Reg Dst, Reg Src) {
  rex(true, Src, Dst);
  byte(0x31);
  modrmReg(Src, Dst);
}

void Encoder::xorRegMem(Reg Dst, Reg Base, int32_t Disp) {
  rex(true, Dst, Base);
  byte(0x33);
  modrmMem(Dst, Base, Disp);
}

void Encoder::imulRegReg(Reg Dst, Reg Src) {
  rex(true, Dst, Src);
  byte(0x0F);
  byte(0xAF);
  modrmReg(Dst, Src);
}

void Encoder::imulRegMem(Reg Dst, Reg Base, int32_t Disp) {
  rex(true, Dst, Base);
  byte(0x0F);
  byte(0xAF);
  modrmMem(Dst, Base, Disp);
}

void Encoder::imulMem(Reg Base, int32_t Disp) {
  rex(true, 0, Base);
  byte(0xF7);
  modrmMem(5, Base, Disp);
}

void Encoder::idivReg(Reg Divisor) {
  rex(true, 0, Divisor);
  byte(0xF7);
  modrmReg(7, Divisor);
}

void Encoder::divReg(Reg Divisor) {
  rex(true, 0, Divisor);
  byte(0xF7);
  modrmReg(6, Divisor);
}

void Encoder::cqo() {
  byte(0x48);
  byte(0x99);
}

void Encoder::negReg(Reg R) {
  rex(true, 0, R);
  byte(0xF7);
  modrmReg(3, R);
}

void Encoder::notReg(Reg R) {
  rex(true, 0, R);
  byte(0xF7);
  modrmReg(2, R);
}

void Encoder::shlRegCl(Reg R) {
  rex(true, 0, R);
  byte(0xD3);
  modrmReg(4, R);
}

void Encoder::shrRegCl(Reg R) {
  rex(true, 0, R);
  byte(0xD3);
  modrmReg(5, R);
}

void Encoder::sarRegCl(Reg R) {
  rex(true, 0, R);
  byte(0xD3);
  modrmReg(7, R);
}

void Encoder::shlRegImm(Reg R, uint8_t Imm) {
  rex(true, 0, R);
  byte(0xC1);
  modrmReg(4, R);
  byte(Imm);
}

void Encoder::shrRegImm(Reg R, uint8_t Imm) {
  rex(true, 0, R);
  byte(0xC1);
  modrmReg(5, R);
  byte(Imm);
}

void Encoder::sarRegImm(Reg R, uint8_t Imm) {
  rex(true, 0, R);
  byte(0xC1);
  modrmReg(7, R);
  byte(Imm);
}

void Encoder::cmpRegReg(Reg A, Reg B) {
  rex(true, B, A);
  byte(0x39);
  modrmReg(B, A);
}

void Encoder::cmpRegImm32(Reg A, int32_t Imm) {
  rex(true, 0, A);
  byte(0x81);
  modrmReg(7, A);
  dword(static_cast<uint32_t>(Imm));
}

void Encoder::cmpRegMem(Reg A, Reg Base, int32_t Disp) {
  rex(true, A, Base);
  byte(0x3B);
  modrmMem(A, Base, Disp);
}

void Encoder::cmpMemImm32(Reg Base, int32_t Disp, int32_t Imm) {
  rex(true, 0, Base);
  byte(0x81);
  modrmMem(7, Base, Disp);
  dword(static_cast<uint32_t>(Imm));
}
void Encoder::addMemImm32(Reg Base, int32_t Disp, int32_t Imm) {
  rex(true, 0, Base);
  byte(0x81);
  modrmMem(0, Base, Disp);
  dword(static_cast<uint32_t>(Imm));
}

void Encoder::testRegReg(Reg A, Reg B) {
  rex(true, B, A);
  byte(0x85);
  modrmReg(B, A);
}

void Encoder::testRegImm32(Reg A, int32_t Imm) {
  rex(true, 0, A);
  byte(0xF7);
  modrmReg(0, A);
  dword(static_cast<uint32_t>(Imm));
}

void Encoder::setcc(Cond C, Reg Dst) {
  // setcc dl ; movzx rdx, dl
  rex(false, 0, Dst);
  byte(0x0F);
  byte(static_cast<uint8_t>(0x90 | C));
  modrmReg(0, Dst);
  rex(true, Dst, Dst);
  byte(0x0F);
  byte(0xB6);
  modrmReg(Dst, Dst);
}

void Encoder::leaRegMem(Reg Dst, Reg Base, int32_t Disp) {
  rex(true, Dst, Base);
  byte(0x8D);
  modrmMem(Dst, Base, Disp);
}

void Encoder::decMem(Reg Base, int32_t Disp) {
  rex(true, 0, Base);
  byte(0xFF);
  modrmMem(1, Base, Disp);
}

void Encoder::incMem(Reg Base, int32_t Disp) {
  rex(true, 0, Base);
  byte(0xFF);
  modrmMem(0, Base, Disp);
}

// ---- Control ----

void Encoder::jmpReg(Reg R) {
  if (R >= 8)
    byte(0x41);
  byte(0xFF);
  modrmReg(4, R);
}

void Encoder::callReg(Reg R) {
  if (R >= 8)
    byte(0x41);
  byte(0xFF);
  modrmReg(2, R);
}

void Encoder::ret() { byte(0xC3); }

void Encoder::pushReg(Reg R) {
  if (R >= 8)
    byte(0x41);
  byte(static_cast<uint8_t>(0x50 | (R & 7)));
}

void Encoder::popReg(Reg R) {
  if (R >= 8)
    byte(0x41);
  byte(static_cast<uint8_t>(0x58 | (R & 7)));
}

// ---- Atomics ----

void Encoder::lockXaddMemReg(Reg Base, int32_t Disp, Reg Src) {
  byte(0xF0);
  rex(true, Src, Base);
  byte(0x0F);
  byte(0xC1);
  modrmMem(Src, Base, Disp);
}

void Encoder::xchgMemReg(Reg Base, int32_t Disp, Reg Src) {
  rex(true, Src, Base);
  byte(0x87);
  modrmMem(Src, Base, Disp);
}

void Encoder::lockCmpxchgMemReg(Reg Base, int32_t Disp, Reg Src) {
  byte(0xF0);
  rex(true, Src, Base);
  byte(0x0F);
  byte(0xB1);
  modrmMem(Src, Base, Disp);
}

void Encoder::mfence() {
  byte(0x0F);
  byte(0xAE);
  byte(0xF0);
}

void Encoder::pause() {
  byte(0xF3);
  byte(0x90);
}

// ---- SSE2 ----

void Encoder::movsdXmmMem(XmmReg Dst, Reg Base, int32_t Disp) {
  byte(0xF2);
  if (Base >= 8)
    byte(0x41);
  byte(0x0F);
  byte(0x10);
  modrmMem(Dst, Base, Disp);
}

void Encoder::movsdMemXmm(Reg Base, int32_t Disp, XmmReg Src) {
  byte(0xF2);
  if (Base >= 8)
    byte(0x41);
  byte(0x0F);
  byte(0x11);
  modrmMem(Src, Base, Disp);
}

static void sseOp(Encoder &E, uint8_t Prefix, uint8_t Op, XmmReg Dst,
                  XmmReg Src) {
  // Both operands are XMM0..3, so no REX needed.
  E.emitBytes({Prefix, 0x0F, Op,
               static_cast<uint8_t>(0xC0 | ((Dst & 7) << 3) | (Src & 7))});
}

void Encoder::addsd(XmmReg Dst, XmmReg Src) { sseOp(*this, 0xF2, 0x58, Dst, Src); }
void Encoder::subsd(XmmReg Dst, XmmReg Src) { sseOp(*this, 0xF2, 0x5C, Dst, Src); }
void Encoder::mulsd(XmmReg Dst, XmmReg Src) { sseOp(*this, 0xF2, 0x59, Dst, Src); }
void Encoder::divsd(XmmReg Dst, XmmReg Src) { sseOp(*this, 0xF2, 0x5E, Dst, Src); }
void Encoder::minsd(XmmReg Dst, XmmReg Src) { sseOp(*this, 0xF2, 0x5D, Dst, Src); }
void Encoder::maxsd(XmmReg Dst, XmmReg Src) { sseOp(*this, 0xF2, 0x5F, Dst, Src); }
void Encoder::sqrtsd(XmmReg Dst, XmmReg Src) { sseOp(*this, 0xF2, 0x51, Dst, Src); }
void Encoder::ucomisd(XmmReg A, XmmReg B) { sseOp(*this, 0x66, 0x2E, A, B); }

void Encoder::cvtsi2sd(XmmReg Dst, Reg Src) {
  byte(0xF2);
  rex(true, Dst, Src);
  byte(0x0F);
  byte(0x2A);
  modrmReg(Dst, Src);
}

void Encoder::cvttsd2si(Reg Dst, XmmReg Src) {
  byte(0xF2);
  rex(true, Dst, Src);
  byte(0x0F);
  byte(0x2C);
  modrmReg(Dst, Src);
}

void Encoder::movqXmmReg(XmmReg Dst, Reg Src) {
  byte(0x66);
  rex(true, Dst, Src);
  byte(0x0F);
  byte(0x6E);
  modrmReg(Dst, Src);
}

void Encoder::movqRegXmm(Reg Dst, XmmReg Src) {
  byte(0x66);
  rex(true, Src, Dst);
  byte(0x0F);
  byte(0x7E);
  modrmReg(Src, Dst);
}

// ---- System ----

void Encoder::syscall() {
  byte(0x0F);
  byte(0x05);
}

void Encoder::rdtsc() {
  byte(0x0F);
  byte(0x31);
}

void Encoder::nop() { byte(0x90); }

void Encoder::ud2() {
  byte(0x0F);
  byte(0x0B);
}

void Encoder::int3() { byte(0xCC); }
