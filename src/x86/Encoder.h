//===- x86/Encoder.h - x86-64 machine code emission -------------*- C++ -*-===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A hand-rolled x86-64 encoder covering exactly the instruction subset the
/// ELFie translator and runtime need. pinball2elf uses it to generate the
/// startup code, the per-thread bootstrap, the syscall stubs, and the
/// translated application code of native ELFies (paper §II-B).
///
/// Register naming follows the hardware: RAX..R15. Emission is positional;
/// forward references go through Label (rel32 fixups patched on bind).
///
//===----------------------------------------------------------------------===//

#ifndef ELFIE_X86_ENCODER_H
#define ELFIE_X86_ENCODER_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace elfie {
namespace x86 {

/// x86-64 general-purpose registers (hardware encoding order).
enum Reg : uint8_t {
  RAX = 0,
  RCX = 1,
  RDX = 2,
  RBX = 3,
  RSP = 4,
  RBP = 5,
  RSI = 6,
  RDI = 7,
  R8 = 8,
  R9 = 9,
  R10 = 10,
  R11 = 11,
  R12 = 12,
  R13 = 13,
  R14 = 14,
  R15 = 15,
};

/// SSE registers.
enum XmmReg : uint8_t { XMM0 = 0, XMM1 = 1, XMM2 = 2, XMM3 = 3 };

/// Condition codes (the low nibble of the 0F 8x / 0F 9x opcodes).
enum Cond : uint8_t {
  CondO = 0x0,
  CondNO = 0x1,
  CondB = 0x2,  ///< below (unsigned <)
  CondAE = 0x3, ///< above-or-equal (unsigned >=)
  CondE = 0x4,  ///< equal
  CondNE = 0x5,
  CondBE = 0x6, ///< below-or-equal (unsigned <=)
  CondA = 0x7,  ///< above (unsigned >)
  CondS = 0x8,  ///< sign
  CondNS = 0x9,
  CondP = 0xa,  ///< parity
  CondNP = 0xb,
  CondL = 0xc,  ///< less (signed <)
  CondGE = 0xd,
  CondLE = 0xe,
  CondG = 0xf,
};

/// A branch target that may be bound after uses are emitted.
class Label {
public:
  bool isBound() const { return Bound; }
  size_t offset() const {
    assert(Bound && "label not bound");
    return Off;
  }

private:
  friend class Encoder;
  bool Bound = false;
  size_t Off = 0;
  std::vector<size_t> Fixups; // offsets of rel32 fields awaiting the bind
};

/// The encoder. All memory forms are [base + disp32] (the translator keeps
/// guest state at fixed offsets off a base register, so that is all we
/// need); loads/stores of guest memory use [reg] with disp.
class Encoder {
public:
  const std::vector<uint8_t> &code() const { return Code; }
  size_t size() const { return Code.size(); }

  /// Current offset (for building address tables).
  size_t here() const { return Code.size(); }

  // ---- Labels ----
  void bind(Label &L);
  void jmp(Label &L);
  void jcc(Cond C, Label &L);
  void call(Label &L);
  /// jmp rel32 to an already-emitted encoder offset.
  void jmpTo(size_t TargetOffset);

  // ---- Moves ----
  void movRegImm64(Reg Dst, uint64_t Imm); ///< movabs
  void movRegImm32(Reg Dst, uint32_t Imm); ///< 32-bit move (zero-extends)
  void movRegReg(Reg Dst, Reg Src);        ///< 64-bit
  /// mov Dst, [Base + Disp] (64-bit)
  void movRegMem(Reg Dst, Reg Base, int32_t Disp);
  /// mov [Base + Disp], Src (64-bit)
  void movMemReg(Reg Base, int32_t Disp, Reg Src);
  /// mov qword [Base + Disp], imm32 (sign-extended)
  void movMemImm32(Reg Base, int32_t Disp, int32_t Imm);
  /// Narrow stores: mov [Base+Disp], Src (8/16/32 bits of Src)
  void movMemReg8(Reg Base, int32_t Disp, Reg Src);
  void movMemReg16(Reg Base, int32_t Disp, Reg Src);
  void movMemReg32(Reg Base, int32_t Disp, Reg Src);
  /// Narrow zero-extending loads into a 64-bit register.
  void movzxRegMem8(Reg Dst, Reg Base, int32_t Disp);
  void movzxRegMem16(Reg Dst, Reg Base, int32_t Disp);
  void movRegMem32(Reg Dst, Reg Base, int32_t Disp); ///< 32-bit (zero-ext)
  /// Narrow sign-extending loads.
  void movsxRegMem8(Reg Dst, Reg Base, int32_t Disp);
  void movsxRegMem16(Reg Dst, Reg Base, int32_t Disp);
  void movsxRegMem32(Reg Dst, Reg Base, int32_t Disp);

  // ---- ALU (64-bit unless noted) ----
  void addRegReg(Reg Dst, Reg Src);
  void addRegImm32(Reg Dst, int32_t Imm);
  void addRegMem(Reg Dst, Reg Base, int32_t Disp);
  void subRegReg(Reg Dst, Reg Src);
  void subRegImm32(Reg Dst, int32_t Imm);
  void subRegMem(Reg Dst, Reg Base, int32_t Disp);
  void andRegReg(Reg Dst, Reg Src);
  void andRegImm32(Reg Dst, int32_t Imm);
  void andRegMem(Reg Dst, Reg Base, int32_t Disp);
  void orRegReg(Reg Dst, Reg Src);
  void orRegMem(Reg Dst, Reg Base, int32_t Disp);
  void xorRegReg(Reg Dst, Reg Src);
  void xorRegMem(Reg Dst, Reg Base, int32_t Disp);
  void imulRegReg(Reg Dst, Reg Src); ///< two-operand imul
  void imulRegMem(Reg Dst, Reg Base, int32_t Disp);
  void imulMem(Reg Base, int32_t Disp);  ///< one-operand: rdx:rax = rax * m64
  void idivReg(Reg Divisor); ///< rax = rdx:rax / r; rdx = rem (signed)
  void divReg(Reg Divisor);  ///< unsigned
  void cqo();                ///< sign-extend rax into rdx
  void negReg(Reg R);
  void notReg(Reg R);
  void shlRegCl(Reg R);
  void shrRegCl(Reg R);
  void sarRegCl(Reg R);
  void shlRegImm(Reg R, uint8_t Imm);
  void shrRegImm(Reg R, uint8_t Imm);
  void sarRegImm(Reg R, uint8_t Imm);
  void cmpRegReg(Reg A, Reg B);
  void cmpRegImm32(Reg A, int32_t Imm);
  void cmpRegMem(Reg A, Reg Base, int32_t Disp);
  void cmpMemImm32(Reg Base, int32_t Disp, int32_t Imm); ///< cmp qword
  void addMemImm32(Reg Base, int32_t Disp, int32_t Imm); ///< add qword
  void testRegReg(Reg A, Reg B);
  void testRegImm32(Reg A, int32_t Imm);
  void setcc(Cond C, Reg Dst); ///< set byte + movzx to 64-bit
  void leaRegMem(Reg Dst, Reg Base, int32_t Disp);
  /// dec qword [Base+Disp] (the graceful-exit countdown).
  void decMem(Reg Base, int32_t Disp);
  void incMem(Reg Base, int32_t Disp);

  // ---- Control ----
  void jmpReg(Reg R);
  void callReg(Reg R);
  void ret();
  void pushReg(Reg R);
  void popReg(Reg R);

  // ---- Atomics ----
  void lockXaddMemReg(Reg Base, int32_t Disp, Reg Src); ///< lock xadd [m],r
  void xchgMemReg(Reg Base, int32_t Disp, Reg Src);     ///< implicit lock
  void lockCmpxchgMemReg(Reg Base, int32_t Disp, Reg Src); ///< uses rax
  void mfence();
  void pause();
  /// rep movsb: copies rcx bytes from [rsi] to [rdi].
  void repMovsb();

  // ---- SSE2 scalar double ----
  void movsdXmmMem(XmmReg Dst, Reg Base, int32_t Disp);
  void movsdMemXmm(Reg Base, int32_t Disp, XmmReg Src);
  void addsd(XmmReg Dst, XmmReg Src);
  void subsd(XmmReg Dst, XmmReg Src);
  void mulsd(XmmReg Dst, XmmReg Src);
  void divsd(XmmReg Dst, XmmReg Src);
  void minsd(XmmReg Dst, XmmReg Src);
  void maxsd(XmmReg Dst, XmmReg Src);
  void sqrtsd(XmmReg Dst, XmmReg Src);
  void ucomisd(XmmReg A, XmmReg B);
  void cvtsi2sd(XmmReg Dst, Reg Src);  ///< int64 -> double
  void cvttsd2si(Reg Dst, XmmReg Src); ///< double -> int64 (truncating)
  void movqXmmReg(XmmReg Dst, Reg Src);
  void movqRegXmm(Reg Dst, XmmReg Src);

  // ---- System ----
  void syscall();
  void rdtsc(); ///< edx:eax = tsc
  void nop();
  void ud2();   ///< abort: guaranteed SIGILL
  void int3();

  /// Emits raw bytes (escape hatch for tests).
  void emitBytes(std::initializer_list<uint8_t> Bytes) {
    Code.insert(Code.end(), Bytes);
  }

  /// Patches a 32-bit little-endian value at \p Offset.
  void patch32(size_t Offset, uint32_t Value);

private:
  void byte(uint8_t B) { Code.push_back(B); }
  void dword(uint32_t V);
  void qword(uint64_t V);
  /// REX prefix for a reg-reg or reg-mem form. W=1 always unless stated.
  void rex(bool W, uint8_t RegField, uint8_t RmField);
  /// ModRM for register-direct.
  void modrmReg(uint8_t RegField, uint8_t Rm);
  /// ModRM + disp for [base + disp32] (always uses disp32 form except RSP
  /// base which needs a SIB byte).
  void modrmMem(uint8_t RegField, uint8_t Base, int32_t Disp);
  void emitRel32To(Label &L);

  std::vector<uint8_t> Code;
};

} // namespace x86
} // namespace elfie

#endif // ELFIE_X86_ENCODER_H
