//===- x86/JITEmitter.h - template JIT for hot EG64 blocks ------*- C++ -*-===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles hot EG64 basic blocks into host x86-64 code for the EVM's
/// in-process JIT (`ereplay -jit` / `esim -jit`, DESIGN.md §12). Unlike the
/// AOT Translator (which emits a whole ELFie with its own runtime), the JIT
/// executes *inside* the EVM and must preserve its observable semantics
/// exactly:
///
///  * Guest registers live directly in the VM's ThreadState (no copy in or
///    out). %r14 holds the ThreadState base, %r15 the JitExecContext base;
///    both are callee-saved so helper calls preserve them. GPR slot 0 is
///    never written (r0 stays zero).
///  * Instead of the Translator's per-instruction countdown, each block
///    entry performs one check: `cmp qword [ctx+Countdown], NumInsts; jl
///    out`. Every exit path subtracts exactly the instructions retired on
///    that path, so the dispatcher always knows the precise retired count
///    and can stop the machine at *any* instruction boundary (the property
///    the lockstep differential test leans on). A short-countdown exit
///    retires nothing; the dispatcher interprets the tail of the quantum.
///  * Guest loads/stores call back into the VM through function pointers in
///    the context (the VM keeps a software TLB on that path). A helper
///    reports a fault by clearing ctx.MemOk; the emitted check exits with
///    the faulting instruction *not* retired so the interpreter can re-run
///    it and produce the canonical fault.
///  * Stores additionally test ctx.Pending, which the VM sets when a store
///    invalidated compiled code, so no stale block runs past that point.
///  * Syscalls, markers, halt, pause, and atomics are not translated: the
///    block's compilable prefix ends there and the bail exit hands the
///    instruction to the interpreter (bailout taxonomy in DESIGN.md §12).
///  * Each chain exit ends in a patchable `jmp rel32` (initially rel32=0,
///    falling through to a return stub). The block cache patches it to the
///    target's entry once that target is compiled — direct-threaded
///    superblock chaining without re-entering the dispatcher.
///
//===----------------------------------------------------------------------===//

#ifndef ELFIE_X86_JITEMITTER_H
#define ELFIE_X86_JITEMITTER_H

#include "isa/ISA.h"
#include "x86/Encoder.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace elfie {
namespace x86 {

/// Why a compiled block returned to the dispatcher (%rax at exit).
enum JitExitKind : uint32_t {
  JitExitCountdown = 0, ///< entry check failed; nothing retired
  JitExitChain = 1,     ///< ran to the end; chain target not compiled (yet)
  JitExitIndirect = 2,  ///< jalr taken; ctx.NextPC holds the runtime target
  JitExitBail = 3,      ///< next instruction needs the interpreter
  JitExitMemRetry = 4,  ///< load/store faulted; instruction NOT retired
  JitExitInvalidate = 5 ///< a store invalidated compiled code; stop here
};

/// True when the JIT hands \p Op back to the interpreter instead of
/// translating it (the bailout set: syscalls, markers, halt, pause, and
/// atomics — DESIGN.md §12). Exported so the static JIT-translatability
/// analysis (src/analyze/cfg) classifies instructions with the exact
/// predicate the emitter compiles with; the two cannot drift.
bool jitNeedsInterpreter(isa::Opcode Op);

/// Kind selector passed to the load helper (sign/zero extension + width).
enum JitLoadKind : uint32_t {
  JitLoadU8 = 0,
  JitLoadU16 = 1,
  JitLoadU32 = 2,
  JitLoadU64 = 3,
  JitLoadS8 = 4,
  JitLoadS16 = 5,
  JitLoadS32 = 6,
};

/// Guest memory helpers the emitted code calls through the context. The
/// cookie is the VM. On fault the helper clears ctx.MemOk and the load
/// helper's result is ignored. The store helper receives the width in
/// bytes.
using JitLoadFn = uint64_t (*)(void *Cookie, uint64_t Addr, uint64_t Kind);
using JitStoreFn = void (*)(void *Cookie, uint64_t Addr, uint64_t Value,
                            uint64_t Size);

/// Runtime offsets the emitter addresses state through. Unlike the AOT
/// CtxLayout these are not fixed constants: the thread-state offsets come
/// from offsetof() on the VM's real ThreadState, the context offsets from
/// offsetof() on JitExecContext (both owned by src/vm, which fills this in
/// — src/x86 stays independent of the VM headers).
struct JitLayout {
  // Offsets into the execution context (%r15 base).
  int32_t CountdownOff = 0; ///< i64 instructions this dispatch may retire
  int32_t NextPCOff = 0;    ///< u64 guest PC to resume at after the exit
  int32_t MemOkOff = 0;     ///< u64, cleared by a faulting memory helper
  int32_t PendingOff = 0;   ///< u64, set when compiled code was invalidated
  int32_t CookieOff = 0;    ///< void* helper cookie (the VM)
  int32_t LoadFnOff = 0;    ///< JitLoadFn
  int32_t StoreFnOff = 0;   ///< JitStoreFn
  int32_t ThreadOff = 0;    ///< ThreadState* of the dispatched thread
  // Offsets into the thread state (%r14 base).
  int32_t GprOff = 0; ///< 16 x u64
  int32_t FprOff = 0; ///< 16 x f64

  int32_t gpr(unsigned R) const { return GprOff + 8 * static_cast<int>(R); }
  int32_t fpr(unsigned R) const { return FprOff + 8 * static_cast<int>(R); }
};

/// A patchable chain exit: `JmpOff` is the offset (within the block's code)
/// of an `E9 rel32` whose rel32 is 0 (fall through to the return stub). The
/// block cache patches it once code for TargetPC exists.
struct JitChainExit {
  size_t JmpOff;
  uint64_t TargetPC;
};

/// One compiled block: position-independent except for the chain exits.
struct JitBlockCode {
  std::vector<uint8_t> Code;
  std::vector<JitChainExit> Exits;
  /// Instructions in the compiled prefix — the entry check constant and the
  /// maximum any path through the block retires.
  uint32_t NumInsts = 0;
};

/// Compiles the longest translatable prefix of the decoded block starting
/// at \p StartPC. Returns false (and leaves \p Out empty) when the first
/// instruction already needs the interpreter.
bool emitJitBlock(uint64_t StartPC, const isa::Inst *Insts, size_t N,
                  const JitLayout &L, JitBlockCode &Out);

/// Emits the dispatch trampoline `uint64_t(void *Ctx, const void *Entry)`:
/// saves callee-saved registers, loads %r15/%r14, calls the block, and
/// returns its exit kind. Emit once at the start of the executable buffer.
void emitJitTrampoline(Encoder &E, const JitLayout &L);

/// A W^X mmap'd code buffer. Writable only inside beginWrite()/endWrite()
/// windows; executable otherwise.
class ExecBuffer {
public:
  ExecBuffer() = default;
  ~ExecBuffer();
  ExecBuffer(const ExecBuffer &) = delete;
  ExecBuffer &operator=(const ExecBuffer &) = delete;

  /// Maps \p Bytes of RW memory. Returns false when mmap fails.
  bool init(size_t Bytes);
  bool ready() const { return Base != nullptr; }

  /// Flips the whole buffer writable / executable-only.
  void beginWrite();
  void endWrite();

  /// Appends \p N bytes (16-byte aligned start) inside a write window.
  /// Returns the offset, or SIZE_MAX when the buffer is full.
  size_t append(const uint8_t *Bytes, size_t N);

  /// Drops everything appended after offset \p Mark (full flush support).
  void resetTo(size_t Mark) { Used = Mark; }

  /// Patches the rel32 of the `E9` jmp at \p JmpOff to land on \p Target
  /// (both buffer offsets). Must be inside a write window.
  void patchJmp(size_t JmpOff, size_t Target);

  const uint8_t *data() const { return Base; }
  size_t used() const { return Used; }
  size_t capacity() const { return Cap; }

private:
  uint8_t *Base = nullptr;
  size_t Cap = 0;
  size_t Used = 0;
  bool Writable = false;
};

} // namespace x86
} // namespace elfie

#endif // ELFIE_X86_JITEMITTER_H
