//===- tests/x86/TranslatorTest.cpp - differential translator tests -------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// Property-based differential testing of the EG64 -> x86-64 translator:
/// randomly generated guest programs run (a) interpreted in the EVM and
/// (b) AOT-translated inside a native ELFie; both dump their final
/// register file to stdout, which must match bit-for-bit. This covers the
/// translator's instruction semantics — including the division edge
/// cases, shift masking, sign/zero extension, NaN-safe FP compares, and
/// the ldi/ldih immediate composition — against the interpreter as the
/// reference model.
///
//===----------------------------------------------------------------------===//

#include "x86/Translator.h"

#include "../common/Subprocess.h"
#include "../common/TestHelpers.h"
#include "core/Pinball2Elf.h"
#include "support/Format.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace elfie;

namespace {

/// Generates a random straight-line compute program (no control flow other
/// than the generated loops' absence — pure dataflow), ending with a dump
/// of all 16 GPRs and 16 FPR bit patterns to stdout.
std::string randomProgram(uint64_t Seed, unsigned NumOps) {
  RNG R(Seed);
  std::string S = "_start:\n";
  // Seed registers r1..r13 with random values, f0..f15 from ints.
  for (unsigned I = 1; I <= 13; ++I)
    S += formatString("  li r%u, %lld\n", I,
                      static_cast<long long>(R.next() >> 1));
  for (unsigned I = 0; I < 16; ++I)
    S += formatString("  fcvtid f%u, r%u\n", I, 1 + I % 13);

  static const char *IntOps3[] = {"add", "sub", "mul",  "mulh", "div",
                                  "divu", "rem", "remu", "and",  "or",
                                  "xor", "shl", "shr",  "sar",  "slt",
                                  "sltu", "seq"};
  static const char *IntOpsImm[] = {"addi", "muli", "andi", "ori", "xori",
                                    "slti", "sltui"};
  static const char *ShiftImm[] = {"shli", "shri", "sari"};
  static const char *FpOps3[] = {"fadd", "fsub", "fmul", "fdiv", "fmin",
                                 "fmax"};
  static const char *FpOps2[] = {"fneg", "fabs", "fmov", "fsqrt"};
  static const char *FpCmp[] = {"feq", "flt", "fle"};

  auto Gpr = [&](bool Dst) {
    // Destinations avoid r0 (hardwired zero) and r14/r15 (lr/sp used by
    // the dump epilogue); sources may include r0.
    return Dst ? 1 + R.nextBelow(13) : R.nextBelow(14);
  };
  auto Fpr = [&] { return R.nextBelow(16); };

  for (unsigned I = 0; I < NumOps; ++I) {
    switch (R.nextBelow(8)) {
    case 0:
    case 1:
    case 2:
      S += formatString("  %s r%llu, r%llu, r%llu\n",
                        IntOps3[R.nextBelow(std::size(IntOps3))],
                        (unsigned long long)Gpr(true),
                        (unsigned long long)Gpr(false),
                        (unsigned long long)Gpr(false));
      break;
    case 3:
      S += formatString("  %s r%llu, r%llu, %lld\n",
                        IntOpsImm[R.nextBelow(std::size(IntOpsImm))],
                        (unsigned long long)Gpr(true),
                        (unsigned long long)Gpr(false),
                        static_cast<long long>(R.nextInRange(-100000,
                                                             100000)));
      break;
    case 4:
      S += formatString("  %s r%llu, r%llu, %llu\n",
                        ShiftImm[R.nextBelow(std::size(ShiftImm))],
                        (unsigned long long)Gpr(true),
                        (unsigned long long)Gpr(false),
                        (unsigned long long)R.nextBelow(64));
      break;
    case 5:
      S += formatString("  %s f%llu, f%llu, f%llu\n",
                        FpOps3[R.nextBelow(std::size(FpOps3))],
                        (unsigned long long)Fpr(), (unsigned long long)Fpr(),
                        (unsigned long long)Fpr());
      break;
    case 6:
      S += formatString("  %s f%llu, f%llu\n",
                        FpOps2[R.nextBelow(std::size(FpOps2))],
                        (unsigned long long)Fpr(),
                        (unsigned long long)Fpr());
      break;
    case 7:
      if (R.nextBelow(2))
        S += formatString("  %s r%llu, f%llu, f%llu\n",
                          FpCmp[R.nextBelow(std::size(FpCmp))],
                          (unsigned long long)Gpr(true),
                          (unsigned long long)Fpr(),
                          (unsigned long long)Fpr());
      else
        S += formatString("  fcvtdi r%llu, f%llu\n",
                          (unsigned long long)Gpr(true),
                          (unsigned long long)Fpr());
      break;
    }
  }

  // Dump: store r1..r13 and all FPR bit patterns into a buffer, write it.
  S += "  la r14, dump\n";
  for (unsigned I = 1; I <= 13; ++I)
    S += formatString("  st8 r%u, %u(r14)\n", I, 8 * (I - 1));
  for (unsigned I = 0; I < 16; ++I) {
    S += formatString("  fmvtoi r1, f%u\n  st8 r1, %u(r14)\n", I,
                      104 + 8 * I);
  }
  S += R"(
  ldi r7, 2
  ldi r1, 1
  la  r2, dump
  ldi r3, 232
  syscall
  ldi r7, 1
  ldi r1, 0
  syscall
  .data
  .align 8
dump: .space 232
)";
  return S;
}

/// Runs a program's whole execution as a native ELFie and returns stdout.
bool runNativeWhole(const std::string &Dir, const std::string &Src,
                    std::string &Out, std::string &Err) {
  pinball::CaptureRequest Req;
  Req.ProgramPath = Dir + "/prog.elf";
  Error E = easm::assembleToFile(Src, "prog.s", Req.ProgramPath);
  EXPECT_FALSE(E.isError()) << E.message();
  Req.RegionStart = 0;
  Req.RegionLength = UINT64_MAX / 2;
  Req.Opts = pinball::LoggerOptions::fat();
  auto PB = pinball::captureRegion(Req);
  EXPECT_TRUE(PB.hasValue()) << PB.message();
  if (!PB)
    return false;
  std::string Exe = Dir + "/prog.elfie";
  E = core::pinballToElfFile(*PB, core::Pinball2ElfOptions(), Exe);
  EXPECT_FALSE(E.isError()) << E.message();
  auto R = test::runProcess(Exe);
  EXPECT_TRUE(R.Exited) << "signal " << R.TermSignal << " " << R.Stderr;
  Err = R.Stderr;
  Out = R.Stdout;
  return R.Exited && R.ExitCode == 0;
}

class TranslatorDifferential : public testing::TestWithParam<uint64_t> {};

TEST_P(TranslatorDifferential, RandomProgramsMatchInterpreter) {
  std::string Dir =
      testing::TempDir() + "/elfie_xlate_" + std::to_string(GetParam());
  removeTree(Dir);
  createDirectories(Dir);

  for (unsigned Round = 0; Round < 4; ++Round) {
    std::string Src = randomProgram(GetParam() * 97 + Round, 120);

    // Reference: EVM interpretation.
    auto Captured = std::make_shared<std::string>();
    auto M = test::makeVM(Src, Captured);
    ASSERT_NE(M, nullptr);
    auto VR = M->run(10000000);
    ASSERT_EQ(VR.Reason, vm::StopReason::AllExited)
        << (VR.Reason == vm::StopReason::Faulted ? VR.FaultInfo.Message
                                                 : "no exit");
    ASSERT_EQ(Captured->size(), 232u);

    // Native translation.
    std::string NativeOut, NativeErr;
    ASSERT_TRUE(runNativeWhole(Dir, Src, NativeOut, NativeErr))
        << NativeErr;
    ASSERT_EQ(NativeOut.size(), 232u);

    // Bit-exact register-file equality.
    for (size_t I = 0; I < 232; I += 8) {
      uint64_t A, B;
      memcpy(&A, Captured->data() + I, 8);
      memcpy(&B, NativeOut.data() + I, 8);
      EXPECT_EQ(A, B) << "round " << Round << ", dump word " << I / 8
                      << (I < 104 ? " (GPR)" : " (FPR bits)");
    }
  }
  removeTree(Dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TranslatorDifferential,
                         testing::Values(1ull, 2ull, 3ull, 4ull, 5ull,
                                         6ull));

TEST(TranslatorUnit, AddressTableCoversAllInstructions) {
  x86::Encoder E;
  x86::TranslatorConfig TC;
  TC.HostCodeBase = 0x1000;
  TC.TableBase = 0x2000;
  x86::Translator T(E, TC);
  // Two pages with a gap.
  std::vector<uint8_t> Page(4096, 0);
  for (size_t Off = 0; Off + 8 <= Page.size(); Off += 8) {
    isa::Inst I;
    I.Op = isa::Opcode::Nop;
    uint64_t W = isa::encode(I);
    memcpy(Page.data() + Off, &W, 8);
  }
  T.addCodePage(0x10000, Page.data(), Page.size());
  T.addCodePage(0x12000, Page.data(), Page.size());
  x86::Label Sys, Cd, Hl, Ab;
  x86::Translator::RuntimeLabels RT{&Sys, &Cd, &Hl, &Ab};
  E.bind(Sys);
  E.ret();
  E.bind(Cd);
  E.ret();
  E.bind(Hl);
  E.ret();
  E.bind(Ab);
  E.ud2();
  // Bind order: runtime first here, then translate.
  ASSERT_FALSE(T.translateAll(RT).isError());
  EXPECT_EQ(T.codeLo(), 0x10000u);
  EXPECT_EQ(T.codeHi(), 0x13000u);
  EXPECT_EQ(T.translatedCount(), 2 * 512u);

  auto Table = T.buildAddressTable();
  EXPECT_EQ(Table.size(), (T.codeHi() - T.codeLo()) / 8 * 8);
  // Translated slots are nonzero; the gap page's slots are zero.
  auto EntryAt = [&](uint64_t Guest) {
    uint64_t V;
    memcpy(&V, Table.data() + (Guest - T.codeLo()), 8);
    return V;
  };
  EXPECT_NE(EntryAt(0x10000), 0u);
  EXPECT_NE(EntryAt(0x12ff8), 0u);
  EXPECT_EQ(EntryAt(0x11000), 0u) << "gap pages are not code";
  size_t Off;
  ASSERT_TRUE(T.hostOffsetFor(0x10008, Off));
  EXPECT_EQ(EntryAt(0x10008), TC.HostCodeBase + Off);
  EXPECT_FALSE(T.hostOffsetFor(0x11000, Off));
}

} // namespace
