//===- tests/x86/EncoderTest.cpp - JIT-execute encoded snippets -----------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// Encoder validation by direct execution: each test emits a short function
/// (System V calling convention: args in rdi/rsi, result in rax), copies it
/// into an executable mapping, and calls it. Wrong encodings crash or
/// return wrong values immediately.
///
//===----------------------------------------------------------------------===//

#include "x86/Encoder.h"

#include <gtest/gtest.h>
#include <sys/mman.h>

#include <cmath>

#include <cstring>

using namespace elfie;
using namespace elfie::x86;

namespace {

/// Maps encoder output into executable memory and provides a callable.
class JitBuffer {
public:
  explicit JitBuffer(const Encoder &E) {
    Size = (E.size() + 4095) & ~size_t(4095);
    Mem = mmap(nullptr, Size, PROT_READ | PROT_WRITE | PROT_EXEC,
               MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    EXPECT_NE(Mem, MAP_FAILED);
    std::memcpy(Mem, E.code().data(), E.size());
  }
  ~JitBuffer() { munmap(Mem, Size); }

  template <typename Fn> Fn as() const { return reinterpret_cast<Fn>(Mem); }

private:
  void *Mem;
  size_t Size;
};

using Fn0 = uint64_t (*)();
using Fn1 = uint64_t (*)(uint64_t);
using Fn2 = uint64_t (*)(uint64_t, uint64_t);
using FnP = uint64_t (*)(void *);

TEST(Encoder, MovImmAndRet) {
  Encoder E;
  E.movRegImm64(RAX, 0x1122334455667788ull);
  E.ret();
  JitBuffer J(E);
  EXPECT_EQ(J.as<Fn0>()(), 0x1122334455667788ull);
}

TEST(Encoder, MovImm32ZeroExtends) {
  Encoder E;
  E.movRegImm64(RAX, UINT64_MAX);
  E.movRegImm32(RAX, 0xdeadbeef);
  E.ret();
  JitBuffer J(E);
  EXPECT_EQ(J.as<Fn0>()(), 0xdeadbeefull);
}

TEST(Encoder, RegRegMoves) {
  Encoder E;
  E.movRegReg(RAX, RDI); // arg1
  E.ret();
  JitBuffer J(E);
  EXPECT_EQ(J.as<Fn1>()(42), 42u);
}

TEST(Encoder, HighRegisters) {
  Encoder E;
  E.movRegImm64(R10, 7);
  E.movRegImm64(R15, 5);
  E.pushReg(R15);
  E.movRegReg(RAX, R10);
  E.popReg(R15);
  E.addRegReg(RAX, R15);
  E.ret();
  JitBuffer J(E);
  EXPECT_EQ(J.as<Fn0>()(), 12u);
}

TEST(Encoder, Arithmetic) {
  Encoder E;
  E.movRegReg(RAX, RDI);
  E.addRegReg(RAX, RSI);
  E.addRegImm32(RAX, -5);
  E.ret();
  JitBuffer J(E);
  EXPECT_EQ(J.as<Fn2>()(10, 20), 25u);
}

TEST(Encoder, SubAndNeg) {
  Encoder E;
  E.movRegReg(RAX, RDI);
  E.subRegReg(RAX, RSI);
  E.negReg(RAX);
  E.ret();
  JitBuffer J(E);
  EXPECT_EQ(J.as<Fn2>()(3, 10), 7u);
}

TEST(Encoder, MemoryRoundTrip) {
  Encoder E;
  // rdi = buffer. Store, reload with all widths at varied displacements.
  E.movRegImm64(RAX, 0x1112131415161718ull);
  E.movMemReg(RDI, 0, RAX);
  E.movzxRegMem8(RAX, RDI, 0);   // 0x18
  E.movzxRegMem16(RCX, RDI, 0);  // 0x1718
  E.addRegReg(RAX, RCX);
  E.movRegMem32(RCX, RDI, 4);    // 0x11121314
  E.addRegReg(RAX, RCX);
  E.ret();
  JitBuffer J(E);
  alignas(8) uint8_t Buf[16] = {};
  EXPECT_EQ(J.as<FnP>()(Buf), 0x18u + 0x1718u + 0x11121314u);
}

TEST(Encoder, SignExtendingLoads) {
  Encoder E;
  E.movsxRegMem8(RAX, RDI, 0);
  E.movsxRegMem16(RCX, RDI, 2);
  E.addRegReg(RAX, RCX);
  E.movsxRegMem32(RCX, RDI, 4);
  E.addRegReg(RAX, RCX);
  E.ret();
  JitBuffer J(E);
  struct {
    int8_t A = -1;
    int8_t Pad = 0;
    int16_t B = -2;
    int32_t C = -3;
  } Data;
  EXPECT_EQ(static_cast<int64_t>(J.as<FnP>()(&Data)), -6);
}

TEST(Encoder, NarrowStores) {
  Encoder E;
  E.movRegImm64(RAX, 0xffffffffffffffffull);
  E.movMemReg8(RDI, 0, RAX);
  E.movMemReg16(RDI, 2, RAX);
  E.movMemReg32(RDI, 4, RAX);
  E.movRegImm64(RAX, 0);
  E.ret();
  JitBuffer J(E);
  uint8_t Buf[12] = {};
  J.as<FnP>()(Buf);
  EXPECT_EQ(Buf[0], 0xff); // 1-byte store at 0
  EXPECT_EQ(Buf[1], 0x00);
  EXPECT_EQ(Buf[2], 0xff); // 2-byte store at 2
  EXPECT_EQ(Buf[3], 0xff);
  EXPECT_EQ(Buf[4], 0xff); // 4-byte store at 4 covers 4..7
  EXPECT_EQ(Buf[7], 0xff);
  EXPECT_EQ(Buf[8], 0x00); // ...and not beyond
}

TEST(Encoder, MulDiv) {
  Encoder E;
  E.movRegReg(RAX, RDI);
  E.imulRegReg(RAX, RSI);
  E.ret();
  JitBuffer J(E);
  EXPECT_EQ(J.as<Fn2>()(7, 6), 42u);

  Encoder E2;
  E2.movRegReg(RAX, RDI);
  E2.cqo();
  E2.idivReg(RSI); // quotient in rax
  E2.ret();
  JitBuffer J2(E2);
  EXPECT_EQ(J2.as<Fn2>()(100, 7), 14u);
  EXPECT_EQ(static_cast<int64_t>(
                J2.as<uint64_t (*)(int64_t, int64_t)>()(-100, 7)),
            -14);
}

TEST(Encoder, OneOperandImulMem) {
  Encoder E;
  // rdx:rax = rax * [rdi]; return high half.
  E.movRegReg(RAX, RSI);
  E.imulMem(RDI, 0);
  E.movRegReg(RAX, RDX);
  E.ret();
  JitBuffer J(E);
  uint64_t M = 1ull << 62;
  // (1<<62) * 8 = 1<<65 -> high half = 2.
  EXPECT_EQ(J.as<uint64_t (*)(void *, uint64_t)>()(&M, 8), 2u);
}

TEST(Encoder, Shifts) {
  Encoder E;
  E.movRegReg(RAX, RDI);
  E.movRegReg(RCX, RSI);
  E.shlRegCl(RAX);
  E.shrRegImm(RAX, 1);
  E.ret();
  JitBuffer J(E);
  EXPECT_EQ(J.as<Fn2>()(3, 4), 24u); // (3<<4)>>1

  Encoder E2;
  E2.movRegReg(RAX, RDI);
  E2.sarRegImm(RAX, 2);
  E2.ret();
  JitBuffer J2(E2);
  EXPECT_EQ(static_cast<int64_t>(J2.as<uint64_t (*)(int64_t)>()(-8)), -2);
}

TEST(Encoder, CompareAndSetcc) {
  Encoder E;
  E.cmpRegReg(RDI, RSI);
  E.setcc(CondL, RAX);
  E.ret();
  JitBuffer J(E);
  auto F = J.as<uint64_t (*)(int64_t, int64_t)>();
  EXPECT_EQ(F(1, 2), 1u);
  EXPECT_EQ(F(2, 1), 0u);
  EXPECT_EQ(F(-1, 1), 1u);
}

TEST(Encoder, LabelsAndBranches) {
  // if (rdi < rsi) return 111 else return 222 — with a forward jcc.
  Encoder E;
  Label Less, Done;
  E.cmpRegReg(RDI, RSI);
  E.jcc(CondL, Less);
  E.movRegImm32(RAX, 222);
  E.jmp(Done);
  E.bind(Less);
  E.movRegImm32(RAX, 111);
  E.bind(Done);
  E.ret();
  JitBuffer J(E);
  auto F = J.as<uint64_t (*)(int64_t, int64_t)>();
  EXPECT_EQ(F(1, 5), 111u);
  EXPECT_EQ(F(5, 1), 222u);
}

TEST(Encoder, BackwardBranchLoop) {
  // Sum 1..rdi via a backward jcc.
  Encoder E;
  Label Loop;
  E.xorRegReg(RAX, RAX);
  E.movRegImm32(RCX, 0);
  E.bind(Loop);
  E.addRegImm32(RCX, 1);
  E.addRegReg(RAX, RCX);
  E.cmpRegReg(RCX, RDI);
  E.jcc(CondL, Loop);
  E.ret();
  JitBuffer J(E);
  EXPECT_EQ(J.as<Fn1>()(100), 5050u);
}

TEST(Encoder, CallAndRet) {
  Encoder E;
  Label Callee, Over;
  E.call(Callee);
  E.addRegImm32(RAX, 1);
  E.ret();
  E.bind(Callee);
  E.movRegImm32(RAX, 41);
  E.ret();
  (void)Over;
  JitBuffer J(E);
  EXPECT_EQ(J.as<Fn0>()(), 42u);
}

TEST(Encoder, IndirectJump) {
  Encoder E;
  Label Target;
  E.leaRegMem(RAX, RDI, 0); // rax = arg (address of code to jump to)...
  // Build instead: load address of Target via a register trick is awkward
  // without RIP-relative; test jmpReg by returning through it: put the
  // return address in rax and jmp rax == ret.
  (void)Target;
  Encoder E2;
  E2.popReg(RAX);  // return address
  E2.movRegImm32(RCX, 0);
  E2.jmpReg(RAX);  // acts as ret
  JitBuffer J2(E2);
  // Call through: wrap in a real function pointer call.
  auto F = J2.as<Fn0>();
  F();
  SUCCEED();
}

TEST(Encoder, Atomics) {
  Encoder E;
  // lock xadd [rdi], rsi -> returns old value
  E.movRegReg(RAX, RSI);
  E.lockXaddMemReg(RDI, 0, RAX);
  E.ret();
  JitBuffer J(E);
  uint64_t V = 100;
  EXPECT_EQ(J.as<uint64_t (*)(void *, uint64_t)>()(&V, 5), 100u);
  EXPECT_EQ(V, 105u);

  Encoder E2;
  // xchg [rdi], rsi
  E2.movRegReg(RAX, RSI);
  E2.xchgMemReg(RDI, 0, RAX);
  E2.ret();
  JitBuffer J2(E2);
  V = 7;
  EXPECT_EQ(J2.as<uint64_t (*)(void *, uint64_t)>()(&V, 9), 7u);
  EXPECT_EQ(V, 9u);

  Encoder E3;
  // cmpxchg: rax = expected (rsi), new = rdx (rdx arg3)
  E3.movRegReg(RAX, RSI);
  E3.lockCmpxchgMemReg(RDI, 0, RDX);
  E3.ret();
  JitBuffer J3(E3);
  V = 50;
  auto F3 = J3.as<uint64_t (*)(void *, uint64_t, uint64_t)>();
  EXPECT_EQ(F3(&V, 50, 60), 50u); // success: old returned
  EXPECT_EQ(V, 60u);
  EXPECT_EQ(F3(&V, 99, 70), 60u); // failure: old returned, V unchanged
  EXPECT_EQ(V, 60u);
}

TEST(Encoder, DecMemAndJs) {
  // Emulates the graceful-exit countdown: decrement a counter; return 1
  // when it goes negative, 0 otherwise.
  Encoder E;
  Label Neg;
  E.decMem(RDI, 0);
  E.jcc(CondS, Neg);
  E.movRegImm32(RAX, 0);
  E.ret();
  E.bind(Neg);
  E.movRegImm32(RAX, 1);
  E.ret();
  JitBuffer J(E);
  auto F = J.as<FnP>();
  uint64_t Counter = 2;
  EXPECT_EQ(F(&Counter), 0u); // 2 -> 1
  EXPECT_EQ(F(&Counter), 0u); // 1 -> 0
  EXPECT_EQ(F(&Counter), 1u); // 0 -> -1: sign set
}

TEST(Encoder, SSEArithmetic) {
  // (a + b) * a / b  on doubles stored at [rdi], [rdi+8]; result to
  // [rdi+16]; returns nothing meaningful.
  Encoder E;
  E.movsdXmmMem(XMM0, RDI, 0);
  E.movsdXmmMem(XMM1, RDI, 8);
  E.addsd(XMM0, XMM1);
  E.mulsd(XMM0, XMM0);
  E.sqrtsd(XMM0, XMM0);
  E.divsd(XMM0, XMM1);
  E.movsdMemXmm(RDI, 16, XMM0);
  E.movRegImm32(RAX, 0);
  E.ret();
  JitBuffer J(E);
  double Buf[3] = {3.0, 2.0, 0.0};
  J.as<FnP>()(Buf);
  EXPECT_DOUBLE_EQ(Buf[2], 2.5); // sqrt((3+2)^2)/2
}

TEST(Encoder, SSEConversionsAndCompare) {
  Encoder E;
  // rax = (int64)trunc((double)rdi / 2.0) using cvtsi2sd/cvttsd2si.
  E.cvtsi2sd(XMM0, RDI);
  E.movRegImm64(RAX, 2);
  E.cvtsi2sd(XMM1, RAX);
  E.divsd(XMM0, XMM1);
  E.cvttsd2si(RAX, XMM0);
  E.ret();
  JitBuffer J(E);
  EXPECT_EQ(J.as<Fn1>()(7), 3u);

  Encoder E2;
  // min/max through SSE.
  E2.cvtsi2sd(XMM0, RDI);
  E2.cvtsi2sd(XMM1, RSI);
  E2.minsd(XMM0, XMM1);
  E2.cvttsd2si(RAX, XMM0);
  E2.ret();
  JitBuffer J2(E2);
  EXPECT_EQ(J2.as<Fn2>()(9, 4), 4u);
}

TEST(Encoder, MovqBetweenGprAndXmm) {
  Encoder E;
  E.movqXmmReg(XMM0, RDI);
  E.movqRegXmm(RAX, XMM0);
  E.ret();
  JitBuffer J(E);
  EXPECT_EQ(J.as<Fn1>()(0xcafebabedeadbeefull), 0xcafebabedeadbeefull);
}

TEST(Encoder, UcomisdFlags) {
  // flt(a,b): ucomisd(b,a); seta.
  Encoder E;
  E.movsdXmmMem(XMM0, RDI, 8); // b
  E.movsdXmmMem(XMM1, RDI, 0); // a
  E.ucomisd(XMM0, XMM1);
  E.setcc(CondA, RAX);
  E.ret();
  JitBuffer J(E);
  auto F = J.as<FnP>();
  double LT[2] = {1.0, 2.0};
  double GT[2] = {2.0, 1.0};
  double EQ2[2] = {1.0, 1.0};
  double NAN2[2] = {std::nan(""), 1.0};
  EXPECT_EQ(F(LT), 1u);
  EXPECT_EQ(F(GT), 0u);
  EXPECT_EQ(F(EQ2), 0u);
  EXPECT_EQ(F(NAN2), 0u) << "NaN compares must be false";
}

TEST(Encoder, RdtscMonotonic) {
  Encoder E;
  E.rdtsc();
  E.shlRegImm(RDX, 32);
  E.orRegReg(RAX, RDX);
  E.ret();
  JitBuffer J(E);
  auto F = J.as<Fn0>();
  uint64_t A = F();
  uint64_t B = F();
  EXPECT_GE(B, A);
}

TEST(Encoder, MemOperandWithR12R13Base) {
  // R12 and R13 hit the SIB/disp special cases in ModRM encoding.
  Encoder E;
  E.pushReg(R12);
  E.pushReg(R13);
  E.movRegReg(R12, RDI);
  E.movRegReg(R13, RDI);
  E.movRegMem(RAX, R12, 0);
  E.addRegMem(RAX, R13, 8);
  E.popReg(R13);
  E.popReg(R12);
  E.ret();
  JitBuffer J(E);
  uint64_t Buf[2] = {30, 12};
  EXPECT_EQ(J.as<FnP>()(Buf), 42u);
}

TEST(Encoder, RspBaseUsesSib) {
  Encoder E;
  E.pushReg(RDI);
  E.movRegMem(RAX, RSP, 0); // read back what we pushed
  E.popReg(RCX);
  E.ret();
  JitBuffer J(E);
  EXPECT_EQ(J.as<Fn1>()(77), 77u);
}

} // namespace
