//===- tests/x86/JITEmitterTest.cpp - template JIT block emitter ----------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// Emitter-level tests for the EVM JIT (DESIGN.md §12), independent of the
/// VM: blocks are compiled against a fake context/thread-state pair whose
/// offsets feed the JitLayout, executed through the real trampoline in a
/// real W^X ExecBuffer, and checked for the exit-kind protocol — in
/// particular that every exit path subtracts *exactly* the instructions it
/// retired, which is what lets the dispatcher stop at any boundary.
///
//===----------------------------------------------------------------------===//

#include "x86/JITEmitter.h"

#include "isa/ISA.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <vector>

#if !defined(__x86_64__)

TEST(JITEmitter, SkippedOnNonX86Host) {
  GTEST_SKIP() << "the template JIT emits host x86-64 code";
}

#else // __x86_64__

using namespace elfie;
using namespace elfie::x86;

namespace {

isa::Inst I3(isa::Opcode Op, uint8_t Rd, uint8_t Rs1, uint8_t Rs2,
             int32_t Imm) {
  isa::Inst I;
  I.Op = Op;
  I.Rd = Rd;
  I.Rs1 = Rs1;
  I.Rs2 = Rs2;
  I.Imm = Imm;
  return I;
}

/// Mirrors vm::JitExecContext field-for-field; the layout is built from
/// offsetof() on *this* struct, so the emitter is tested against the same
/// mechanism the VM uses rather than hard-coded offsets.
struct FakeCtx {
  int64_t Countdown = 0;
  uint64_t NextPC = 0;
  uint64_t MemOk = 1;
  uint64_t Pending = 0;
  void *Cookie = nullptr;
  JitLoadFn LoadFn = nullptr;
  JitStoreFn StoreFn = nullptr;
  void *Thread = nullptr;
};

struct FakeThread {
  uint64_t GPR[16] = {};
  double FPR[16] = {};
};

JitLayout testLayout() {
  JitLayout L;
  L.CountdownOff = offsetof(FakeCtx, Countdown);
  L.NextPCOff = offsetof(FakeCtx, NextPC);
  L.MemOkOff = offsetof(FakeCtx, MemOk);
  L.PendingOff = offsetof(FakeCtx, Pending);
  L.CookieOff = offsetof(FakeCtx, Cookie);
  L.LoadFnOff = offsetof(FakeCtx, LoadFn);
  L.StoreFnOff = offsetof(FakeCtx, StoreFn);
  L.ThreadOff = offsetof(FakeCtx, Thread);
  L.GprOff = offsetof(FakeThread, GPR);
  L.FprOff = offsetof(FakeThread, FPR);
  return L;
}

constexpr uint64_t StartPC = 0x40000;
constexpr uint64_t MemBase = 0x100000;

/// Trampoline + blocks in one ExecBuffer, with a flat fake guest memory
/// behind the load/store helpers. Accesses outside the array report a
/// fault (clear MemOk); stores to PoisonAddr set Pending, standing in for
/// a store that invalidated compiled code.
struct Harness {
  ExecBuffer Buf;
  FakeCtx Ctx;
  FakeThread T;
  std::vector<uint8_t> Mem = std::vector<uint8_t>(1 << 16);
  uint64_t PoisonAddr = 0;

  bool init() {
    if (!Buf.init(1 << 20))
      return false;
    Encoder E;
    emitJitTrampoline(E, testLayout());
    if (Buf.append(E.code().data(), E.code().size()) == SIZE_MAX)
      return false;
    Ctx.Cookie = this;
    Ctx.LoadFn = &load;
    Ctx.StoreFn = &store;
    Ctx.Thread = &T;
    return true;
  }

  /// Compiles and appends a block; returns its entry offset and (optional)
  /// its exit sites globalized to buffer offsets.
  size_t addBlock(uint64_t PC, const std::vector<isa::Inst> &Insts,
                  JitBlockCode *Out = nullptr) {
    JitBlockCode BC;
    if (!emitJitBlock(PC, Insts.data(), Insts.size(), testLayout(), BC))
      return SIZE_MAX;
    Buf.beginWrite();
    size_t Off = Buf.append(BC.Code.data(), BC.Code.size());
    EXPECT_NE(Off, SIZE_MAX);
    if (Out) {
      for (JitChainExit &X : BC.Exits)
        X.JmpOff += Off;
      *Out = std::move(BC);
    }
    return Off;
  }

  uint32_t run(size_t Entry, int64_t Countdown) {
    Ctx.Countdown = Countdown;
    Ctx.NextPC = 0;
    Ctx.MemOk = 1;
    Ctx.Pending = 0;
    Buf.endWrite();
    using Fn = uint64_t (*)(void *, const void *);
    auto F = reinterpret_cast<Fn>(
        reinterpret_cast<uintptr_t>(Buf.data()));
    return static_cast<uint32_t>(F(&Ctx, Buf.data() + Entry));
  }

  static uint64_t load(void *Cookie, uint64_t Addr, uint64_t Kind) {
    auto *H = static_cast<Harness *>(Cookie);
    static const uint32_t Sizes[7] = {1, 2, 4, 8, 1, 2, 4};
    uint32_t Size = Sizes[Kind];
    if (Addr < MemBase || Addr + Size > MemBase + H->Mem.size()) {
      H->Ctx.MemOk = 0;
      return 0;
    }
    uint64_t Raw = 0;
    std::memcpy(&Raw, H->Mem.data() + (Addr - MemBase), Size);
    switch (Kind) {
    case JitLoadS8:
      return static_cast<uint64_t>(
          static_cast<int64_t>(static_cast<int8_t>(Raw)));
    case JitLoadS16:
      return static_cast<uint64_t>(
          static_cast<int64_t>(static_cast<int16_t>(Raw)));
    case JitLoadS32:
      return static_cast<uint64_t>(
          static_cast<int64_t>(static_cast<int32_t>(Raw)));
    default:
      return Raw;
    }
  }

  static void store(void *Cookie, uint64_t Addr, uint64_t Value,
                    uint64_t Size) {
    auto *H = static_cast<Harness *>(Cookie);
    if (Addr < MemBase || Addr + Size > MemBase + H->Mem.size()) {
      H->Ctx.MemOk = 0;
      return;
    }
    std::memcpy(H->Mem.data() + (Addr - MemBase), &Value, Size);
    if (H->PoisonAddr && Addr == H->PoisonAddr)
      H->Ctx.Pending = 1;
  }
};

TEST(JITEmitter, AluBlockRetiresExactlyAndChains) {
  Harness H;
  ASSERT_TRUE(H.init());
  size_t Entry = H.addBlock(StartPC, {
      I3(isa::Opcode::Ldi, 1, 0, 0, 5),
      I3(isa::Opcode::Addi, 1, 1, 0, 7),
      I3(isa::Opcode::Add, 2, 1, 1, 0),
  });
  ASSERT_NE(Entry, SIZE_MAX);
  uint32_t Kind = H.run(Entry, 100);
  EXPECT_EQ(Kind, JitExitChain);
  EXPECT_EQ(H.T.GPR[1], 12u);
  EXPECT_EQ(H.T.GPR[2], 24u);
  EXPECT_EQ(H.Ctx.Countdown, 97); // exactly three instructions retired
  EXPECT_EQ(H.Ctx.NextPC, StartPC + 3 * 8);
}

TEST(JITEmitter, ShortCountdownExitsWithoutSideEffects) {
  Harness H;
  ASSERT_TRUE(H.init());
  size_t Entry = H.addBlock(StartPC, {
      I3(isa::Opcode::Ldi, 1, 0, 0, 42),
      I3(isa::Opcode::Ldi, 2, 0, 0, 43),
      I3(isa::Opcode::Ldi, 3, 0, 0, 44),
  });
  ASSERT_NE(Entry, SIZE_MAX);
  uint32_t Kind = H.run(Entry, 2); // block needs 3
  EXPECT_EQ(Kind, JitExitCountdown);
  EXPECT_EQ(H.Ctx.Countdown, 2); // nothing retired
  EXPECT_EQ(H.Ctx.NextPC, StartPC);
  EXPECT_EQ(H.T.GPR[1], 0u); // no partial architectural effects
}

TEST(JITEmitter, ZeroRegisterSlotIsNeverWritten) {
  Harness H;
  ASSERT_TRUE(H.init());
  size_t Entry = H.addBlock(StartPC, {
      I3(isa::Opcode::Ldi, 0, 0, 0, 99),   // rd == r0: must be dropped
      I3(isa::Opcode::Addi, 1, 0, 0, 1),   // reads the (still zero) slot
  });
  ASSERT_NE(Entry, SIZE_MAX);
  EXPECT_EQ(H.run(Entry, 10), JitExitChain);
  EXPECT_EQ(H.T.GPR[0], 0u);
  EXPECT_EQ(H.T.GPR[1], 1u);
  EXPECT_EQ(H.Ctx.Countdown, 8);
}

TEST(JITEmitter, BranchBothOutcomesSetNextPC) {
  Harness H;
  ASSERT_TRUE(H.init());
  size_t Entry = H.addBlock(StartPC, {
      I3(isa::Opcode::Beq, 0, 1, 2, 10 * 8),
  });
  ASSERT_NE(Entry, SIZE_MAX);

  H.T.GPR[1] = 7;
  H.T.GPR[2] = 7; // taken
  EXPECT_EQ(H.run(Entry, 5), JitExitChain);
  EXPECT_EQ(H.Ctx.NextPC, StartPC + 10 * 8);
  EXPECT_EQ(H.Ctx.Countdown, 4);

  H.T.GPR[2] = 8; // not taken
  EXPECT_EQ(H.run(Entry, 5), JitExitChain);
  EXPECT_EQ(H.Ctx.NextPC, StartPC + 8);
  EXPECT_EQ(H.Ctx.Countdown, 4);
}

TEST(JITEmitter, ChainPatchingThreadsBlocksWithoutReturning) {
  Harness H;
  ASSERT_TRUE(H.init());
  const uint64_t PCB = StartPC + 0x800;
  JitBlockCode CA;
  size_t EA = H.addBlock(StartPC, {
      I3(isa::Opcode::Ldi, 1, 0, 0, 5),
      I3(isa::Opcode::Jmp, 0, 0, 0,
         static_cast<int32_t>(PCB - (StartPC + 8))),
  }, &CA);
  ASSERT_NE(EA, SIZE_MAX);
  size_t EB = H.addBlock(PCB, {
      I3(isa::Opcode::Addi, 1, 1, 0, 100),
      I3(isa::Opcode::Jmp, 0, 0, 0, 0x400),
  });
  ASSERT_NE(EB, SIZE_MAX);
  ASSERT_EQ(CA.Exits.size(), 1u);
  EXPECT_EQ(CA.Exits[0].TargetPC, PCB);

  // Unpatched: block A returns a Chain exit at the jmp.
  EXPECT_EQ(H.run(EA, 100), JitExitChain);
  EXPECT_EQ(H.Ctx.NextPC, PCB);
  EXPECT_EQ(H.Ctx.Countdown, 98);

  // Patch A's chain exit to B's entry: one dispatch now runs both blocks.
  H.Buf.beginWrite();
  H.Buf.patchJmp(CA.Exits[0].JmpOff, EB);
  EXPECT_EQ(H.run(EA, 100), JitExitChain);
  EXPECT_EQ(H.T.GPR[1], 105u);
  EXPECT_EQ(H.Ctx.NextPC, PCB + 8 + 0x400);
  EXPECT_EQ(H.Ctx.Countdown, 96); // 2 + 2 instructions across the chain

  // A short countdown mid-chain stops at B's entry check with B's start
  // as the resume PC — the partial chain still retired exactly A.
  EXPECT_EQ(H.run(EA, 3), JitExitCountdown);
  EXPECT_EQ(H.Ctx.NextPC, PCB);
  EXPECT_EQ(H.Ctx.Countdown, 1);

  // Un-patch (rel32 back to 0): the Chain return stub is live again.
  H.Buf.beginWrite();
  H.Buf.patchJmp(CA.Exits[0].JmpOff, CA.Exits[0].JmpOff + 5);
  EXPECT_EQ(H.run(EA, 100), JitExitChain);
  EXPECT_EQ(H.Ctx.NextPC, PCB);
  EXPECT_EQ(H.Ctx.Countdown, 98);
}

TEST(JITEmitter, LoadsStoresAndSignExtension) {
  Harness H;
  ASSERT_TRUE(H.init());
  H.Mem[0] = 0x80; // -128 as i8
  H.Mem[2] = 0xff;
  H.Mem[3] = 0x7f; // 0x7fff as u16
  size_t Entry = H.addBlock(StartPC, {
      I3(isa::Opcode::Ld1s, 1, 5, 0, 0),
      I3(isa::Opcode::Ld2, 2, 5, 0, 2),
      I3(isa::Opcode::St8, 1, 5, 0, 8),
  });
  ASSERT_NE(Entry, SIZE_MAX);
  H.T.GPR[5] = MemBase;
  EXPECT_EQ(H.run(Entry, 50), JitExitChain);
  EXPECT_EQ(H.T.GPR[1], static_cast<uint64_t>(-128));
  EXPECT_EQ(H.T.GPR[2], 0x7fffu);
  uint64_t Stored = 0;
  std::memcpy(&Stored, H.Mem.data() + 8, 8);
  EXPECT_EQ(Stored, static_cast<uint64_t>(-128));
  EXPECT_EQ(H.Ctx.Countdown, 47);
}

TEST(JITEmitter, FaultingLoadExitsWithInstructionNotRetired) {
  Harness H;
  ASSERT_TRUE(H.init());
  size_t Entry = H.addBlock(StartPC, {
      I3(isa::Opcode::Addi, 1, 1, 0, 1),
      I3(isa::Opcode::Ld8, 2, 5, 0, 0), // r5 = 0 -> out of fake memory
  });
  ASSERT_NE(Entry, SIZE_MAX);
  EXPECT_EQ(H.run(Entry, 50), JitExitMemRetry);
  // The addi retired; the faulting load did NOT, and NextPC points at it
  // so the interpreter can re-run it and raise the canonical fault.
  EXPECT_EQ(H.Ctx.Countdown, 49);
  EXPECT_EQ(H.Ctx.NextPC, StartPC + 8);
  EXPECT_EQ(H.T.GPR[2], 0u);
  EXPECT_EQ(H.Ctx.MemOk, 0u);
}

TEST(JITEmitter, InvalidatingStoreStopsAfterTheStore) {
  Harness H;
  ASSERT_TRUE(H.init());
  H.PoisonAddr = MemBase + 64;
  size_t Entry = H.addBlock(StartPC, {
      I3(isa::Opcode::Ldi, 1, 0, 0, 7),
      I3(isa::Opcode::St8, 1, 5, 0, 64),
      I3(isa::Opcode::Addi, 1, 1, 0, 1), // must NOT run on invalidation
  });
  ASSERT_NE(Entry, SIZE_MAX);
  H.T.GPR[5] = MemBase;
  EXPECT_EQ(H.run(Entry, 50), JitExitInvalidate);
  // The store itself retired (its bytes landed), execution stopped before
  // the next instruction of the possibly-stale block.
  EXPECT_EQ(H.Ctx.Countdown, 48);
  EXPECT_EQ(H.Ctx.NextPC, StartPC + 2 * 8);
  EXPECT_EQ(H.T.GPR[1], 7u);
  uint64_t Stored = 0;
  std::memcpy(&Stored, H.Mem.data() + 64, 8);
  EXPECT_EQ(Stored, 7u);
}

TEST(JITEmitter, SyscallEndsThePrefixWithABail) {
  Harness H;
  ASSERT_TRUE(H.init());
  std::vector<isa::Inst> Insts = {
      I3(isa::Opcode::Addi, 1, 1, 0, 1),
      I3(isa::Opcode::Addi, 2, 2, 0, 2),
      I3(isa::Opcode::Syscall, 0, 0, 0, 0),
  };
  JitBlockCode BC;
  ASSERT_TRUE(emitJitBlock(StartPC, Insts.data(), Insts.size(), testLayout(),
                           BC));
  EXPECT_EQ(BC.NumInsts, 2u); // the syscall is not part of the prefix
  H.Buf.beginWrite();
  size_t Entry = H.Buf.append(BC.Code.data(), BC.Code.size());
  ASSERT_NE(Entry, SIZE_MAX);
  EXPECT_EQ(H.run(Entry, 50), JitExitBail);
  EXPECT_EQ(H.Ctx.Countdown, 48);
  EXPECT_EQ(H.Ctx.NextPC, StartPC + 2 * 8); // the syscall's own PC
  EXPECT_EQ(H.T.GPR[1], 1u);
  EXPECT_EQ(H.T.GPR[2], 2u);
}

TEST(JITEmitter, UncompilableFirstInstructionRefuses) {
  std::vector<isa::Inst> Insts = {I3(isa::Opcode::Syscall, 0, 0, 0, 0)};
  JitBlockCode BC;
  EXPECT_FALSE(emitJitBlock(StartPC, Insts.data(), Insts.size(),
                            testLayout(), BC));
  for (isa::Opcode Op : {isa::Opcode::AmoAdd, isa::Opcode::AmoSwap,
                         isa::Opcode::Cas, isa::Opcode::Pause,
                         isa::Opcode::Halt, isa::Opcode::Marker}) {
    std::vector<isa::Inst> One = {I3(Op, 1, 2, 3, 0)};
    EXPECT_FALSE(emitJitBlock(StartPC, One.data(), One.size(), testLayout(),
                              BC))
        << "opcode " << static_cast<int>(Op);
  }
}

TEST(JITEmitter, JalrLinksAndExitsIndirect) {
  Harness H;
  ASSERT_TRUE(H.init());
  size_t Entry = H.addBlock(StartPC, {
      I3(isa::Opcode::Jalr, 14, 5, 0, 8),
  });
  ASSERT_NE(Entry, SIZE_MAX);
  H.T.GPR[5] = 0x70000;
  EXPECT_EQ(H.run(Entry, 9), JitExitIndirect);
  EXPECT_EQ(H.Ctx.NextPC, 0x70008u); // r5 + imm
  EXPECT_EQ(H.T.GPR[14], StartPC + 8); // link
  EXPECT_EQ(H.Ctx.Countdown, 8);

  // Misaligned target: bail at the jalr itself, nothing retired, link not
  // written — the interpreter re-runs it and raises the canonical fault.
  H.T.GPR[5] = 0x70003;
  H.T.GPR[14] = 0;
  EXPECT_EQ(H.run(Entry, 9), JitExitBail);
  EXPECT_EQ(H.Ctx.NextPC, StartPC);
  EXPECT_EQ(H.Ctx.Countdown, 9);
  EXPECT_EQ(H.T.GPR[14], 0u);
}

TEST(JITEmitter, DivisionEdgeCasesMatchTheInterpreter) {
  Harness H;
  ASSERT_TRUE(H.init());
  size_t Entry = H.addBlock(StartPC, {
      I3(isa::Opcode::Div, 1, 5, 6, 0),
      I3(isa::Opcode::Rem, 2, 5, 6, 0),
      I3(isa::Opcode::Divu, 3, 5, 6, 0),
      I3(isa::Opcode::Remu, 4, 5, 6, 0),
  });
  ASSERT_NE(Entry, SIZE_MAX);

  // Division by zero: div -> all ones, rem -> dividend.
  H.T.GPR[5] = 1234;
  H.T.GPR[6] = 0;
  EXPECT_EQ(H.run(Entry, 50), JitExitChain);
  EXPECT_EQ(H.T.GPR[1], UINT64_MAX);
  EXPECT_EQ(H.T.GPR[2], 1234u);
  EXPECT_EQ(H.T.GPR[3], UINT64_MAX);
  EXPECT_EQ(H.T.GPR[4], 1234u);

  // INT64_MIN / -1 must not trap the host: div -> INT64_MIN, rem -> 0.
  H.T.GPR[5] = 0x8000000000000000ull;
  H.T.GPR[6] = static_cast<uint64_t>(-1);
  EXPECT_EQ(H.run(Entry, 50), JitExitChain);
  EXPECT_EQ(H.T.GPR[1], 0x8000000000000000ull);
  EXPECT_EQ(H.T.GPR[2], 0u);
}

} // namespace

#endif // __x86_64__
