//===- tests/elf/ELFTest.cpp - ELF writer/reader round trips --------------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "elf/ELFReader.h"
#include "elf/ELFWriter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

using namespace elfie;
using namespace elfie::elf;

namespace {

std::vector<uint8_t> bytesOf(const char *S) {
  return std::vector<uint8_t>(S, S + strlen(S));
}

std::vector<uint8_t> finalizeOK(ELFWriter &W) {
  auto Image = W.finalize();
  EXPECT_TRUE(Image.hasValue()) << Image.message();
  return Image ? Image.takeValue() : std::vector<uint8_t>();
}

TEST(ELFWriter, MinimalExecutableRoundTrip) {
  ELFWriter W(ET_EXEC, EM_EG64);
  W.setEntry(0x10000);
  unsigned Text = W.addSection(".text", SHF_ALLOC | SHF_EXECINSTR, 0x10000,
                               bytesOf("CODECODE"));
  W.addSymbol("_start", 0x10000, Text, STB_GLOBAL, STT_FUNC);

  auto R = ELFReader::parse(finalizeOK(W));
  ASSERT_TRUE(R.hasValue()) << R.message();
  EXPECT_EQ(R->fileType(), ET_EXEC);
  EXPECT_EQ(R->machine(), EM_EG64);
  EXPECT_EQ(R->entry(), 0x10000u);

  const auto *S = R->findSection(".text");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Addr, 0x10000u);
  EXPECT_TRUE(std::ranges::equal(S->Data, bytesOf("CODECODE")));
  EXPECT_TRUE(S->Flags & SHF_EXECINSTR);

  const auto *Sym = R->findSymbol("_start");
  ASSERT_NE(Sym, nullptr);
  EXPECT_EQ(Sym->Value, 0x10000u);
}

TEST(ELFWriter, SegmentsCoverAllocSectionsOnly) {
  ELFWriter W(ET_EXEC, EM_EG64);
  W.addSection(".text", SHF_ALLOC | SHF_EXECINSTR, 0x10000, bytesOf("XXXX"));
  W.addSection(".data", SHF_ALLOC | SHF_WRITE, 0x20000, bytesOf("YYYY"));
  // Non-ALLOC section: carries data but must not produce a PT_LOAD. This is
  // how pinball2elf keeps checkpointed stack pages away from the system
  // loader (paper Fig. 4/5).
  W.addSection(".data.stack.stash", 0, 0x7ff0000000, bytesOf("SSSS"));

  auto R = ELFReader::parse(finalizeOK(W));
  ASSERT_TRUE(R.hasValue()) << R.message();
  unsigned NumLoad = 0;
  for (const auto &Seg : R->segments())
    if (Seg.Type == PT_LOAD)
      ++NumLoad;
  EXPECT_EQ(NumLoad, 2u);
  // The stash section's data still round-trips through the file.
  const auto *Stash = R->findSection(".data.stack.stash");
  ASSERT_NE(Stash, nullptr);
  EXPECT_TRUE(std::ranges::equal(Stash->Data, bytesOf("SSSS")));
}

TEST(ELFWriter, LoadSegmentOffsetCongruentToVaddr) {
  ELFWriter W(ET_EXEC, EM_EG64);
  // Deliberately unaligned vaddr within the page.
  W.addSection(".text", SHF_ALLOC | SHF_EXECINSTR, 0x10378, bytesOf("Z"));
  auto R = ELFReader::parse(finalizeOK(W));
  ASSERT_TRUE(R.hasValue()) << R.message();
  const auto *S = R->findSection(".text");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Offset % PageSize, S->Addr % PageSize)
      << "PT_LOAD requires offset === vaddr (mod page size)";
}

TEST(ELFWriter, NoBitsSection) {
  ELFWriter W(ET_EXEC, EM_EG64);
  W.addSection(".text", SHF_ALLOC | SHF_EXECINSTR, 0x10000, bytesOf("AAAA"));
  W.addNoBitsSection(".bss", SHF_ALLOC | SHF_WRITE, 0x30000, 0x2000);
  auto R = ELFReader::parse(finalizeOK(W));
  ASSERT_TRUE(R.hasValue()) << R.message();
  const auto *S = R->findSection(".bss");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Type, static_cast<uint32_t>(SHT_NOBITS));
  EXPECT_EQ(S->Size, 0x2000u);
  EXPECT_TRUE(S->Data.empty());
  // The matching PT_LOAD must have filesz 0, memsz 0x2000.
  bool Found = false;
  for (const auto &Seg : R->segments())
    if (Seg.Type == PT_LOAD && Seg.VAddr == 0x30000) {
      Found = true;
      EXPECT_EQ(Seg.FileSize, 0u);
      EXPECT_EQ(Seg.MemSize, 0x2000u);
    }
  EXPECT_TRUE(Found);
}

TEST(ELFWriter, ManySectionsAndSymbols) {
  ELFWriter W(ET_EXEC, EM_EG64);
  // Pinball images decompose into many page-run sections; make sure a
  // large section count works.
  for (int I = 0; I < 200; ++I) {
    uint64_t Addr = 0x10000 + uint64_t(I) * 0x1000;
    std::vector<uint8_t> Data(16, static_cast<uint8_t>(I));
    unsigned Idx = W.addSection(".text.page" + std::to_string(I),
                                SHF_ALLOC | SHF_EXECINSTR, Addr, Data);
    W.addSymbol("page" + std::to_string(I), Addr, Idx, STB_LOCAL);
  }
  auto R = ELFReader::parse(finalizeOK(W));
  ASSERT_TRUE(R.hasValue()) << R.message();
  EXPECT_EQ(R->symbols().size(), 200u);
  const auto *S = R->findSection(".text.page199");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Data[0], 199);
}

TEST(ELFWriter, LocalSymbolsPrecedeGlobals) {
  ELFWriter W(ET_EXEC, EM_EG64);
  unsigned T =
      W.addSection(".text", SHF_ALLOC | SHF_EXECINSTR, 0x10000, bytesOf("A"));
  W.addSymbol("g1", 1, T, STB_GLOBAL);
  W.addSymbol("l1", 2, T, STB_LOCAL);
  W.addSymbol("g2", 3, T, STB_GLOBAL);
  auto R = ELFReader::parse(finalizeOK(W));
  ASSERT_TRUE(R.hasValue()) << R.message();
  ASSERT_EQ(R->symbols().size(), 3u);
  EXPECT_EQ(R->symbols()[0].Name, "l1");
}

TEST(ELFWriter, RejectsOverlappingAllocSections) {
  ELFWriter W(ET_EXEC, EM_EG64);
  W.addSection(".text", SHF_ALLOC | SHF_EXECINSTR, 0x10000,
               std::vector<uint8_t>(0x2000, 0xaa));
  // Starts inside the previous section's range: the loader would map one
  // PT_LOAD over the other.
  W.addSection(".data", SHF_ALLOC | SHF_WRITE, 0x11000,
               std::vector<uint8_t>(0x1000, 0xbb));
  auto Image = W.finalize();
  ASSERT_FALSE(Image.hasValue());
  EXPECT_NE(Image.message().find("overlap"), std::string::npos)
      << Image.message();
}

TEST(ELFWriter, OverlapCheckCoversNoBitsAndIgnoresNonAlloc) {
  {
    // NOBITS ALLOC sections occupy address space too.
    ELFWriter W(ET_EXEC, EM_EG64);
    W.addSection(".text", SHF_ALLOC | SHF_EXECINSTR, 0x10000,
                 std::vector<uint8_t>(64, 0xcc));
    W.addNoBitsSection(".bss", SHF_ALLOC | SHF_WRITE, 0x10020, 0x1000);
    EXPECT_FALSE(W.finalize().hasValue());
  }
  {
    // Non-ALLOC stash data may sit anywhere — it is never loader-mapped.
    ELFWriter W(ET_EXEC, EM_EG64);
    W.addSection(".text", SHF_ALLOC | SHF_EXECINSTR, 0x10000,
                 std::vector<uint8_t>(64, 0xcc));
    W.addSection(".stash", 0, 0x10000, std::vector<uint8_t>(64, 0xdd));
    EXPECT_TRUE(W.finalize().hasValue());
  }
  {
    // Adjacent (touching) ranges are fine.
    ELFWriter W(ET_EXEC, EM_EG64);
    W.addSection(".a", SHF_ALLOC, 0x10000, std::vector<uint8_t>(16, 1));
    W.addSection(".b", SHF_ALLOC, 0x10010, std::vector<uint8_t>(16, 2));
    EXPECT_TRUE(W.finalize().hasValue());
  }
}

TEST(ELFReader, RejectsGarbage) {
  std::vector<uint8_t> Junk = {1, 2, 3, 4};
  EXPECT_FALSE(ELFReader::parse(Junk).hasValue());

  std::vector<uint8_t> BadMagic(128, 0);
  BadMagic[0] = 0x7f;
  BadMagic[1] = 'N';
  EXPECT_FALSE(ELFReader::parse(BadMagic).hasValue());
}

TEST(ELFReader, RejectsTruncatedSectionTable) {
  ELFWriter W(ET_EXEC, EM_EG64);
  W.addSection(".text", SHF_ALLOC | SHF_EXECINSTR, 0x10000, bytesOf("AAAA"));
  std::vector<uint8_t> Image = finalizeOK(W);
  Image.resize(Image.size() - 32); // chop into the section header table
  EXPECT_FALSE(ELFReader::parse(Image).hasValue());
}

TEST(ELFReader, OpenMissingFileFails) {
  EXPECT_FALSE(ELFReader::open("/nonexistent/elf").hasValue());
}

// Builds an image with a symbol so .symtab/.strtab exist.
std::vector<uint8_t> imageWithSymbols() {
  ELFWriter W(ET_EXEC, EM_EG64);
  unsigned T =
      W.addSection(".text", SHF_ALLOC | SHF_EXECINSTR, 0x10000, bytesOf("AB"));
  W.addSymbol("_start", 0x10000, T, STB_GLOBAL, STT_FUNC);
  return finalizeOK(W);
}

TEST(ELFReader, RejectsOutOfRangeShStrNdx) {
  std::vector<uint8_t> Image = imageWithSymbols();
  Elf64_Ehdr H;
  std::memcpy(&H, Image.data(), sizeof(H));
  H.e_shstrndx = 999;
  std::memcpy(Image.data(), &H, sizeof(H));
  auto R = ELFReader::parse(Image);
  ASSERT_FALSE(R.hasValue());
  EXPECT_NE(R.message().find("e_shstrndx"), std::string::npos) << R.message();
}

TEST(ELFReader, RejectsOutOfRangeSymtabLink) {
  std::vector<uint8_t> Image = imageWithSymbols();
  Elf64_Ehdr H;
  std::memcpy(&H, Image.data(), sizeof(H));
  for (unsigned I = 0; I < H.e_shnum; ++I) {
    Elf64_Shdr S;
    uint8_t *At = Image.data() + H.e_shoff + I * sizeof(Elf64_Shdr);
    std::memcpy(&S, At, sizeof(S));
    if (S.sh_type == SHT_SYMTAB) {
      S.sh_link = 999;
      std::memcpy(At, &S, sizeof(S));
    }
  }
  auto R = ELFReader::parse(Image);
  ASSERT_FALSE(R.hasValue());
  EXPECT_NE(R.message().find("sh_link"), std::string::npos) << R.message();
}

TEST(ELFReader, RejectsUnterminatedStringTable) {
  std::vector<uint8_t> Image = imageWithSymbols();
  Elf64_Ehdr H;
  std::memcpy(&H, Image.data(), sizeof(H));
  // Corrupt the final byte of the section-name string table.
  Elf64_Shdr S;
  std::memcpy(&S, Image.data() + H.e_shoff + H.e_shstrndx * sizeof(Elf64_Shdr),
              sizeof(S));
  ASSERT_GT(S.sh_size, 0u);
  Image[S.sh_offset + S.sh_size - 1] = 'X';
  auto R = ELFReader::parse(Image);
  ASSERT_FALSE(R.hasValue());
  EXPECT_NE(R.message().find("NUL"), std::string::npos) << R.message();
}

TEST(ELFReader, VAddrQueries) {
  ELFWriter W(ET_EXEC, EM_EG64);
  W.addSection(".text", SHF_ALLOC | SHF_EXECINSTR, 0x10000, bytesOf("CODE"));
  std::vector<uint8_t> Data = bytesOf("hello");
  Data.push_back(0);
  W.addSection(".data", SHF_ALLOC | SHF_WRITE, 0x20000, Data);
  W.addNoBitsSection(".bss", SHF_ALLOC | SHF_WRITE, 0x30000, 0x100);
  auto R = ELFReader::parse(finalizeOK(W));
  ASSERT_TRUE(R.hasValue()) << R.message();

  const auto *S = R->sectionContaining(0x10002);
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Name, ".text");
  EXPECT_EQ(R->sectionContaining(0x10004), nullptr); // one past the end
  EXPECT_EQ(R->sectionContaining(0x50000), nullptr);

  const auto *Seg = R->segmentContaining(0x20001);
  ASSERT_NE(Seg, nullptr);
  EXPECT_EQ(Seg->VAddr, 0x20000u);

  char Buf[4] = {};
  ASSERT_TRUE(R->readAtVAddr(0x10000, Buf, 4));
  EXPECT_EQ(std::memcmp(Buf, "CODE", 4), 0);
  EXPECT_FALSE(R->readAtVAddr(0x10002, Buf, 4)); // runs off the segment

  // NOBITS memory reads as zeroes (loader zero-fill past p_filesz).
  uint64_t Z = ~0ull;
  ASSERT_TRUE(R->readAtVAddr(0x30008, &Z, sizeof(Z)));
  EXPECT_EQ(Z, 0u);

  std::string Str;
  ASSERT_TRUE(R->stringAtVAddr(0x20000, Str));
  EXPECT_EQ(Str, "hello");
  EXPECT_FALSE(R->stringAtVAddr(0x50000, Str));
  // No terminator within the mapped range of .text (terminates only if a
  // NUL is found; .text's 4 bytes have none and the segment ends).
  EXPECT_FALSE(R->stringAtVAddr(0x10000, Str));
}

} // namespace
