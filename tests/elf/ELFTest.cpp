//===- tests/elf/ELFTest.cpp - ELF writer/reader round trips --------------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "elf/ELFReader.h"
#include "elf/ELFWriter.h"

#include <gtest/gtest.h>

using namespace elfie;
using namespace elfie::elf;

namespace {

std::vector<uint8_t> bytesOf(const char *S) {
  return std::vector<uint8_t>(S, S + strlen(S));
}

TEST(ELFWriter, MinimalExecutableRoundTrip) {
  ELFWriter W(ET_EXEC, EM_EG64);
  W.setEntry(0x10000);
  unsigned Text = W.addSection(".text", SHF_ALLOC | SHF_EXECINSTR, 0x10000,
                               bytesOf("CODECODE"));
  W.addSymbol("_start", 0x10000, Text, STB_GLOBAL, STT_FUNC);

  auto R = ELFReader::parse(W.finalize());
  ASSERT_TRUE(R.hasValue()) << R.message();
  EXPECT_EQ(R->fileType(), ET_EXEC);
  EXPECT_EQ(R->machine(), EM_EG64);
  EXPECT_EQ(R->entry(), 0x10000u);

  const auto *S = R->findSection(".text");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Addr, 0x10000u);
  EXPECT_EQ(S->Data, bytesOf("CODECODE"));
  EXPECT_TRUE(S->Flags & SHF_EXECINSTR);

  const auto *Sym = R->findSymbol("_start");
  ASSERT_NE(Sym, nullptr);
  EXPECT_EQ(Sym->Value, 0x10000u);
}

TEST(ELFWriter, SegmentsCoverAllocSectionsOnly) {
  ELFWriter W(ET_EXEC, EM_EG64);
  W.addSection(".text", SHF_ALLOC | SHF_EXECINSTR, 0x10000, bytesOf("XXXX"));
  W.addSection(".data", SHF_ALLOC | SHF_WRITE, 0x20000, bytesOf("YYYY"));
  // Non-ALLOC section: carries data but must not produce a PT_LOAD. This is
  // how pinball2elf keeps checkpointed stack pages away from the system
  // loader (paper Fig. 4/5).
  W.addSection(".data.stack.stash", 0, 0x7ff0000000, bytesOf("SSSS"));

  auto R = ELFReader::parse(W.finalize());
  ASSERT_TRUE(R.hasValue()) << R.message();
  unsigned NumLoad = 0;
  for (const auto &Seg : R->segments())
    if (Seg.Type == PT_LOAD)
      ++NumLoad;
  EXPECT_EQ(NumLoad, 2u);
  // The stash section's data still round-trips through the file.
  const auto *Stash = R->findSection(".data.stack.stash");
  ASSERT_NE(Stash, nullptr);
  EXPECT_EQ(Stash->Data, bytesOf("SSSS"));
}

TEST(ELFWriter, LoadSegmentOffsetCongruentToVaddr) {
  ELFWriter W(ET_EXEC, EM_EG64);
  // Deliberately unaligned vaddr within the page.
  W.addSection(".text", SHF_ALLOC | SHF_EXECINSTR, 0x10378, bytesOf("Z"));
  auto R = ELFReader::parse(W.finalize());
  ASSERT_TRUE(R.hasValue()) << R.message();
  const auto *S = R->findSection(".text");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Offset % PageSize, S->Addr % PageSize)
      << "PT_LOAD requires offset === vaddr (mod page size)";
}

TEST(ELFWriter, NoBitsSection) {
  ELFWriter W(ET_EXEC, EM_EG64);
  W.addSection(".text", SHF_ALLOC | SHF_EXECINSTR, 0x10000, bytesOf("AAAA"));
  W.addNoBitsSection(".bss", SHF_ALLOC | SHF_WRITE, 0x30000, 0x2000);
  auto R = ELFReader::parse(W.finalize());
  ASSERT_TRUE(R.hasValue()) << R.message();
  const auto *S = R->findSection(".bss");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Type, static_cast<uint32_t>(SHT_NOBITS));
  EXPECT_EQ(S->Size, 0x2000u);
  EXPECT_TRUE(S->Data.empty());
  // The matching PT_LOAD must have filesz 0, memsz 0x2000.
  bool Found = false;
  for (const auto &Seg : R->segments())
    if (Seg.Type == PT_LOAD && Seg.VAddr == 0x30000) {
      Found = true;
      EXPECT_EQ(Seg.FileSize, 0u);
      EXPECT_EQ(Seg.MemSize, 0x2000u);
    }
  EXPECT_TRUE(Found);
}

TEST(ELFWriter, ManySectionsAndSymbols) {
  ELFWriter W(ET_EXEC, EM_EG64);
  // Pinball images decompose into many page-run sections; make sure a
  // large section count works.
  for (int I = 0; I < 200; ++I) {
    uint64_t Addr = 0x10000 + uint64_t(I) * 0x1000;
    std::vector<uint8_t> Data(16, static_cast<uint8_t>(I));
    unsigned Idx = W.addSection(".text.page" + std::to_string(I),
                                SHF_ALLOC | SHF_EXECINSTR, Addr, Data);
    W.addSymbol("page" + std::to_string(I), Addr, Idx, STB_LOCAL);
  }
  auto R = ELFReader::parse(W.finalize());
  ASSERT_TRUE(R.hasValue()) << R.message();
  EXPECT_EQ(R->symbols().size(), 200u);
  const auto *S = R->findSection(".text.page199");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Data[0], 199);
}

TEST(ELFWriter, LocalSymbolsPrecedeGlobals) {
  ELFWriter W(ET_EXEC, EM_EG64);
  unsigned T =
      W.addSection(".text", SHF_ALLOC | SHF_EXECINSTR, 0x10000, bytesOf("A"));
  W.addSymbol("g1", 1, T, STB_GLOBAL);
  W.addSymbol("l1", 2, T, STB_LOCAL);
  W.addSymbol("g2", 3, T, STB_GLOBAL);
  auto R = ELFReader::parse(W.finalize());
  ASSERT_TRUE(R.hasValue()) << R.message();
  ASSERT_EQ(R->symbols().size(), 3u);
  EXPECT_EQ(R->symbols()[0].Name, "l1");
}

TEST(ELFReader, RejectsGarbage) {
  std::vector<uint8_t> Junk = {1, 2, 3, 4};
  EXPECT_FALSE(ELFReader::parse(Junk).hasValue());

  std::vector<uint8_t> BadMagic(128, 0);
  BadMagic[0] = 0x7f;
  BadMagic[1] = 'N';
  EXPECT_FALSE(ELFReader::parse(BadMagic).hasValue());
}

TEST(ELFReader, RejectsTruncatedSectionTable) {
  ELFWriter W(ET_EXEC, EM_EG64);
  W.addSection(".text", SHF_ALLOC | SHF_EXECINSTR, 0x10000, bytesOf("AAAA"));
  std::vector<uint8_t> Image = W.finalize();
  Image.resize(Image.size() - 32); // chop into the section header table
  EXPECT_FALSE(ELFReader::parse(Image).hasValue());
}

TEST(ELFReader, OpenMissingFileFails) {
  EXPECT_FALSE(ELFReader::open("/nonexistent/elf").hasValue());
}

} // namespace
