//===- tests/tools/ToolsTest.cpp - CLI pipeline integration ---------------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// Drives the installed command-line tools (easm, evm, elogger, ereplay,
/// pinball_sysstate, pinball2elf, everify, esimpoint, esim, eworkload,
/// edisasm)
/// through the full Fig. 1 pipeline as subprocesses — the way a downstream
/// user would.
///
//===----------------------------------------------------------------------===//

#include "support/FileIO.h"
#include "support/Format.h"

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <cstring>

using namespace elfie;

#ifndef ELFIE_BIN_DIR
#define ELFIE_BIN_DIR ""
#endif

namespace {

struct CmdResult {
  int ExitCode = -1;
  std::string Output; // stdout + stderr
};

CmdResult runToolEnv(const std::string &Env, const std::string &CmdLine) {
  std::string Full =
      Env + (Env.empty() ? "" : " ") + std::string(ELFIE_BIN_DIR) + "/" +
      CmdLine + " 2>&1";
  FILE *P = popen(Full.c_str(), "r");
  CmdResult R;
  if (!P)
    return R;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
    R.Output.append(Buf, N);
  int Status = pclose(P);
  R.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  return R;
}

CmdResult runTool(const std::string &CmdLine) {
  return runToolEnv("", CmdLine);
}

class ToolPipeline : public testing::Test {
protected:
  void SetUp() override {
    // Unique per test: ctest runs the cases as parallel processes, and a
    // shared scratch directory makes them stomp each other's artifacts.
    Dir = testing::TempDir() + "/elfie_tools_" +
          testing::UnitTest::GetInstance()->current_test_info()->name();
    removeTree(Dir);
    createDirectories(Dir);
  }
  void TearDown() override { removeTree(Dir); }
  std::string Dir;
};

TEST_F(ToolPipeline, FullFigure1Flow) {
  // easm: assemble a program.
  std::string Src = R"(
_start:
  ldi r9, 0
loop:
  muli r2, r2, 13
  addi r2, r2, 7
  addi r9, r9, 1
  slti r3, r9, 50000
  bnez r3, loop
  la  r2, msg
  ldi r7, 2
  ldi r1, 1
  ldi r3, 3
  syscall
  ldi r7, 1
  ldi r1, 0
  syscall
  .data
msg: .ascii "ok\n"
)";
  ASSERT_FALSE(writeFileText(Dir + "/p.s", Src).isError());
  auto R = runTool(formatString("easm -o %s/p.elf %s/p.s", Dir.c_str(),
                                Dir.c_str()));
  ASSERT_EQ(R.ExitCode, 0) << R.Output;

  // edisasm: readable disassembly.
  R = runTool(formatString("edisasm %s/p.elf", Dir.c_str()));
  ASSERT_EQ(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("muli r2, r2, 13"), std::string::npos);

  // evm: run it.
  R = runTool(formatString("evm -stats %s/p.elf", Dir.c_str()));
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("ok"), std::string::npos);
  EXPECT_NE(R.Output.find("retired"), std::string::npos);

  // elogger: capture a fat pinball.
  R = runTool(formatString("elogger -region:start 50000 -region:length "
                           "100000 -log:fat 1 -o %s/r.pb %s/p.elf",
                           Dir.c_str(), Dir.c_str()));
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_TRUE(fileExists(Dir + "/r.pb/meta"));
  EXPECT_TRUE(fileExists(Dir + "/r.pb/t0.reg"));

  // ereplay: constrained + injection-less replay.
  R = runTool(formatString("ereplay %s/r.pb", Dir.c_str()));
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("retired 100000"), std::string::npos);
  R = runTool(
      formatString("ereplay -replay:injection 0 %s/r.pb", Dir.c_str()));
  ASSERT_EQ(R.ExitCode, 0) << R.Output;

  // pinball_sysstate: OS-state reconstruction.
  R = runTool(formatString("pinball_sysstate %s/r.pb", Dir.c_str()));
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_TRUE(fileExists(Dir + "/r.pb.sysstate/BRK.log"));

  // pinball2elf: layout dump, then both targets with the -verify
  // self-check enabled.
  R = runTool(formatString("pinball2elf -layout %s/r.pb", Dir.c_str()));
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("SECTIONS"), std::string::npos);
  R = runTool(formatString(
      "pinball2elf -perfle 1 -verify -o %s/r.elfie %s/r.pb", Dir.c_str(),
      Dir.c_str()));
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("0 error(s)"), std::string::npos);
  R = runTool(formatString(
      "pinball2elf -target guest -verify -o %s/r.gelfie %s/r.pb",
      Dir.c_str(), Dir.c_str()));
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("0 error(s)"), std::string::npos);

  // everify: the standalone verifier agrees, in text and in JSON.
  R = runTool(formatString("everify -pinball %s/r.pb %s/r.elfie",
                           Dir.c_str(), Dir.c_str()));
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("native ELFie"), std::string::npos);
  EXPECT_NE(R.Output.find("0 error(s)"), std::string::npos);
  R = runTool(formatString(
      "everify -json -markers 1 -pinball %s/r.pb %s/r.gelfie", Dir.c_str(),
      Dir.c_str()));
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("\"errors\":0"), std::string::npos);
  EXPECT_NE(R.Output.find("\"findings\":"), std::string::npos);

  // ecfg: static CFG + dataflow report over the same artifacts. The
  // captured region is clean (zero CODE.* errors); the region ends
  // mid-loop before the write executes, so the statically-reachable
  // file-io syscall is reported as unprovisioned — a warning.
  R = runTool(formatString("ecfg %s/r.pb", Dir.c_str()));
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("0 error(s)"), std::string::npos);
  R = runTool(formatString("ecfg -json -pinball %s/r.pb %s/r.elfie",
                           Dir.c_str(), Dir.c_str()));
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("\"schema\":1"), std::string::npos);
  EXPECT_NE(R.Output.find("\"errors\":0"), std::string::npos);
  EXPECT_NE(R.Output.find("\"provisioning_known\":true"),
            std::string::npos);
  EXPECT_NE(R.Output.find("\"unprovisioned\":[\"file-io\"]"),
            std::string::npos);
  R = runTool(formatString("ecfg -dot %s/r.gelfie", Dir.c_str()));
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("digraph cfg {"), std::string::npos);

  // The native ELFie runs on the hardware and reports its budget.
  {
    std::string Full = Dir + "/r.elfie 2>&1";
    FILE *P = popen(Full.c_str(), "r");
    ASSERT_NE(P, nullptr);
    std::string Out;
    char Buf[4096];
    size_t N;
    while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
      Out.append(Buf, N);
    int Status = pclose(P);
    EXPECT_EQ(WEXITSTATUS(Status), 0) << Out;
    EXPECT_NE(Out.find("retired 100000"), std::string::npos) << Out;
  }

  // evm consumes the guest ELFie (auto raw-entry), esim simulates it.
  R = runTool(
      formatString("evm -stats -maxinsns 100000 %s/r.gelfie", Dir.c_str()));
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  R = runTool(
      formatString("esim -config nehalem %s/r.gelfie", Dir.c_str()));
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("recognized as an ELFie"), std::string::npos);
  EXPECT_NE(R.Output.find("IPC"), std::string::npos);

  // esim pinball front-end.
  R = runTool(formatString("esim -config nehalem -pinball %s/r.pb",
                           Dir.c_str()));
  ASSERT_EQ(R.ExitCode, 0) << R.Output;

  // esimpoint region selection on the original program.
  R = runTool(formatString(
      "esimpoint -slicesize 20000 -maxk 5 %s/p.elf", Dir.c_str()));
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("regions from"), std::string::npos);
}

TEST_F(ToolPipeline, WorkloadTool) {
  auto R = runTool("eworkload -list");
  ASSERT_EQ(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("gcc_like"), std::string::npos);
  EXPECT_NE(R.Output.find("omp_speed"), std::string::npos);

  R = runTool(formatString("eworkload -input test -o %s/w.elf xz_like",
                           Dir.c_str()));
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  R = runTool(formatString("evm %s/w.elf", Dir.c_str()));
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
}

TEST_F(ToolPipeline, ErrorPaths) {
  auto R = runTool("evm /nonexistent/file.elf");
  EXPECT_EQ(R.ExitCode, 1);
  EXPECT_NE(R.Output.find("EFAULT."), std::string::npos) << R.Output;
  R = runTool("ereplay /nonexistent/pinball");
  EXPECT_EQ(R.ExitCode, 1);
  EXPECT_NE(R.Output.find("EFAULT."), std::string::npos) << R.Output;
  R = runTool(formatString("pinball2elf -target bogus %s", Dir.c_str()));
  EXPECT_NE(R.ExitCode, 0);
  R = runTool("everify /nonexistent/file.elfie");
  EXPECT_EQ(R.ExitCode, 1);
  R = runTool("ecfg /nonexistent/file.elfie");
  EXPECT_EQ(R.ExitCode, 1);
  R = runTool("esim -config unknown-config whatever");
  EXPECT_NE(R.ExitCode, 0);

  // The documented exit-code contract: 2 = usage, everywhere.
  for (const char *Usage :
       {"everify", "evm", "ereplay", "elogger", "pinball2elf",
        "pinball_sysstate", "esim", "easm", "efault", "ecfg"}) {
    R = runTool(Usage);
    EXPECT_EQ(R.ExitCode, 2) << Usage << ": " << R.Output;
  }
}

TEST_F(ToolPipeline, FaultInjectionAndFailClosedPipeline) {
  // Build a small pinball to corrupt.
  std::string Src = R"(
_start:
  ldi r9, 0
loop:
  addi r9, r9, 1
  slti r3, r9, 30000
  bnez r3, loop
  ldi r7, 1
  ldi r1, 0
  syscall
)";
  ASSERT_FALSE(writeFileText(Dir + "/p.s", Src).isError());
  auto R = runTool(formatString("easm -o %s/p.elf %s/p.s", Dir.c_str(),
                                Dir.c_str()));
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  R = runTool(formatString("elogger -region:start 5000 -region:length "
                           "20000 -log:fat 1 -o %s/r.pb %s/p.elf",
                           Dir.c_str(), Dir.c_str()));
  ASSERT_EQ(R.ExitCode, 0) << R.Output;

  // ELFIE_FAULT_SPEC kill: a logger killed mid-write must leave nothing
  // at the destination (the staged save never published).
  R = runToolEnv("ELFIE_FAULT_SPEC=write:3:kill",
                 formatString("elogger -region:start 5000 -region:length "
                              "20000 -log:fat 1 -o %s/k.pb %s/p.elf",
                              Dir.c_str(), Dir.c_str()));
  EXPECT_EQ(R.ExitCode, 97) << R.Output;
  EXPECT_FALSE(fileExists(Dir + "/k.pb/meta"));

  // ELFIE_FAULT_SPEC enospc: a failed write surfaces as a coded error.
  R = runToolEnv("ELFIE_FAULT_SPEC=write:1:enospc",
                 formatString("elogger -region:start 5000 -region:length "
                              "20000 -log:fat 1 -o %s/e.pb %s/p.elf",
                              Dir.c_str(), Dir.c_str()));
  EXPECT_EQ(R.ExitCode, 1);
  EXPECT_NE(R.Output.find("EFAULT.IO.WRITE"), std::string::npos)
      << R.Output;
  EXPECT_FALSE(fileExists(Dir + "/e.pb/meta"));

  // A malformed spec is a usage error, not a silent no-op.
  R = runToolEnv("ELFIE_FAULT_SPEC=write:1:melt",
                 formatString("elogger -o %s/x.pb %s/p.elf", Dir.c_str(),
                              Dir.c_str()));
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Output.find("EFAULT.SPEC.KIND"), std::string::npos)
      << R.Output;

  // efault drives seeded corruptions through every consumer and reports
  // a fail-closed verdict in JSON.
  R = runTool(formatString("efault -runs 6 -seed 11 -json -scratch "
                           "%s/scratch %s/r.pb",
                           Dir.c_str(), Dir.c_str()));
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("\"crashes\":0"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("\"hangs\":0"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("\"failures\":0"), std::string::npos)
      << R.Output;

  // And against an emitted ELFie.
  R = runTool(formatString("pinball2elf -o %s/r.elfie %s/r.pb",
                           Dir.c_str(), Dir.c_str()));
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  R = runTool(formatString("efault -runs 6 -seed 21 -json -scratch "
                           "%s/scratch %s/r.elfie",
                           Dir.c_str(), Dir.c_str()));
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("\"failures\":0"), std::string::npos)
      << R.Output;
}

/// Extracts the line of \p Out containing \p Key ("" when absent).
static std::string lineWith(const std::string &Out, const std::string &Key) {
  size_t P = Out.find(Key);
  if (P == std::string::npos)
    return std::string();
  size_t B = Out.rfind('\n', P);
  B = (B == std::string::npos) ? 0 : B + 1;
  size_t E = Out.find('\n', P);
  return Out.substr(B, E == std::string::npos ? Out.size() - B : E - B);
}

TEST_F(ToolPipeline, WarmupCheckpointCliFlow) {
  // Stage a guest ELFie through the normal pipeline.
  std::string Src = R"(
_start:
  ldi r9, 0
loop:
  muli r2, r2, 13
  addi r2, r2, 7
  addi r9, r9, 1
  slti r3, r9, 60000
  bnez r3, loop
  ldi r7, 1
  ldi r1, 0
  syscall
)";
  ASSERT_FALSE(writeFileText(Dir + "/p.s", Src).isError());
  auto R = runTool(formatString("easm -o %s/p.elf %s/p.s", Dir.c_str(),
                                Dir.c_str()));
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  R = runTool(formatString("elogger -region:start 50000 -region:length "
                           "100000 -log:fat 1 -o %s/r.pb %s/p.elf",
                           Dir.c_str(), Dir.c_str()));
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  R = runTool(formatString(
      "pinball2elf -target guest -o %s/r.gelfie %s/r.pb", Dir.c_str(),
      Dir.c_str()));
  ASSERT_EQ(R.ExitCode, 0) << R.Output;

  // -warmup-save and -warmup-load are mutually exclusive: usage error.
  R = runTool(formatString(
      "esim -config nehalem -warmup 20000 -warmup-save -warmup-load "
      "%s/r.gelfie",
      Dir.c_str()));
  EXPECT_EQ(R.ExitCode, 2) << R.Output;

  // Cold reference run (no checkpoint involved).
  R = runTool(formatString("esim -config nehalem -warmup 20000 %s/r.gelfie",
                           Dir.c_str()));
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  std::string ColdIpc = lineWith(R.Output, "IPC");
  ASSERT_FALSE(ColdIpc.empty()) << R.Output;

  // Save: warms, writes the sidecar at the default <input>.esimstate
  // path, and finishes the detailed phase as usual.
  R = runTool(formatString(
      "esim -config nehalem -warmup 20000 -warmup-save %s/r.gelfie",
      Dir.c_str()));
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("warmup checkpoint saved to"), std::string::npos)
      << R.Output;
  ASSERT_TRUE(fileExists(Dir + "/r.gelfie.esimstate"));
  EXPECT_EQ(lineWith(R.Output, "IPC"), ColdIpc) << R.Output;

  // Load: skips re-warming and reproduces the cold run's stats exactly.
  R = runTool(formatString(
      "esim -config nehalem -warmup-load %s/r.gelfie", Dir.c_str()));
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("warmup checkpoint loaded from"),
            std::string::npos)
      << R.Output;
  EXPECT_EQ(lineWith(R.Output, "IPC"), ColdIpc) << R.Output;

  // An explicit -warmup that disagrees with the sidecar fails closed.
  R = runTool(formatString(
      "esim -config nehalem -warmup 12345 -warmup-load %s/r.gelfie",
      Dir.c_str()));
  EXPECT_EQ(R.ExitCode, 1);
  EXPECT_NE(R.Output.find("EFAULT.SIMSTATE.BUDGET"), std::string::npos)
      << R.Output;

  // A flipped byte anywhere in the sidecar fails closed with a coded
  // SIMSTATE rejection, never a silent wrong-stats resume.
  auto Bytes = readFileBytes(Dir + "/r.gelfie.esimstate");
  ASSERT_TRUE(static_cast<bool>(Bytes));
  (*Bytes)[Bytes->size() / 2] ^= 0x01;
  ASSERT_FALSE(writeFileAtomic(Dir + "/r.gelfie.esimstate", Bytes->data(),
                               Bytes->size())
                   .isError());
  R = runTool(formatString(
      "esim -config nehalem -warmup-load %s/r.gelfie", Dir.c_str()));
  EXPECT_EQ(R.ExitCode, 1);
  EXPECT_NE(R.Output.find("EFAULT.SIMSTATE."), std::string::npos)
      << R.Output;
}

TEST_F(ToolPipeline, SimStateFaultSweep) {
  // Stage an ELFie + saved warmup sidecar, then let efault mutate the
  // sidecar under both consumers (esim -warmup-load, everify -simstate).
  std::string Src = R"(
_start:
  ldi r9, 0
loop:
  addi r9, r9, 1
  slti r3, r9, 60000
  bnez r3, loop
  ldi r7, 1
  ldi r1, 0
  syscall
)";
  ASSERT_FALSE(writeFileText(Dir + "/p.s", Src).isError());
  auto R = runTool(formatString("easm -o %s/p.elf %s/p.s", Dir.c_str(),
                                Dir.c_str()));
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  R = runTool(formatString("elogger -region:start 30000 -region:length "
                           "60000 -log:fat 1 -o %s/r.pb %s/p.elf",
                           Dir.c_str(), Dir.c_str()));
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  R = runTool(formatString(
      "pinball2elf -target guest -o %s/g.elfie %s/r.pb", Dir.c_str(),
      Dir.c_str()));
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  R = runTool(formatString(
      "esim -config nehalem -warmup 15000 -warmup-save %s/g.elfie",
      Dir.c_str()));
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  ASSERT_TRUE(fileExists(Dir + "/g.elfie.esimstate"));

#ifdef ELFIE_SLOW_TESTS
  const int Runs = 200;
#else
  const int Runs = 20;
#endif
  // Every mutation must be rejected with a coded EFAULT.SIMSTATE.* error:
  // zero benign acceptances (a corrupt checkpoint silently resuming would
  // poison downstream stats), zero crashes/hangs, and the rejection
  // taxonomy populated across more than one class.
  R = runTool(formatString("efault -runs %d -seed 7 -json -scratch "
                           "%s/scratch %s/g.elfie.esimstate",
                           Runs, Dir.c_str(), Dir.c_str()));
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("\"kind\":\"simstate\""), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("\"crashes\":0"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("\"hangs\":0"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("\"failures\":0"), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("\"benign\":0"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("\"simstate\":{"), std::string::npos)
      << R.Output;
  // With two consumers per run, every mutation is rejected twice.
  EXPECT_NE(R.Output.find(formatString("\"rejections\":%d", Runs * 2)),
            std::string::npos)
      << R.Output;
  // More than one taxonomy class fires under the seeded mutation mix.
  int Classes = 0;
  for (const char *Tag :
       {"\"magic\":", "\"version\":", "\"truncated\":", "\"seal\":",
        "\"config\":", "\"input\":", "\"component\":", "\"budget\":"}) {
    std::string L = lineWith(R.Output, "\"simstate\":{");
    size_t P = L.find(Tag);
    if (P != std::string::npos && L[P + std::strlen(Tag)] != '0')
      ++Classes;
  }
  EXPECT_GE(Classes, 2) << R.Output;
}

} // namespace
