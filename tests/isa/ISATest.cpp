//===- tests/isa/ISATest.cpp - EG64 encode/decode properties --------------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "isa/ISA.h"

#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace elfie;
using namespace elfie::isa;

namespace {

TEST(ISA, EncodeDecodeRoundTrip) {
  Inst I;
  I.Op = Opcode::Add;
  I.Rd = 1;
  I.Rs1 = 2;
  I.Rs2 = 3;
  I.Imm = -12345;
  Inst Out;
  ASSERT_TRUE(decode(encode(I), Out));
  EXPECT_EQ(I, Out);
}

TEST(ISA, DecodeRejectsUnknownOpcode) {
  Inst Out;
  EXPECT_FALSE(decode(uint64_t(0xff), Out));
  EXPECT_FALSE(decode(uint64_t(0x06), Out)); // gap after Pause
}

TEST(ISA, DecodeRejectsBadRegisters) {
  Inst I;
  I.Op = Opcode::Add;
  I.Rd = 16; // out of range
  Inst Out;
  EXPECT_FALSE(decode(encode(I), Out));
}

TEST(ISA, MarkerAllowsKindInRdField) {
  Inst I;
  I.Op = Opcode::Marker;
  I.Rd = 200; // marker kind field, not a register
  I.Imm = 42;
  Inst Out;
  EXPECT_TRUE(decode(encode(I), Out));
  EXPECT_EQ(Out.Rd, 200);
}

TEST(ISA, OpcodeNamesRoundTrip) {
  // Every named opcode must map back to itself through the mnemonic table.
  for (unsigned V = 0; V < 256; ++V) {
    if (!isValidOpcode(static_cast<uint8_t>(V)))
      continue;
    Opcode Op = static_cast<Opcode>(V);
    std::string Name = opcodeName(Op);
    ASSERT_NE(Name, "<bad>");
    Opcode Back;
    ASSERT_TRUE(opcodeFromName(Name, Back)) << Name;
    EXPECT_EQ(Back, Op) << Name;
  }
}

TEST(ISA, Classification) {
  EXPECT_TRUE(isBranch(Opcode::Beq));
  EXPECT_FALSE(isBranch(Opcode::Jmp));
  EXPECT_TRUE(isControlFlow(Opcode::Jalr));
  EXPECT_TRUE(isControlFlow(Opcode::Halt));
  EXPECT_FALSE(isControlFlow(Opcode::Add));
  EXPECT_TRUE(isLoad(Opcode::Ld4s));
  EXPECT_TRUE(isLoad(Opcode::Fld));
  EXPECT_TRUE(isStore(Opcode::Fst));
  EXPECT_TRUE(isAtomic(Opcode::Cas));
  EXPECT_TRUE(isMemoryAccess(Opcode::AmoAdd));
  EXPECT_FALSE(isMemoryAccess(Opcode::Mov));
  EXPECT_TRUE(isFloatingPoint(Opcode::Fadd));
  EXPECT_TRUE(isFloatingPoint(Opcode::FmvToI));
  EXPECT_FALSE(isFloatingPoint(Opcode::Add));
}

TEST(ISA, RegisterNames) {
  EXPECT_EQ(gprName(0), "r0");
  EXPECT_EQ(gprName(15), "sp");
  EXPECT_EQ(gprName(14), "lr");
  EXPECT_EQ(gprName(7), "r7");
  EXPECT_EQ(fprName(3), "f3");
}

TEST(ISA, DisassembleBasics) {
  Inst I;
  I.Op = Opcode::Addi;
  I.Rd = 1;
  I.Rs1 = 2;
  I.Imm = -4;
  EXPECT_EQ(disassemble(I, 0x10000), "addi r1, r2, -4");

  I = Inst();
  I.Op = Opcode::Beq;
  I.Rs1 = 3;
  I.Rs2 = 0;
  I.Imm = 16;
  EXPECT_EQ(disassemble(I, 0x10000), "beq r3, r0, 0x10010");

  I = Inst();
  I.Op = Opcode::Ld8;
  I.Rd = 4;
  I.Rs1 = 15;
  I.Imm = 8;
  EXPECT_EQ(disassemble(I, 0), "ld8 r4, 8(sp)");

  I = Inst();
  I.Op = Opcode::Fadd;
  I.Rd = 1;
  I.Rs1 = 2;
  I.Rs2 = 3;
  EXPECT_EQ(disassemble(I, 0), "fadd f1, f2, f3");
}

// Property: random valid instructions survive an encode/decode round trip.
class ISARoundTrip : public testing::TestWithParam<uint64_t> {};

TEST_P(ISARoundTrip, RandomInstructions) {
  RNG R(GetParam());
  // Collect the valid opcode values once.
  std::vector<uint8_t> Valid;
  for (unsigned V = 0; V < 256; ++V)
    if (isValidOpcode(static_cast<uint8_t>(V)))
      Valid.push_back(static_cast<uint8_t>(V));

  for (int N = 0; N < 2000; ++N) {
    Inst I;
    I.Op = static_cast<Opcode>(Valid[R.nextBelow(Valid.size())]);
    I.Rd = static_cast<uint8_t>(R.nextBelow(NumGPRs));
    I.Rs1 = static_cast<uint8_t>(R.nextBelow(NumGPRs));
    I.Rs2 = static_cast<uint8_t>(R.nextBelow(NumGPRs));
    I.Imm = static_cast<int32_t>(R.next());
    Inst Out;
    ASSERT_TRUE(decode(encode(I), Out));
    EXPECT_EQ(I, Out);
    // Disassembly of a valid instruction never says "<bad>".
    EXPECT_EQ(disassemble(Out, 0x10000).find("<bad>"), std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ISARoundTrip,
                         testing::Values(1ull, 42ull, 0xdeadbeefull));

} // namespace
