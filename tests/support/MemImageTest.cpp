//===- tests/support/MemImageTest.cpp -------------------------------------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/FileIO.h"
#include "support/MappedFile.h"
#include "support/MemImage.h"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

using namespace elfie;

namespace {

std::vector<uint8_t> pattern(size_t N, uint8_t Seed) {
  std::vector<uint8_t> V(N);
  for (size_t I = 0; I < N; ++I)
    V[I] = static_cast<uint8_t>(Seed + I);
  return V;
}

TEST(MemImage, EmptyAndZeroLengthRuns) {
  MemImage Img;
  EXPECT_TRUE(Img.empty());
  EXPECT_EQ(Img.runCount(), 0u);
  EXPECT_EQ(Img.totalBytes(), 0u);

  uint8_t B = 7;
  Img.addRun(0x1000, 7, &B, 0); // zero-length: ignored
  EXPECT_TRUE(Img.empty());
  EXPECT_EQ(Img.findRun(0x1000), nullptr);

  uint8_t Out;
  EXPECT_TRUE(Img.read(0x1000, &Out, 0)); // empty read always succeeds
  EXPECT_FALSE(Img.read(0x1000, &Out, 1));
}

TEST(MemImage, AdjacentRunsStayDistinct) {
  MemImage Img;
  auto A = pattern(16, 0x10);
  auto B = pattern(16, 0x40);
  Img.addOwnedRun(0x1000, 5, A.data(), A.size());
  Img.addOwnedRun(0x1010, 7, B.data(), B.size()); // exactly adjacent
  EXPECT_EQ(Img.runCount(), 2u);
  EXPECT_EQ(Img.totalBytes(), 32u);

  // A read spanning the seam sees both extents' bytes.
  uint8_t Out[32];
  ASSERT_TRUE(Img.read(0x1000, Out, sizeof(Out)));
  EXPECT_EQ(0, std::memcmp(Out, A.data(), 16));
  EXPECT_EQ(0, std::memcmp(Out + 16, B.data(), 16));

  const MemImage::Run *R = Img.findRun(0x100f);
  ASSERT_NE(R, nullptr);
  EXPECT_EQ(R->VAddr, 0x1000u);
  R = Img.findRun(0x1010);
  ASSERT_NE(R, nullptr);
  EXPECT_EQ(R->VAddr, 0x1010u);
  EXPECT_EQ(R->Perm, 7);
  EXPECT_EQ(Img.findRun(0x1020), nullptr);
  EXPECT_EQ(Img.findRun(0xfff), nullptr);
}

TEST(MemImage, OverlappingLaterInsertionWins) {
  MemImage Img;
  auto Base = pattern(0x100, 0);
  auto Mid = pattern(0x10, 0x80);
  Img.addOwnedRun(0x2000, 5, Base.data(), Base.size());
  // Overwrite the middle: the old extent splits into two around the new one.
  Img.addOwnedRun(0x2040, 7, Mid.data(), Mid.size());
  EXPECT_EQ(Img.runCount(), 3u);
  EXPECT_EQ(Img.totalBytes(), 0x100u);

  uint8_t Out[0x100];
  ASSERT_TRUE(Img.read(0x2000, Out, sizeof(Out)));
  EXPECT_EQ(0, std::memcmp(Out, Base.data(), 0x40));
  EXPECT_EQ(0, std::memcmp(Out + 0x40, Mid.data(), 0x10));
  EXPECT_EQ(0, std::memcmp(Out + 0x50, Base.data() + 0x50, 0xb0));

  // Runs come back in vaddr order with the overlap carved out.
  std::vector<std::pair<uint64_t, uint64_t>> Got;
  Img.forEachRun([&](const MemImage::Run &R) {
    Got.push_back({R.VAddr, R.Size});
  });
  ASSERT_EQ(Got.size(), 3u);
  std::pair<uint64_t, uint64_t> Want[] = {
      {0x2000, 0x40}, {0x2040, 0x10}, {0x2050, 0xb0}};
  EXPECT_EQ(Got[0], Want[0]);
  EXPECT_EQ(Got[1], Want[1]);
  EXPECT_EQ(Got[2], Want[2]);

  // Full overwrite replaces everything.
  auto Full = pattern(0x100, 0x33);
  Img.addOwnedRun(0x2000, 5, Full.data(), Full.size());
  EXPECT_EQ(Img.runCount(), 1u);
  ASSERT_TRUE(Img.read(0x2000, Out, sizeof(Out)));
  EXPECT_EQ(0, std::memcmp(Out, Full.data(), 0x100));
}

TEST(MemImage, TopOfAddressSpaceClamps) {
  MemImage Img;
  auto Bytes = pattern(0x20, 1);
  // A run that would wrap past 2^64 is clamped at the top byte.
  Img.addOwnedRun(UINT64_MAX - 0xf, 5, Bytes.data(), Bytes.size());
  const MemImage::Run *R = Img.findRun(UINT64_MAX);
  ASSERT_NE(R, nullptr);
  EXPECT_EQ(R->VAddr, UINT64_MAX - 0xf);
  EXPECT_EQ(R->Size, 0x10u);

  uint8_t Out[0x10];
  ASSERT_TRUE(Img.read(UINT64_MAX - 0xf, Out, 0x10));
  EXPECT_EQ(0, std::memcmp(Out, Bytes.data(), 0x10));
  // Reads that would themselves wrap fail instead of wrapping.
  EXPECT_FALSE(Img.read(UINT64_MAX, Out, 2));
}

TEST(MemImage, UnalignedExtentsAndGapDetection) {
  MemImage Img;
  auto A = pattern(5, 0xa0); // deliberately not page- or word-sized
  auto B = pattern(3, 0xb0);
  Img.addOwnedRun(0x1003, 5, A.data(), A.size()); // [0x1003, 0x1008)
  Img.addOwnedRun(0x100a, 5, B.data(), B.size()); // [0x100a, 0x100d)

  uint8_t Out[8];
  ASSERT_TRUE(Img.read(0x1003, Out, 5));
  EXPECT_EQ(0, std::memcmp(Out, A.data(), 5));
  // The two-byte hole at [0x1008, 0x100a) fails any crossing access.
  EXPECT_FALSE(Img.read(0x1003, Out, 8));
  EXPECT_FALSE(Img.read(0x1008, Out, 1));
  uint8_t W = 0xff;
  EXPECT_FALSE(Img.write(0x1007, &W, 4));
  // The failed write must not have mutated the covered prefix.
  ASSERT_TRUE(Img.read(0x1007, Out, 1));
  EXPECT_EQ(Out[0], A[4]);
}

TEST(MemImage, CowIsolatesCopies) {
  MemImage A;
  auto Bytes = pattern(0x40, 0x11);
  A.addOwnedRun(0x3000, 5, Bytes.data(), Bytes.size());

  MemImage B = A; // shares the buffer
  uint8_t V = 0xee;
  ASSERT_TRUE(B.write(0x3010, &V, 1));

  uint8_t FromA = 0, FromB = 0;
  ASSERT_TRUE(A.read(0x3010, &FromA, 1));
  ASSERT_TRUE(B.read(0x3010, &FromB, 1));
  EXPECT_EQ(FromA, Bytes[0x10]); // A never sees B's store
  EXPECT_EQ(FromB, 0xee);

  EXPECT_EQ(A.counters().CowFaults, 0u);
  EXPECT_EQ(B.counters().CowFaults, 1u);
  EXPECT_EQ(B.counters().DirtyBytes, 0x40u);

  // A second write to the now-private extent must not fault again.
  ASSERT_TRUE(B.write(0x3011, &V, 1));
  EXPECT_EQ(B.counters().CowFaults, 1u);
  EXPECT_EQ(B.counters().DirtyBytes, 0x40u);
}

TEST(MemImage, BorrowedRunsCowOnWrite) {
  auto Bytes = pattern(0x20, 0x50);
  MemImage Img;
  Img.addRun(0x4000, 5, Bytes.data(), Bytes.size()); // borrowed
  uint8_t V = 0x99;
  ASSERT_TRUE(Img.write(0x4005, &V, 1));
  // The borrowed backing stays untouched; the image sees the new byte.
  EXPECT_EQ(Bytes[5], 0x55);
  uint8_t Out = 0;
  ASSERT_TRUE(Img.read(0x4005, &Out, 1));
  EXPECT_EQ(Out, 0x99);
  EXPECT_EQ(Img.counters().CowFaults, 1u);
}

TEST(MemImage, AdoptMergesRunsAndOwnership) {
  MemImage A, B;
  auto X = pattern(8, 1);
  auto Y = pattern(8, 9);
  A.addOwnedRun(0x100, 5, X.data(), X.size());
  B.addOwnedRun(0x108, 5, Y.data(), Y.size());
  A.adopt(B);
  EXPECT_EQ(A.runCount(), 2u);
  uint8_t Out[16];
  ASSERT_TRUE(A.read(0x100, Out, 16));
  EXPECT_EQ(0, std::memcmp(Out, X.data(), 8));
  EXPECT_EQ(0, std::memcmp(Out + 8, Y.data(), 8));
}

std::string tempPath(const std::string &Name) {
  return testing::TempDir() + "/elfie_mmap_" + Name;
}

TEST(MappedFile, ReadOnlyMapsFileBytes) {
  std::string Path = tempPath("ro");
  auto Bytes = pattern(8192, 0x42);
  ASSERT_FALSE(writeFile(Path, Bytes.data(), Bytes.size()).isError());

  auto MF = MappedFile::open(Path);
  ASSERT_TRUE(MF.hasValue()) << MF.message();
  EXPECT_TRUE(MF->isMapped());
  ASSERT_EQ(MF->size(), Bytes.size());
  EXPECT_EQ(0, std::memcmp(MF->data(), Bytes.data(), Bytes.size()));
  EXPECT_EQ(MF->mutableData(), nullptr); // read-only view
  EXPECT_EQ(MF->path(), Path);
  removeFile(Path);
}

TEST(MappedFile, PrivateCowWritesNeverReachTheFile) {
  std::string Path = tempPath("cow");
  auto Bytes = pattern(4096, 0x10);
  ASSERT_FALSE(writeFile(Path, Bytes.data(), Bytes.size()).isError());

  auto MF = MappedFile::open(Path, MappedFile::Mode::PrivateCow);
  ASSERT_TRUE(MF.hasValue()) << MF.message();
  ASSERT_NE(MF->mutableData(), nullptr);
  MF->mutableData()[0] = 0xff;
  EXPECT_EQ(MF->data()[0], 0xff);

  auto After = readFileBytes(Path);
  ASSERT_TRUE(After.hasValue());
  EXPECT_EQ((*After)[0], Bytes[0]); // the store stayed private
  removeFile(Path);
}

TEST(MappedFile, MissingFileKeepsErrorTaxonomy) {
  auto MF = MappedFile::open(tempPath("does_not_exist"));
  ASSERT_FALSE(MF.hasValue());
  EXPECT_NE(MF.message().find("cannot open"), std::string::npos);
  EXPECT_EQ(MF.takeError().code(), "EFAULT.IO.OPEN");
}

TEST(MappedFile, EmptyFileFallsBackToOwnedBuffer) {
  std::string Path = tempPath("empty");
  ASSERT_FALSE(writeFile(Path, nullptr, 0).isError());
  auto MF = MappedFile::open(Path);
  ASSERT_TRUE(MF.hasValue()) << MF.message();
  EXPECT_FALSE(MF->isMapped());
  EXPECT_EQ(MF->size(), 0u);
  removeFile(Path);
}

TEST(MappedFile, MoveTransfersTheMapping) {
  std::string Path = tempPath("move");
  auto Bytes = pattern(4096, 3);
  ASSERT_FALSE(writeFile(Path, Bytes.data(), Bytes.size()).isError());
  auto MF = MappedFile::open(Path);
  ASSERT_TRUE(MF.hasValue());
  const uint8_t *P = MF->data();
  MappedFile Moved = MF.takeValue();
  EXPECT_EQ(Moved.data(), P); // the mapping itself moved, not the bytes
  EXPECT_EQ(Moved.size(), Bytes.size());
  removeFile(Path);
}

/// The fault seam: with a hook installed, open() must route through
/// readFileBytes so campaigns still see every load.
class CountingHook : public IOFaultHook {
public:
  int Reads = 0;
  Error onWrite(const std::string &, std::vector<uint8_t> &) override {
    return Error::success();
  }
  Error onRead(const std::string &, std::vector<uint8_t> &Data) override {
    ++Reads;
    if (!Data.empty())
      Data[0] = 0xcc; // prove the hook's mutation is visible to the caller
    return Error::success();
  }
};

TEST(MappedFile, FaultHookSeesOpensAndCanMutate) {
  std::string Path = tempPath("hook");
  auto Bytes = pattern(64, 0);
  ASSERT_FALSE(writeFile(Path, Bytes.data(), Bytes.size()).isError());

  CountingHook Hook;
  setIOFaultHook(&Hook);
  auto MF = MappedFile::open(Path);
  setIOFaultHook(nullptr);

  ASSERT_TRUE(MF.hasValue()) << MF.message();
  EXPECT_EQ(Hook.Reads, 1);
  EXPECT_FALSE(MF->isMapped()); // owned fallback under the hook
  ASSERT_EQ(MF->size(), Bytes.size());
  EXPECT_EQ(MF->data()[0], 0xcc);
  removeFile(Path);
}

} // namespace
