//===- tests/support/WatchdogTest.cpp -------------------------------------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Subprocess.h"
#include "support/Watchdog.h"

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace elfie;

namespace {

TEST(Watchdog, ScalingRule) {
  // Floor for tiny budgets; linear at 50M instr/s; capped at 600s.
  EXPECT_EQ(scaledWatchdogSeconds(0), 10u);
  EXPECT_EQ(scaledWatchdogSeconds(1000), 10u);
  EXPECT_EQ(scaledWatchdogSeconds(100000000ull), 12u);
  EXPECT_EQ(scaledWatchdogSeconds(UINT64_MAX), 600u);
  // Interpreting consumers pass a lower rate.
  EXPECT_EQ(scaledWatchdogSeconds(2000000ull, 2000000ull), 11u);
  EXPECT_EQ(scaledWatchdogSeconds(UINT64_MAX, 2000000ull), 600u);
}

TEST(Watchdog, DisarmClearsAlarmAndRestoresDisposition) {
  armBudgetWatchdog("test", 1000);
  EXPECT_TRUE(budgetWatchdogArmed());
  disarmBudgetWatchdog();
  EXPECT_FALSE(budgetWatchdogArmed());
  // No alarm may still be pending (satellite: a fast tool run must not
  // leak a pending SIGALRM into a harness that embeds it)...
  EXPECT_EQ(alarm(0), 0u);
  // ...and SIGALRM must be back at the default disposition.
  struct sigaction SA;
  ASSERT_EQ(sigaction(SIGALRM, nullptr, &SA), 0);
  EXPECT_EQ(SA.sa_handler, SIG_DFL);
}

TEST(Watchdog, ArmZeroSecondsIsNoOp) {
  armBudgetWatchdog("test", 0);
  EXPECT_FALSE(budgetWatchdogArmed());
  EXPECT_EQ(alarm(0), 0u);
}

TEST(Watchdog, FiresAsExit125) {
  // The firing path calls _exit from a signal handler; exercise it in a
  // forked child so the test process survives.
  pid_t Pid = fork();
  ASSERT_GE(Pid, 0);
  if (Pid == 0) {
    armBudgetWatchdog("watchdog-test", 1);
    for (;;)
      pause();
  }
  int Status = 0;
  ASSERT_EQ(waitpid(Pid, &Status, 0), Pid);
  ASSERT_TRUE(WIFEXITED(Status));
  EXPECT_EQ(WEXITSTATUS(Status), ExitWatchdog);
}

TEST(Subprocess, SpawnRedirectsAndEnv) {
  std::string Dir = testing::TempDir() + "/elfie_subproc";
  ::mkdir(Dir.c_str(), 0755);
  SpawnSpec Spec;
  Spec.Argv = {"/bin/sh", "-c", "echo out-$SUB_TEST_VAR; echo err >&2"};
  Spec.ExtraEnv.emplace_back("SUB_TEST_VAR", "42");
  Spec.StdoutPath = Dir + "/out";
  Spec.StderrPath = Dir + "/err";
  auto Pid = spawnProcess(Spec);
  ASSERT_TRUE(Pid.hasValue()) << Pid.message();
  auto W = waitProcess(*Pid);
  ASSERT_TRUE(W.hasValue());
  EXPECT_TRUE(W->Exited);
  EXPECT_EQ(W->ExitCode, 0);

  FILE *F = fopen((Dir + "/out").c_str(), "r");
  ASSERT_NE(F, nullptr);
  char Buf[64] = {0};
  ASSERT_NE(fgets(Buf, sizeof(Buf), F), nullptr);
  fclose(F);
  EXPECT_STREQ(Buf, "out-42\n");
}

TEST(Subprocess, UnsetEnvStripsVariable) {
  ASSERT_EQ(setenv("SUB_TEST_STRIP", "leak", 1), 0);
  std::string Out = testing::TempDir() + "/elfie_subproc_strip";
  SpawnSpec Spec;
  Spec.Argv = {"/bin/sh", "-c", "echo [$SUB_TEST_STRIP]"};
  Spec.UnsetEnv.push_back("SUB_TEST_STRIP");
  Spec.StdoutPath = Out;
  auto Pid = spawnProcess(Spec);
  ASSERT_TRUE(Pid.hasValue()) << Pid.message();
  auto W = waitProcess(*Pid);
  ASSERT_TRUE(W.hasValue());
  unsetenv("SUB_TEST_STRIP");
  FILE *F = fopen(Out.c_str(), "r");
  ASSERT_NE(F, nullptr);
  char Buf[64] = {0};
  ASSERT_NE(fgets(Buf, sizeof(Buf), F), nullptr);
  fclose(F);
  EXPECT_STREQ(Buf, "[]\n");
}

TEST(Subprocess, ExecFailureExits124) {
  SpawnSpec Spec;
  Spec.Argv = {"/no/such/binary/anywhere"};
  auto Pid = spawnProcess(Spec);
  ASSERT_TRUE(Pid.hasValue()) << Pid.message();
  auto W = waitProcess(*Pid);
  ASSERT_TRUE(W.hasValue());
  EXPECT_TRUE(W->Exited);
  EXPECT_EQ(W->ExitCode, ExitExecFailure);
}

TEST(Subprocess, KillProcessTreeTakesOutChildren) {
  // A shell that forks a sleeping child: the group kill must reach both.
  SpawnSpec Spec;
  Spec.Argv = {"/bin/sh", "-c", "sleep 30 & wait"};
  auto Pid = spawnProcess(Spec);
  ASSERT_TRUE(Pid.hasValue()) << Pid.message();
  // Give the shell a moment to fork.
  ::usleep(100000);
  auto Poll = pollProcess(*Pid);
  ASSERT_TRUE(Poll.hasValue());
  EXPECT_TRUE(Poll->Running);
  killProcessTree(*Pid, SIGKILL);
  auto W = waitProcess(*Pid);
  ASSERT_TRUE(W.hasValue());
  EXPECT_FALSE(W->Exited);
  EXPECT_EQ(W->Signal, SIGKILL);
}

} // namespace
