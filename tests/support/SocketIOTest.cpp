//===- tests/support/SocketIOTest.cpp - Unix-socket helper tests ----------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// The transport primitives under efleetd: listen/connect/accept,
/// non-blocking semantics (WouldBlock, accept with nothing pending), and
/// the dead-peer contract — a vanished client surfaces as Closed, never as
/// SIGPIPE or a hard Error.
///
//===----------------------------------------------------------------------===//

#include "support/FileIO.h"
#include "support/SocketIO.h"

#include <gtest/gtest.h>

#include <string>
#include <unistd.h>

using namespace elfie;

namespace {

std::string sockPath(const std::string &Name) {
  return testing::TempDir() + "/elfie_sock_" + Name + "." +
         std::to_string(getpid());
}

TEST(SocketIO, ListenConnectAcceptRoundTrip) {
  std::string Path = sockPath("rt");
  removeFile(Path);
  auto L = listenUnixSocket(Path);
  ASSERT_TRUE(L.hasValue()) << L.message();

  auto C = connectUnixSocket(Path);
  ASSERT_TRUE(C.hasValue()) << C.message();
  auto A = acceptSocket(*L);
  ASSERT_TRUE(A.hasValue()) << A.message();
  ASSERT_GE(*A, 0);

  // Client -> server.
  std::string Msg = "ping\n";
  auto W = writeSocket(*C, Msg.data(), Msg.size());
  ASSERT_TRUE(W.hasValue()) << W.message();
  EXPECT_EQ(W->Bytes, Msg.size());

  char Buf[64];
  auto R = readSocket(*A, Buf, sizeof(Buf));
  ASSERT_TRUE(R.hasValue()) << R.message();
  EXPECT_EQ(std::string(Buf, R->Bytes), Msg);

  // Server -> client, via the all-or-error helper.
  ASSERT_FALSE(writeAllSocket(*A, "ok pong\n").isError());
  R = readSocket(*C, Buf, sizeof(Buf));
  ASSERT_TRUE(R.hasValue());
  EXPECT_EQ(std::string(Buf, R->Bytes), "ok pong\n");

  ::close(*C);
  // Peer close reads as EOF (Closed), not an error.
  R = readSocket(*A, Buf, sizeof(Buf));
  ASSERT_TRUE(R.hasValue()) << R.message();
  EXPECT_TRUE(R->Closed);
  EXPECT_EQ(R->Bytes, 0u);

  ::close(*A);
  ::close(*L);
  removeFile(Path);
}

TEST(SocketIO, ListenReplacesStaleSocketFile) {
  std::string Path = sockPath("stale");
  // A dead daemon's socket file must not block the next start (the caller
  // holds the daemon lock that makes the unlink safe).
  ASSERT_FALSE(writeFileText(Path, "not a socket").isError());
  auto L = listenUnixSocket(Path);
  ASSERT_TRUE(L.hasValue()) << L.message();
  auto C = connectUnixSocket(Path);
  ASSERT_TRUE(C.hasValue()) << C.message();
  ::close(*C);
  ::close(*L);
  removeFile(Path);
}

TEST(SocketIO, OverlongPathIsAnErrorNotTruncation) {
  std::string Path = sockPath("long") + std::string(200, 'x');
  auto L = listenUnixSocket(Path);
  EXPECT_FALSE(L.hasValue());
}

TEST(SocketIO, NonBlockingAcceptAndReadReportNothingPending) {
  std::string Path = sockPath("nb");
  removeFile(Path);
  auto L = listenUnixSocket(Path);
  ASSERT_TRUE(L.hasValue()) << L.message();
  ASSERT_FALSE(setNonBlocking(*L).isError());

  // Nothing queued: accept says "none" with -1, not an error.
  auto A = acceptSocket(*L);
  ASSERT_TRUE(A.hasValue()) << A.message();
  EXPECT_EQ(*A, -1);

  auto C = connectUnixSocket(Path);
  ASSERT_TRUE(C.hasValue());
  A = acceptSocket(*L);
  ASSERT_TRUE(A.hasValue());
  ASSERT_GE(*A, 0);
  ASSERT_FALSE(setNonBlocking(*A).isError());

  // No data yet: WouldBlock, zero bytes, no error.
  char Buf[16];
  auto R = readSocket(*A, Buf, sizeof(Buf));
  ASSERT_TRUE(R.hasValue()) << R.message();
  EXPECT_TRUE(R->WouldBlock);
  EXPECT_EQ(R->Bytes, 0u);

  ::close(*C);
  ::close(*A);
  ::close(*L);
  removeFile(Path);
}

TEST(SocketIO, WriteToDeadPeerIsClosedNotASignal) {
  std::string Path = sockPath("dead");
  removeFile(Path);
  auto L = listenUnixSocket(Path);
  ASSERT_TRUE(L.hasValue());
  auto C = connectUnixSocket(Path);
  ASSERT_TRUE(C.hasValue());
  auto A = acceptSocket(*L);
  ASSERT_TRUE(A.hasValue());
  ::close(*A); // the peer vanishes

  // Writing into the dead socket must never raise SIGPIPE (MSG_NOSIGNAL)
  // — if it did, this test would die here. The first write may land in
  // the now-orphaned buffer; keep writing until the EPIPE shows through.
  bool SawClosed = false;
  for (int I = 0; I < 8 && !SawClosed; ++I) {
    auto W = writeSocket(*C, "x", 1);
    ASSERT_TRUE(W.hasValue()) << W.message();
    SawClosed = W->Closed;
  }
  EXPECT_TRUE(SawClosed);

  // The blocking helper reports the same condition as a structured error.
  Error E = writeAllSocket(*C, "more data");
  ASSERT_TRUE(E.isError());
  EXPECT_EQ(E.code(), "EFAULT.SOCK.CLOSED");

  ::close(*C);
  ::close(*L);
  removeFile(Path);
}

TEST(SocketIO, PollSocketsTimesOutAndSignalsReadable) {
  std::string Path = sockPath("poll");
  removeFile(Path);
  auto L = listenUnixSocket(Path);
  ASSERT_TRUE(L.hasValue());
  struct pollfd P = {*L, POLLIN, 0};
  EXPECT_EQ(pollSockets(&P, 1, 10), 0); // timeout, no error

  auto C = connectUnixSocket(Path);
  ASSERT_TRUE(C.hasValue());
  EXPECT_EQ(pollSockets(&P, 1, 1000), 1);
  EXPECT_TRUE(P.revents & POLLIN);

  ::close(*C);
  ::close(*L);
  removeFile(Path);
}

} // namespace
