//===- tests/support/ErrorTest.cpp ----------------------------------------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"

#include <gtest/gtest.h>

using namespace elfie;

TEST(Error, SuccessIsNotError) {
  Error E;
  EXPECT_FALSE(E.isError());
  EXPECT_FALSE(static_cast<bool>(E));
  EXPECT_TRUE(E.message().empty());
}

TEST(Error, FailureCarriesMessage) {
  Error E = Error::failure("something broke");
  EXPECT_TRUE(E.isError());
  EXPECT_EQ(E.message(), "something broke");
}

TEST(Error, MakeErrorFormats) {
  Error E = makeError("bad value %d in '%s'", 42, "file.s");
  EXPECT_TRUE(E.isError());
  EXPECT_EQ(E.message(), "bad value 42 in 'file.s'");
}

TEST(Expected, HoldsValue) {
  Expected<int> V(7);
  ASSERT_TRUE(V.hasValue());
  EXPECT_EQ(*V, 7);
}

TEST(Expected, HoldsError) {
  Expected<int> V(makeError("nope"));
  ASSERT_FALSE(V.hasValue());
  EXPECT_EQ(V.message(), "nope");
  Error E = V.takeError();
  EXPECT_TRUE(E.isError());
}

TEST(Expected, TakeValueMoves) {
  Expected<std::string> V(std::string("hello"));
  std::string S = V.takeValue();
  EXPECT_EQ(S, "hello");
}

TEST(Expected, ArrowOperator) {
  Expected<std::string> V(std::string("abc"));
  EXPECT_EQ(V->size(), 3u);
}
