//===- tests/support/FormatTest.cpp ---------------------------------------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"

#include <gtest/gtest.h>

using namespace elfie;

TEST(Format, FormatString) {
  EXPECT_EQ(formatString("x=%d y=%s", 3, "abc"), "x=3 y=abc");
  EXPECT_EQ(formatString("%s", ""), "");
}

TEST(Format, ToHex) {
  EXPECT_EQ(toHex(0), "0x0");
  EXPECT_EQ(toHex(0xdeadbeef), "0xdeadbeef");
  EXPECT_EQ(toHex(UINT64_MAX), "0xffffffffffffffff");
}

TEST(Format, SplitString) {
  auto Parts = splitString("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(Parts[3], "c");
  EXPECT_EQ(splitString("", ',').size(), 1u);
}

TEST(Format, TrimString) {
  EXPECT_EQ(trimString("  hi \t"), "hi");
  EXPECT_EQ(trimString(""), "");
  EXPECT_EQ(trimString("  "), "");
  EXPECT_EQ(trimString("x"), "x");
}

TEST(Format, StartsEndsWith) {
  EXPECT_TRUE(startsWith("prefix.rest", "prefix"));
  EXPECT_FALSE(startsWith("pre", "prefix"));
  EXPECT_TRUE(endsWith("file.reg", ".reg"));
  EXPECT_FALSE(endsWith("reg", "file.reg"));
}

TEST(Format, ParseInt64) {
  int64_t V;
  EXPECT_TRUE(parseInt64("42", V));
  EXPECT_EQ(V, 42);
  EXPECT_TRUE(parseInt64("-7", V));
  EXPECT_EQ(V, -7);
  EXPECT_TRUE(parseInt64("0x10", V));
  EXPECT_EQ(V, 16);
  EXPECT_FALSE(parseInt64("", V));
  EXPECT_FALSE(parseInt64("12abc", V));
}

TEST(Format, ParseUInt64) {
  uint64_t V;
  EXPECT_TRUE(parseUInt64("0xffffffffffffffff", V));
  EXPECT_EQ(V, UINT64_MAX);
  EXPECT_FALSE(parseUInt64("-1", V));
}

TEST(Format, ParseDouble) {
  double V;
  EXPECT_TRUE(parseDouble("2.5", V));
  EXPECT_DOUBLE_EQ(V, 2.5);
  EXPECT_FALSE(parseDouble("x", V));
}
