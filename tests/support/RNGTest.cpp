//===- tests/support/RNGTest.cpp ------------------------------------------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace elfie;

TEST(RNG, DeterministicForSeed) {
  RNG A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RNG, DifferentSeedsDiffer) {
  RNG A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 100; ++I)
    if (A.next() == B.next())
      ++Same;
  EXPECT_LT(Same, 3);
}

TEST(RNG, NextBelowInRange) {
  RNG R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

TEST(RNG, NextInRangeInclusive) {
  RNG R(7);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 2000; ++I) {
    int64_t V = R.nextInRange(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    SawLo |= V == -3;
    SawHi |= V == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RNG, DoubleInUnitInterval) {
  RNG R(9);
  for (int I = 0; I < 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RNG, GaussianHasReasonableMoments) {
  RNG R(11);
  double Sum = 0, SumSq = 0;
  const int N = 20000;
  for (int I = 0; I < N; ++I) {
    double G = R.nextGaussian();
    Sum += G;
    SumSq += G * G;
  }
  double Mean = Sum / N;
  double Var = SumSq / N - Mean * Mean;
  EXPECT_NEAR(Mean, 0.0, 0.05);
  EXPECT_NEAR(Var, 1.0, 0.1);
}

TEST(RNG, ReseedResets) {
  RNG R(5);
  uint64_t First = R.next();
  R.next();
  R.reseed(5);
  EXPECT_EQ(R.next(), First);
}
