//===- tests/support/CommandLineTest.cpp ----------------------------------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"

#include <gtest/gtest.h>

using namespace elfie;

namespace {

CommandLine makeCL() {
  CommandLine CL("tool", "test tool");
  CL.addString("o", "out.default", "output file");
  CL.addInt("slicesize", 200000, "slice size");
  CL.addFlag("log:fat", false, "fat pinball");
  CL.addFlag("verbose", false, "verbose");
  return CL;
}

TEST(CommandLine, Defaults) {
  CommandLine CL = makeCL();
  const char *Argv[] = {"tool"};
  ASSERT_FALSE(CL.parse(1, Argv).isError());
  EXPECT_EQ(CL.getString("o"), "out.default");
  EXPECT_EQ(CL.getInt("slicesize"), 200000);
  EXPECT_FALSE(CL.getFlag("log:fat"));
  EXPECT_FALSE(CL.wasSet("o"));
}

TEST(CommandLine, ParsesValues) {
  CommandLine CL = makeCL();
  const char *Argv[] = {"tool", "-o", "x.elfie", "-slicesize", "100",
                        "-log:fat", "1", "input.pb"};
  ASSERT_FALSE(CL.parse(8, Argv).isError());
  EXPECT_EQ(CL.getString("o"), "x.elfie");
  EXPECT_EQ(CL.getInt("slicesize"), 100);
  EXPECT_TRUE(CL.getFlag("log:fat"));
  ASSERT_EQ(CL.positional().size(), 1u);
  EXPECT_EQ(CL.positional()[0], "input.pb");
  EXPECT_TRUE(CL.wasSet("o"));
}

TEST(CommandLine, PinPlayStyleFlagZero) {
  CommandLine CL = makeCL();
  const char *Argv[] = {"tool", "-log:fat", "0"};
  ASSERT_FALSE(CL.parse(3, Argv).isError());
  EXPECT_FALSE(CL.getFlag("log:fat"));
}

TEST(CommandLine, BareFlag) {
  CommandLine CL = makeCL();
  const char *Argv[] = {"tool", "-verbose", "pos"};
  ASSERT_FALSE(CL.parse(3, Argv).isError());
  EXPECT_TRUE(CL.getFlag("verbose"));
  ASSERT_EQ(CL.positional().size(), 1u);
}

TEST(CommandLine, EqualsSyntax) {
  CommandLine CL = makeCL();
  const char *Argv[] = {"tool", "-o=file", "--slicesize=7"};
  ASSERT_FALSE(CL.parse(3, Argv).isError());
  EXPECT_EQ(CL.getString("o"), "file");
  EXPECT_EQ(CL.getInt("slicesize"), 7);
}

TEST(CommandLine, UnknownOptionFails) {
  CommandLine CL = makeCL();
  const char *Argv[] = {"tool", "-bogus", "1"};
  Error E = CL.parse(3, Argv);
  ASSERT_TRUE(E.isError());
  EXPECT_NE(E.message().find("unknown option"), std::string::npos);
}

TEST(CommandLine, MissingValueFails) {
  CommandLine CL = makeCL();
  const char *Argv[] = {"tool", "-o"};
  EXPECT_TRUE(CL.parse(2, Argv).isError());
}

TEST(CommandLine, BadIntFails) {
  CommandLine CL = makeCL();
  const char *Argv[] = {"tool", "-slicesize", "soon"};
  EXPECT_TRUE(CL.parse(3, Argv).isError());
}

TEST(CommandLine, NegativeNumberIsPositional) {
  CommandLine CL = makeCL();
  const char *Argv[] = {"tool", "-5"};
  ASSERT_FALSE(CL.parse(2, Argv).isError());
  ASSERT_EQ(CL.positional().size(), 1u);
  EXPECT_EQ(CL.positional()[0], "-5");
}

} // namespace
