//===- tests/support/FileIOTest.cpp ---------------------------------------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/FileIO.h"

#include <gtest/gtest.h>

using namespace elfie;

namespace {

std::string tempPath(const std::string &Name) {
  return testing::TempDir() + "/elfie_fileio_" + Name;
}

TEST(FileIO, RoundTrip) {
  std::string Path = tempPath("roundtrip");
  std::string Text = "hello\nworld\n";
  ASSERT_FALSE(writeFileText(Path, Text).isError());
  auto Read = readFileText(Path);
  ASSERT_TRUE(Read.hasValue());
  EXPECT_EQ(*Read, Text);
  removeFile(Path);
}

TEST(FileIO, MissingFileFails) {
  auto R = readFileBytes(tempPath("does_not_exist"));
  ASSERT_FALSE(R.hasValue());
  EXPECT_NE(R.message().find("cannot open"), std::string::npos);
}

TEST(FileIO, CreateDirectories) {
  std::string Dir = tempPath("a/b/c");
  ASSERT_FALSE(createDirectories(Dir).isError());
  EXPECT_TRUE(fileExists(Dir));
  // Idempotent.
  EXPECT_FALSE(createDirectories(Dir).isError());
  removeTree(tempPath("a"));
}

TEST(FileIO, AtomicWriteLeavesNoTmpLitterOnRenameFailure) {
  // Target an existing non-empty directory: the data writes fine but the
  // final rename must fail (EISDIR/ENOTEMPTY) — and the temp sibling must
  // be cleaned up, not littered for the next campaign to trip over.
  std::string Dir = tempPath("atomic_litter");
  removeTree(Dir);
  ASSERT_FALSE(createDirectories(Dir + "/target/inner").isError());
  Error E = writeFileAtomic(Dir + "/target", "x", 1);
  ASSERT_TRUE(E.isError());
  EXPECT_EQ(E.code(), "EFAULT.IO.RENAME");
  auto Entries = listDirectory(Dir);
  ASSERT_TRUE(Entries.hasValue());
  for (const std::string &Name : *Entries)
    EXPECT_EQ(Name.find(".tmp"), std::string::npos) << Name;
  removeTree(Dir);
}

TEST(FileIO, AtomicWriteReplacesWholeFileOrNothing) {
  // writeFileAtomic's contract is tmp + fsync + rename + *parent-dir
  // fsync*: the last step makes the rename's directory entry itself
  // durable, so a power loss right after return cannot evaporate the
  // published file (rename alone only orders data, not the dirent).
  // publishDirAtomic gives directories the same guarantee. The fsync
  // cannot be observed from a live process, so this test pins the
  // observable half of the contract: the old content stays intact until
  // the new file is complete, and no temp sibling outlives the call.
  std::string Dir = tempPath("atomic_replace");
  removeTree(Dir);
  ASSERT_FALSE(createDirectories(Dir).isError());
  std::string Target = Dir + "/target";
  ASSERT_FALSE(writeFileAtomic(Target, "old-content", 11).isError());
  ASSERT_FALSE(writeFileAtomic(Target, "new", 3).isError());
  auto Text = readFileText(Target);
  ASSERT_TRUE(Text.hasValue());
  EXPECT_EQ(*Text, "new");
  auto Entries = listDirectory(Dir);
  ASSERT_TRUE(Entries.hasValue());
  ASSERT_EQ(Entries->size(), 1u);
  EXPECT_EQ((*Entries)[0], "target");
  removeTree(Dir);
}

TEST(AppendLog, AppendsAreDurableAcrossReopen) {
  std::string Path = tempPath("appendlog");
  removeFile(Path);
  {
    AppendLog Log;
    ASSERT_FALSE(Log.open(Path).isError());
    EXPECT_TRUE(Log.isOpen());
    ASSERT_FALSE(Log.append("first").isError());
    ASSERT_FALSE(Log.append("second\n").isError()); // newline not doubled
  }
  {
    AppendLog Log;
    ASSERT_FALSE(Log.open(Path).isError());
    ASSERT_FALSE(Log.append("third").isError());
  }
  auto Text = readFileText(Path);
  ASSERT_TRUE(Text.hasValue());
  EXPECT_EQ(*Text, "first\nsecond\nthird\n");
  removeFile(Path);
}

TEST(AppendLog, AppendAfterCloseFails) {
  std::string Path = tempPath("appendlog_closed");
  AppendLog Log;
  ASSERT_FALSE(Log.open(Path).isError());
  Log.close();
  EXPECT_FALSE(Log.isOpen());
  EXPECT_TRUE(Log.append("late").isError());
  removeFile(Path);
}

TEST(BinaryIO, WriterReaderRoundTrip) {
  BinaryWriter W;
  W.writeU8(0xab);
  W.writeU16(0x1234);
  W.writeU32(0xdeadbeef);
  W.writeU64(0x0123456789abcdefull);
  W.writeI64(-42);
  W.writeDouble(3.25);
  W.writeString("pinball");
  uint8_t Blob[3] = {1, 2, 3};
  W.writeBlob(Blob, 3);

  BinaryReader R(W.bytes());
  EXPECT_EQ(R.readU8(), 0xab);
  EXPECT_EQ(R.readU16(), 0x1234);
  EXPECT_EQ(R.readU32(), 0xdeadbeefu);
  EXPECT_EQ(R.readU64(), 0x0123456789abcdefull);
  EXPECT_EQ(R.readI64(), -42);
  EXPECT_DOUBLE_EQ(R.readDouble(), 3.25);
  EXPECT_EQ(R.readString(), "pinball");
  auto B = R.readBlob();
  ASSERT_EQ(B.size(), 3u);
  EXPECT_EQ(B[2], 3);
  EXPECT_TRUE(R.atEnd());
  EXPECT_FALSE(R.hadError());
}

TEST(BinaryIO, ReaderOverrunIsSticky) {
  BinaryWriter W;
  W.writeU16(7);
  BinaryReader R(W.bytes());
  EXPECT_EQ(R.readU32(), 0u); // overrun
  EXPECT_TRUE(R.hadError());
  EXPECT_EQ(R.readU8(), 0u); // still failed
  EXPECT_TRUE(R.hadError());
}

TEST(BinaryIO, EmptyBlob) {
  BinaryWriter W;
  W.writeBlob(nullptr, 0);
  BinaryReader R(W.bytes());
  EXPECT_TRUE(R.readBlob().empty());
  EXPECT_FALSE(R.hadError());
}

} // namespace
