//===- tests/sim/SimStateTest.cpp - warmup-checkpoint suite ---------------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The warmup-checkpoint acceptance suite (ctest label `simstate`):
///
///  * per-component save/load round trips through the SimComponent
///    interface (LRU order, gshare history, BTB entries, nested CoreState)
///  * the EFAULT.SIMSTATE.* fail-closed taxonomy on corrupted sidecars
///  * cold-vs-save-vs-resume SimStats **bit-identity** on every example
///    pipeline (single-thread ELFie, interp + JIT, clock syscalls, MT
///    ELFie, constrained + unconstrained pinball replay)
///  * the checkpoint-index regression pin: the boundary lands on the same
///    global retired index across the interpreted save, JIT save, and
///    resume paths (the PR-6 fast-forward off-by-one class).
///
//===----------------------------------------------------------------------===//

#include "sim/SimState.h"

#include "../common/TestHelpers.h"
#include "core/Pinball2Elf.h"
#include "sim/BranchPredictor.h"
#include "sim/Cache.h"
#include "sim/Frontend.h"
#include "support/Sha256.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

using namespace elfie;
using namespace elfie::sim;

namespace {

std::string tempDir(const std::string &Name) {
  std::string D = testing::TempDir() + "/elfie_simstate_" + Name;
  removeTree(D);
  createDirectories(D);
  return D;
}

std::vector<uint8_t> componentBytes(const SimComponent &C) {
  BinaryWriter W;
  StateWriter SW(W);
  C.saveState(SW);
  return W.bytes();
}

Error componentLoad(SimComponent &C, const std::vector<uint8_t> &Bytes) {
  BinaryReader R(Bytes.data(), Bytes.size());
  StateReader SR(R);
  if (Error E = C.loadState(SR))
    return E;
  if (R.hadError() || !R.atEnd())
    return makeError("payload size mismatch");
  return Error::success();
}

/// Canonical byte form of a SimStats value: the bit-identity comparator
/// for the cold-vs-resume suite.
std::vector<uint8_t> statsBytes(const SimStats &S) {
  BinaryWriter W;
  StateWriter SW(W);
  S.save(SW);
  return W.bytes();
}

// ---- Per-component round trips ----

TEST(SimComponentRoundTrip, CachePreservesLRUOrder) {
  // 2-way, 2 sets: lines 0/128/256 all map to set 0.
  Cache A(256, 2);
  A.access(0, false);
  A.access(128, false);
  A.access(0, false); // refresh 0: LRU victim is now 128

  Cache B(256, 2);
  ASSERT_FALSE(componentLoad(B, componentBytes(A)).isError());
  EXPECT_EQ(B.hits(), A.hits());
  EXPECT_EQ(B.misses(), A.misses());
  EXPECT_TRUE(B.contains(0));
  EXPECT_TRUE(B.contains(128));

  // The restored cache must evict the same victim the original would.
  A.access(256, false);
  B.access(256, false);
  EXPECT_TRUE(B.contains(0));
  EXPECT_FALSE(B.contains(128)) << "LRU order lost in the round trip";
  EXPECT_TRUE(B.contains(256));
  EXPECT_EQ(componentBytes(B), componentBytes(A))
      << "restored cache must re-serialize bit-identically";
}

TEST(SimComponentRoundTrip, CacheGeometryMismatchFailsClosed) {
  Cache A(256, 2);
  A.access(0, false);
  Cache Bigger(512, 2);
  Error E = componentLoad(Bigger, componentBytes(A));
  ASSERT_TRUE(E.isError());
  EXPECT_EQ(E.code(), "EFAULT.SIMSTATE.COMPONENT") << E.str();
  Cache WrongAssoc(256, 4);
  EXPECT_EQ(componentLoad(WrongAssoc, componentBytes(A)).code(),
            "EFAULT.SIMSTATE.COMPONENT");
}

TEST(SimComponentRoundTrip, TLBRoundTripAndPageMismatch) {
  TLB A(16);
  A.access(0x1000);
  A.access(0x2000);
  A.access(0x1fff);
  TLB B(16);
  ASSERT_FALSE(componentLoad(B, componentBytes(A)).isError());
  EXPECT_EQ(B.hits(), A.hits());
  EXPECT_EQ(B.misses(), A.misses());
  EXPECT_TRUE(B.access(0x1000)) << "restored translation must hit";

  TLB HugePages(16, 4, 2 * 1024 * 1024);
  EXPECT_EQ(componentLoad(HugePages, componentBytes(A)).code(),
            "EFAULT.SIMSTATE.COMPONENT");
}

TEST(SimComponentRoundTrip, GShareHistoryAndCounters) {
  GSharePredictor A(10);
  // Alternating pattern builds non-trivial history + counter state.
  for (int I = 0; I < 200; ++I)
    A.predictAndUpdate(0x1000 + 8 * (I % 7), (I & 1) != 0);

  GSharePredictor B(10);
  ASSERT_FALSE(componentLoad(B, componentBytes(A)).isError());
  EXPECT_EQ(B.history(), A.history());
  EXPECT_EQ(B.lookups(), A.lookups());
  EXPECT_EQ(B.mispredicts(), A.mispredicts());
  // Both must predict identically from here on.
  for (int I = 0; I < 100; ++I) {
    bool Taken = (I % 3) == 0;
    EXPECT_EQ(B.predictAndUpdate(0x2000, Taken),
              A.predictAndUpdate(0x2000, Taken))
        << "divergence at post-restore branch " << I;
  }

  GSharePredictor WrongBits(11);
  EXPECT_EQ(componentLoad(WrongBits, componentBytes(A)).code(),
            "EFAULT.SIMSTATE.COMPONENT");
}

TEST(SimComponentRoundTrip, BTBEntries) {
  BTB A(8);
  A.predictAndUpdate(0x100, 0x500);
  A.predictAndUpdate(0x108, 0x900);
  BTB B(8);
  ASSERT_FALSE(componentLoad(B, componentBytes(A)).isError());
  EXPECT_TRUE(B.predictAndUpdate(0x100, 0x500));
  EXPECT_TRUE(B.predictAndUpdate(0x108, 0x900));
  EXPECT_EQ(B.lookups(), A.lookups() + 2);

  BTB WrongBits(9);
  EXPECT_EQ(componentLoad(WrongBits, componentBytes(A)).code(),
            "EFAULT.SIMSTATE.COMPONENT");
}

TEST(SimComponentRoundTrip, CoreStateNestsAllParts) {
  CoreConfig Cfg;
  CoreState A(Cfg);
  // Touch every nested component plus the scalar bookkeeping.
  A.BP.predictAndUpdate(0x40, true);
  A.Btb.predictAndUpdate(0x48, 0x1000);
  A.L1I.access(0x2000, false);
  A.L1D.access(0x3000, true);
  A.L2.access(0x3000, true);
  A.Dtlb.access(0x3000);
  A.Itlb.access(0x2000);
  A.LastFetchLine = 0x2000 / CacheLineSize;
  A.SinceTimer = 123;
  A.KernelCursor = 456;
  A.InKernel = false;

  CoreState B(Cfg);
  ASSERT_FALSE(componentLoad(B, componentBytes(A)).isError());
  EXPECT_EQ(B.LastFetchLine, A.LastFetchLine);
  EXPECT_EQ(B.SinceTimer, A.SinceTimer);
  EXPECT_EQ(B.KernelCursor, A.KernelCursor);
  EXPECT_EQ(componentBytes(B), componentBytes(A));
}

TEST(SimComponentRoundTrip, SimStatsValueType) {
  SimStats A;
  A.Cores.resize(2);
  A.Cores[0].Instructions = 1000;
  A.Cores[0].Cycles = 1234.5;
  A.Cores[1].BranchMispredicts = 7;
  A.Cores[1].Ring0Cycles = 0.25;
  A.UserDataPages = {0x1000, 0x5000, 0x9000};
  A.KernelDataPages = {0xffff0000};
  A.FreqGHz = 2.66;

  SimStats B;
  B.Cores.resize(2);
  BinaryWriter W;
  StateWriter SW(W);
  A.save(SW);
  BinaryReader R(W.bytes().data(), W.size());
  StateReader SR(R);
  ASSERT_FALSE(B.load(SR).isError());
  EXPECT_TRUE(R.atEnd());
  EXPECT_EQ(statsBytes(B), statsBytes(A));

  SimStats OneCore;
  OneCore.Cores.resize(1);
  BinaryReader R2(W.bytes().data(), W.size());
  StateReader SR2(R2);
  EXPECT_EQ(OneCore.load(SR2).code(), "EFAULT.SIMSTATE.COMPONENT");
}

// ---- Sidecar format: fail-closed taxonomy ----

/// Puts a little state into every component, for container tests.
/// (TimingModel is non-movable, so the caller owns the instance.)
void trainModel(TimingModel &Model) {
  isa::Inst Add;
  Add.Op = isa::Opcode::Add;
  for (uint64_t I = 0; I < 64; ++I) {
    Model.instruction(0, 0x1000 + 8 * I, Add);
    Model.memoryAccess(0, 0x8000 + 64 * I, 8, (I & 1) != 0);
    Model.controlTransfer(0, 0x1000 + 8 * I, 0x1000, (I & 3) != 0, false);
  }
}

SimStateMeta testMeta(const MachineConfig &M) {
  SimStateMeta Meta;
  Meta.ConfigName = M.Name;
  Meta.ConfigFP = configFingerprint(M);
  Meta.InputDigest = Sha256::digest("input", 5);
  Meta.WarmupInstructions = 64;
  Meta.CheckpointRetired = 164;
  Meta.DetailedBudget = 1000;
  return Meta;
}

/// Applies \p Fn to the sidecar bytes and writes them back.
void mutateFile(const std::string &Path,
                const std::function<void(std::vector<uint8_t> &)> &Fn) {
  auto Bytes = readFileBytes(Path);
  ASSERT_TRUE(Bytes.hasValue()) << Bytes.message();
  Fn(*Bytes);
  ASSERT_FALSE(
      writeFileAtomic(Path, Bytes->data(), Bytes->size()).isError());
}

/// Recomputes the trailing seal after an intentional header mutation, so
/// the test reaches the check *behind* the seal.
void reseal(std::vector<uint8_t> &Bytes) {
  ASSERT_GE(Bytes.size(), 32u);
  Sha256Digest Seal = Sha256::digest(Bytes.data(), Bytes.size() - 32);
  std::copy(Seal.Bytes.begin(), Seal.Bytes.end(), Bytes.end() - 32);
}

struct SidecarFixture {
  std::string Dir, Path;
  MachineConfig Machine = makeNehalemLike();
  SimStateMeta Meta;

  explicit SidecarFixture(const std::string &Name) {
    Dir = tempDir(Name);
    Path = Dir + "/region.elfie.esimstate";
    Meta = testMeta(Machine);
    TimingModel Model(Machine);
    trainModel(Model);
    Error E = saveSimState(Path, Meta, Model);
    EXPECT_FALSE(E.isError()) << E.str();
  }

  std::string loadCode(const MachineConfig &M, const Sha256Digest &Digest) {
    TimingModel Fresh(M);
    auto R = loadSimState(Path, M, Digest, Fresh);
    return R.hasValue() ? std::string() : R.takeError().code();
  }
  std::string loadCode() { return loadCode(Machine, Meta.InputDigest); }
};

TEST(SimStateFile, RoundTripRestoresEveryComponent) {
  SidecarFixture F("roundtrip");
  TimingModel Restored(F.Machine);
  auto Meta =
      loadSimState(F.Path, F.Machine, F.Meta.InputDigest, Restored);
  ASSERT_TRUE(Meta.hasValue()) << Meta.message();
  EXPECT_EQ(Meta->WarmupInstructions, 64u);
  EXPECT_EQ(Meta->CheckpointRetired, 164u);
  EXPECT_EQ(Meta->DetailedBudget, 1000u);

  // Re-serializing the restored model under the same meta must reproduce
  // the sidecar byte for byte.
  std::string Path2 = F.Dir + "/resaved.esimstate";
  ASSERT_FALSE(saveSimState(Path2, *Meta, Restored).isError());
  auto A = readFileBytes(F.Path);
  auto B = readFileBytes(Path2);
  ASSERT_TRUE(A.hasValue() && B.hasValue());
  EXPECT_EQ(*A, *B);
}

TEST(SimStateFile, InspectReportsComponentTable) {
  SidecarFixture F("inspect");
  auto Info = inspectSimState(F.Path);
  ASSERT_TRUE(Info.hasValue()) << Info.message();
  EXPECT_EQ(Info->FormatVersion, SimStateFormatVersion);
  EXPECT_EQ(Info->Meta.ConfigName, "nehalem");
  ASSERT_EQ(Info->Components.size(), 3u) << "stats + core0 + l3";
  EXPECT_EQ(Info->Components[0].Id, "stats");
  EXPECT_EQ(Info->Components[1].Id, "core0");
  EXPECT_EQ(Info->Components[2].Id, "l3");
  for (const auto &C : Info->Components)
    EXPECT_GT(C.PayloadBytes, 0u);
}

TEST(SimStateFile, BadMagicRejected) {
  SidecarFixture F("magic");
  mutateFile(F.Path, [](std::vector<uint8_t> &B) { B[0] ^= 0xFF; });
  EXPECT_EQ(F.loadCode(), "EFAULT.SIMSTATE.MAGIC");
}

TEST(SimStateFile, UnsupportedVersionRejected) {
  SidecarFixture F("version");
  mutateFile(F.Path, [](std::vector<uint8_t> &B) {
    B[8] = 99; // u32 format version sits right after the 8-byte magic
    reseal(B);
  });
  EXPECT_EQ(F.loadCode(), "EFAULT.SIMSTATE.VERSION");
}

TEST(SimStateFile, TruncationRejected) {
  SidecarFixture F("trunc");
  mutateFile(F.Path, [](std::vector<uint8_t> &B) { B.pop_back(); });
  EXPECT_EQ(F.loadCode(), "EFAULT.SIMSTATE.TRUNCATED");

  SidecarFixture F2("trunchalf");
  mutateFile(F2.Path,
             [](std::vector<uint8_t> &B) { B.resize(B.size() / 2); });
  EXPECT_EQ(F2.loadCode(), "EFAULT.SIMSTATE.TRUNCATED");
}

TEST(SimStateFile, TrailingGarbageRejected) {
  SidecarFixture F("trailing");
  mutateFile(F.Path, [](std::vector<uint8_t> &B) { B.push_back(0xAB); });
  EXPECT_EQ(F.loadCode(), "EFAULT.SIMSTATE.TRUNCATED");
}

TEST(SimStateFile, SealMismatchRejected) {
  SidecarFixture F("seal");
  mutateFile(F.Path, [](std::vector<uint8_t> &B) {
    B[B.size() / 2] ^= 0x01; // single bit flip in a component payload
  });
  EXPECT_EQ(F.loadCode(), "EFAULT.SIMSTATE.SEAL");
}

TEST(SimStateFile, ConfigMismatchRejected) {
  SidecarFixture F("config");
  EXPECT_EQ(F.loadCode(makeHaswellLike(), F.Meta.InputDigest),
            "EFAULT.SIMSTATE.CONFIG");
}

TEST(SimStateFile, InputDigestMismatchRejected) {
  SidecarFixture F("input");
  EXPECT_EQ(F.loadCode(F.Machine, Sha256::digest("other", 5)),
            "EFAULT.SIMSTATE.INPUT");
}

TEST(SimStateFile, ComponentIdMismatchRejected) {
  SidecarFixture F("component");
  mutateFile(F.Path, [](std::vector<uint8_t> &B) {
    // Corrupt the "stats" component id in place, then reseal so the load
    // reaches the component-table check.
    const char Needle[] = "stats";
    auto It = std::search(B.begin(), B.end(), Needle, Needle + 5);
    ASSERT_NE(It, B.end());
    *It = 'x';
    reseal(B);
  });
  EXPECT_EQ(F.loadCode(), "EFAULT.SIMSTATE.COMPONENT");
}

TEST(SimStateFile, PathHelperStripsTrailingSlash) {
  EXPECT_EQ(simStatePathFor("region.elfie"), "region.elfie.esimstate");
  EXPECT_EQ(simStatePathFor("pb/"), "pb.esimstate");
}

// ---- End to end: cold vs save vs resume identity ----

struct ElfiePipeline {
  std::string Dir;
  std::vector<uint8_t> Image;
  uint64_t Region = 0;
};

/// Captures \p Src over [Start, Start+Len) and emits a guest ELFie, with
/// an embedded elfie_warmup_length when \p WarmupSym is non-zero.
ElfiePipeline makeElfie(const std::string &Name, const std::string &Src,
                        uint64_t Start, uint64_t Len,
                        uint64_t WarmupSym = 0) {
  ElfiePipeline P;
  P.Dir = tempDir(Name);
  P.Region = Len;
  auto PB = test::capture(P.Dir, Src, Start, Len,
                          pinball::LoggerOptions::fat());
  EXPECT_TRUE(PB.hasValue()) << PB.message();
  if (!PB)
    return P;
  core::Pinball2ElfOptions Opts;
  Opts.TargetKind = core::Pinball2ElfOptions::Target::Guest;
  Opts.WarmupLength = WarmupSym;
  auto Image = core::pinballToElf(*PB, Opts);
  EXPECT_TRUE(Image.hasValue()) << Image.message();
  if (Image)
    P.Image = std::move(*Image);
  return P;
}

/// Runs the cold / save / resume triple over \p Image and asserts
/// bit-identical SimStats plus matching checkpoint indices.
void expectColdSaveResumeIdentity(const std::vector<uint8_t> &Image,
                                  const MachineConfig &Machine,
                                  RunControls Controls,
                                  const std::string &StatePath,
                                  vm::VMConfig SaveCfg = {},
                                  vm::VMConfig LoadCfg = {}) {
  auto Cold = simulateBinaryImage(Image, Machine, Controls, SaveCfg);
  ASSERT_TRUE(Cold.hasValue()) << Cold.message();

  RunControls SaveCtl = Controls;
  SaveCtl.SaveStatePath = StatePath;
  auto Save = simulateBinaryImage(Image, Machine, SaveCtl, SaveCfg);
  ASSERT_TRUE(Save.hasValue()) << Save.message();
  EXPECT_TRUE(Save->StateSaved);
  EXPECT_EQ(statsBytes(Save->Stats), statsBytes(Cold->Stats))
      << "writing the checkpoint must not perturb the simulation";

  RunControls LoadCtl = Controls;
  LoadCtl.LoadStatePath = StatePath;
  auto Load = simulateBinaryImage(Image, Machine, LoadCtl, LoadCfg);
  ASSERT_TRUE(Load.hasValue()) << Load.message();
  EXPECT_TRUE(Load->StateLoaded);
  EXPECT_EQ(statsBytes(Load->Stats), statsBytes(Cold->Stats))
      << "resume must be bit-identical to the cold run";
  EXPECT_EQ(Load->RoiRetired, Cold->RoiRetired);
  EXPECT_EQ(Load->CheckpointRetired, Save->CheckpointRetired)
      << "resume landed on a different boundary instruction";
}

TEST(CheckpointIdentity, ComputeElfieWithEmbeddedWarmup) {
  ElfiePipeline P = makeElfie("compute", test::computeProgram(), 5000,
                              8000, /*WarmupSym=*/1000);
  ASSERT_FALSE(P.Image.empty());
  RunControls Controls; // warmup auto-detected from elfie_warmup_length
  expectColdSaveResumeIdentity(P.Image, makeNehalemLike(), Controls,
                               P.Dir + "/region.esimstate");

  // The warming split is exact: W warmed + (region - W) detailed.
  auto R = simulateBinaryImage(P.Image, makeNehalemLike());
  ASSERT_TRUE(R.hasValue()) << R.message();
  EXPECT_EQ(R->WarmupRetired, 1000u);
  EXPECT_EQ(R->RoiRetired, 7000u);
  EXPECT_EQ(R->Stats.totalInstructions(), 7000u);
}

TEST(CheckpointIdentity, JitResumeMatchesInterpretedCold) {
  ElfiePipeline P =
      makeElfie("jit", test::computeProgram(), 5000, 8000);
  ASSERT_FALSE(P.Image.empty());
  RunControls Controls;
  Controls.WarmupInstructions = 1500;
  vm::VMConfig Jit;
  Jit.EnableJit = true;
  Jit.JitThreshold = 1;
  // Save interpreted, resume with the JIT fast-forwarding the warming
  // stretch: the detailed phase must still be bit-identical.
  expectColdSaveResumeIdentity(P.Image, makeNehalemLike(), Controls,
                               P.Dir + "/region.esimstate",
                               /*SaveCfg=*/{}, /*LoadCfg=*/Jit);
}

TEST(CheckpointIdentity, ClockSyscallElfie) {
  ElfiePipeline P =
      makeElfie("clock", test::clockProgram(), 2000, 8000);
  ASSERT_FALSE(P.Image.empty());
  RunControls Controls;
  Controls.WarmupInstructions = 2000;
  expectColdSaveResumeIdentity(P.Image, makeSkylakeLike(false), Controls,
                               P.Dir + "/region.esimstate");
}

TEST(CheckpointIdentity, MultiThreadElfieOnGainestown) {
  std::string Dir = tempDir("mtelfie");
  auto PB = test::capture(Dir, test::multiThreadProgram(8, 4, 2000), 40000,
                          24000, pinball::LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();
  core::Pinball2ElfOptions Opts;
  Opts.TargetKind = core::Pinball2ElfOptions::Target::Guest;
  auto Image = core::pinballToElf(*PB, Opts);
  ASSERT_TRUE(Image.hasValue()) << Image.message();

  // Multicore: no single-core fast path; the resume flows through the
  // observer's Skipping phase.
  RunControls Controls;
  Controls.WarmupInstructions = 2000;
  Controls.MaxInstructions = 20000;
  expectColdSaveResumeIdentity(*Image, makeGainestown8(), Controls,
                               Dir + "/region.esimstate");
}

void expectPinballIdentity(const pinball::Pinball &PB,
                           const MachineConfig &Machine, bool Constrained,
                           RunControls Controls,
                           const std::string &StatePath) {
  auto Cold = simulatePinball(PB, Machine, Constrained, Controls);
  ASSERT_TRUE(Cold.hasValue()) << Cold.message();

  RunControls SaveCtl = Controls;
  SaveCtl.SaveStatePath = StatePath;
  auto Save = simulatePinball(PB, Machine, Constrained, SaveCtl);
  ASSERT_TRUE(Save.hasValue()) << Save.message();
  EXPECT_TRUE(Save->StateSaved);
  EXPECT_EQ(statsBytes(Save->Stats), statsBytes(Cold->Stats));

  RunControls LoadCtl = Controls;
  LoadCtl.LoadStatePath = StatePath;
  auto Load = simulatePinball(PB, Machine, Constrained, LoadCtl);
  ASSERT_TRUE(Load.hasValue()) << Load.message();
  EXPECT_TRUE(Load->StateLoaded);
  EXPECT_EQ(statsBytes(Load->Stats), statsBytes(Cold->Stats));
  EXPECT_EQ(Load->CheckpointRetired, Save->CheckpointRetired);
}

TEST(CheckpointIdentity, PinballConstrainedMT) {
  std::string Dir = tempDir("pbcon");
  auto PB = test::capture(Dir, test::multiThreadProgram(8, 4, 2000), 40000,
                          24000, pinball::LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();
  RunControls Controls;
  Controls.WarmupInstructions = 4000;
  expectPinballIdentity(*PB, makeGainestown8(), /*Constrained=*/true,
                        Controls, Dir + "/pb.esimstate");
}

TEST(CheckpointIdentity, PinballUnconstrainedMT) {
  std::string Dir = tempDir("pbfree");
  auto PB = test::capture(Dir, test::multiThreadProgram(8, 4, 2000), 40000,
                          24000, pinball::LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();
  RunControls Controls;
  Controls.WarmupInstructions = 4000;
  expectPinballIdentity(*PB, makeGainestown8(), /*Constrained=*/false,
                        Controls, Dir + "/pb.esimstate");
}

TEST(CheckpointIdentity, ResumeRejectsDifferentInput) {
  ElfiePipeline P =
      makeElfie("crossinput", test::computeProgram(), 5000, 8000);
  ElfiePipeline Q =
      makeElfie("crossinput2", test::clockProgram(), 2000, 8000);
  ASSERT_FALSE(P.Image.empty());
  ASSERT_FALSE(Q.Image.empty());
  std::string StatePath = P.Dir + "/region.esimstate";
  RunControls SaveCtl;
  SaveCtl.WarmupInstructions = 1000;
  SaveCtl.SaveStatePath = StatePath;
  auto Save = simulateBinaryImage(P.Image, makeNehalemLike(), SaveCtl);
  ASSERT_TRUE(Save.hasValue()) << Save.message();

  RunControls LoadCtl;
  LoadCtl.WarmupInstructions = 1000;
  LoadCtl.LoadStatePath = StatePath;
  auto Load = simulateBinaryImage(Q.Image, makeNehalemLike(), LoadCtl);
  ASSERT_FALSE(Load.hasValue());
  EXPECT_EQ(Load.takeError().code(), "EFAULT.SIMSTATE.INPUT");

  // ...and a different machine config.
  auto Wrong = simulateBinaryImage(P.Image, makeHaswellLike(), LoadCtl);
  ASSERT_FALSE(Wrong.hasValue());
  EXPECT_EQ(Wrong.takeError().code(), "EFAULT.SIMSTATE.CONFIG");
}

TEST(CheckpointIdentity, WarmupBudgetMustFitRegion) {
  ElfiePipeline P =
      makeElfie("budget", test::computeProgram(), 5000, 8000);
  ASSERT_FALSE(P.Image.empty());
  RunControls Controls;
  Controls.WarmupInstructions = 8000; // == region: nothing left to measure
  auto R = simulateBinaryImage(P.Image, makeNehalemLike(), Controls);
  ASSERT_FALSE(R.hasValue());
  EXPECT_EQ(R.takeError().code(), "EFAULT.SIMSTATE.BUDGET");
}

// ---- The checkpoint-index regression pin (PR-6 interaction audit) ----
//
// The boundary must land on the same global retired index no matter how
// the pre-boundary stretch was executed: interpreted fast-forward,
// JIT-compiled fast-forward, or the -warmup-load resume path. A W=0
// checkpoint pins the marker itself; W>0 must sit exactly W past it.

TEST(CheckpointIndex, SameBoundaryAcrossAllPaths) {
  ElfiePipeline P =
      makeElfie("index", test::computeProgram(), 5000, 8000);
  ASSERT_FALSE(P.Image.empty());
  MachineConfig Machine = makeNehalemLike();
  vm::VMConfig Jit;
  Jit.EnableJit = true;
  Jit.JitThreshold = 1;

  auto boundary = [&](uint64_t W, bool Save, bool UseJit) -> uint64_t {
    RunControls C;
    C.WarmupInstructions = W;
    std::string Path = P.Dir + "/pin.esimstate";
    if (Save)
      C.SaveStatePath = Path;
    else
      C.LoadStatePath = Path;
    auto R = simulateBinaryImage(P.Image, Machine, C,
                                 UseJit ? Jit : vm::VMConfig{});
    EXPECT_TRUE(R.hasValue()) << R.message();
    return R ? R->CheckpointRetired : 0;
  };

  // W=0: the boundary is the first post-marker instruction, so the global
  // retired count equals the ELFie startup length including the marker.
  uint64_t Startup = boundary(0, /*Save=*/true, /*UseJit=*/false);
  EXPECT_GT(Startup, 0u);
  EXPECT_LT(Startup, 500u) << "startup stub is ~100 instructions";
  EXPECT_EQ(boundary(0, /*Save=*/true, /*UseJit=*/true), Startup)
      << "JIT fast-forward shifted the W=0 boundary";
  EXPECT_EQ(boundary(0, /*Save=*/false, /*UseJit=*/false), Startup)
      << "resume shifted the W=0 boundary";

  // W=1000: exactly 1000 past the marker on every path.
  EXPECT_EQ(boundary(1000, /*Save=*/true, /*UseJit=*/false),
            Startup + 1000)
      << "interpreted warming is off by one at the ROI marker";
  EXPECT_EQ(boundary(1000, /*Save=*/true, /*UseJit=*/true), Startup + 1000)
      << "JIT fast-forward warming is off by one at the ROI marker";
  EXPECT_EQ(boundary(1000, /*Save=*/false, /*UseJit=*/true),
            Startup + 1000)
      << "JIT resume is off by one at the ROI marker";
  EXPECT_EQ(boundary(1000, /*Save=*/false, /*UseJit=*/false),
            Startup + 1000)
      << "interpreted resume is off by one at the ROI marker";
}

} // namespace
