//===- tests/sim/SimTest.cpp - timing model & front-ends ------------------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "sim/Frontend.h"

#include "../common/TestHelpers.h"
#include "core/Pinball2Elf.h"
#include "sim/BranchPredictor.h"
#include "sim/Cache.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace elfie;
using namespace elfie::sim;

namespace {

std::string tempDir(const std::string &Name) {
  std::string D = testing::TempDir() + "/elfie_sim_" + Name;
  removeTree(D);
  createDirectories(D);
  return D;
}

// ---- Cache unit tests ----

TEST(Cache, HitAfterFill) {
  Cache C(1024, 2);
  EXPECT_FALSE(C.access(0x100, false));
  EXPECT_TRUE(C.access(0x100, false));
  EXPECT_TRUE(C.access(0x13f, false)) << "same 64B line";
  EXPECT_FALSE(C.access(0x140, false)) << "next line";
  EXPECT_EQ(C.hits(), 2u);
  EXPECT_EQ(C.misses(), 2u);
}

TEST(Cache, LRUEviction) {
  // 2-way, 2 sets (256 B): lines mapping to set 0 are multiples of 128.
  Cache C(256, 2);
  C.access(0, false);
  C.access(128, false);
  C.access(0, false);   // refresh line 0
  C.access(256, false); // evicts 128 (LRU)
  EXPECT_TRUE(C.contains(0));
  EXPECT_FALSE(C.contains(128));
  EXPECT_TRUE(C.contains(256));
  EXPECT_EQ(C.evictions(), 1u);
}

TEST(Cache, WorkingSetBiggerThanCacheThrashes) {
  Cache C(4096, 4);
  // Two passes over 16 KiB: everything misses both times.
  for (int Pass = 0; Pass < 2; ++Pass)
    for (uint64_t A = 0; A < 16384; A += 64)
      C.access(A, false);
  EXPECT_EQ(C.hits(), 0u);
  // Two passes over 2 KiB: second pass all hits.
  Cache C2(4096, 4);
  for (int Pass = 0; Pass < 2; ++Pass)
    for (uint64_t A = 0; A < 2048; A += 64)
      C2.access(A, false);
  EXPECT_EQ(C2.hits(), 32u);
}

TEST(Cache, InvalidateRemovesLine) {
  Cache C(1024, 2);
  C.access(0x200, true);
  EXPECT_TRUE(C.contains(0x200));
  C.invalidate(0x200);
  EXPECT_FALSE(C.contains(0x200));
}

TEST(TLBTest, PageGranularity) {
  TLB T(16);
  EXPECT_FALSE(T.access(0x1000));
  EXPECT_TRUE(T.access(0x1fff)) << "same page";
  EXPECT_FALSE(T.access(0x2000)) << "next page";
}

// ---- Branch predictor unit tests ----

TEST(GShare, LearnsLoopBranch) {
  GSharePredictor P(10);
  // Taken 100x, then one not-taken exit.
  unsigned Wrong = 0;
  for (int I = 0; I < 100; ++I)
    if (!P.predictAndUpdate(0x1000, true))
      ++Wrong;
  EXPECT_LT(Wrong, 5u);
  EXPECT_FALSE(P.predictAndUpdate(0x1000, false)) << "exit mispredicts";
}

TEST(GShare, RandomBranchMispredictsOften) {
  GSharePredictor P(10);
  RNG R(5);
  unsigned Wrong = 0;
  for (int I = 0; I < 2000; ++I)
    if (!P.predictAndUpdate(0x2000, (R.next() & 1) != 0))
      ++Wrong;
  EXPECT_GT(Wrong, 600u) << "random directions are unpredictable";
}

TEST(BTBTest, StableTargetPredicts) {
  BTB B(8);
  EXPECT_FALSE(B.predictAndUpdate(0x100, 0x500)); // cold
  EXPECT_TRUE(B.predictAndUpdate(0x100, 0x500));
  EXPECT_FALSE(B.predictAndUpdate(0x100, 0x600)) << "target changed";
}

// ---- Timing model behaviour ----

Expected<SimResult> simulateSource(const std::string &Src,
                                   const MachineConfig &M,
                                   RunControls Controls = {}) {
  auto Image = easm::assembleToELF(Src, "sim.s");
  if (!Image)
    return Image.takeError();
  return simulateBinaryImage(*Image, M, Controls);
}

TEST(TimingModel, CacheFriendlyBeatsPointerChasing) {
  using workloads::InputSet;
  auto Friendly = workloads::buildWorkload("x264_like", InputSet::Test);
  auto Hostile = workloads::buildWorkload("mcf_like", InputSet::Test);
  ASSERT_TRUE(Friendly.hasValue());
  ASSERT_TRUE(Hostile.hasValue());
  RunControls Controls;
  Controls.MaxInstructions = 400000;
  auto A = simulateBinaryImage(*Friendly, makeNehalemLike(), Controls);
  auto B = simulateBinaryImage(*Hostile, makeNehalemLike(), Controls);
  ASSERT_TRUE(A.hasValue()) << A.message();
  ASSERT_TRUE(B.hasValue()) << B.message();
  EXPECT_GT(A->Stats.ipc(), B->Stats.ipc() * 1.5)
      << "pointer chasing must pay for its cache misses";
}

TEST(TimingModel, HaswellBeatsNehalemOnMemoryBound) {
  using workloads::InputSet;
  auto Prog = workloads::buildWorkload("mcf_like", InputSet::Test);
  ASSERT_TRUE(Prog.hasValue());
  RunControls Controls;
  Controls.MaxInstructions = 400000;
  auto N = simulateBinaryImage(*Prog, makeNehalemLike(), Controls);
  auto H = simulateBinaryImage(*Prog, makeHaswellLike(), Controls);
  ASSERT_TRUE(N.hasValue());
  ASSERT_TRUE(H.hasValue());
  EXPECT_GT(H->Stats.ipc(), N->Stats.ipc())
      << "bigger ROB/L3 must help (Table V direction)";
}

TEST(TimingModel, BranchHeavyCodePaysForMispredicts) {
  // Data-dependent unpredictable branches vs a plain counted loop.
  std::string Unpredictable = R"(
_start:
  ldi r9, 50000
  ldi r3, 12345
loop:
  muli r3, r3, 1103515245
  addi r3, r3, 12345
  shri r4, r3, 16
  andi r4, r4, 1
  beqz r4, skip
  addi r5, r5, 1
skip:
  addi r9, r9, -1
  bnez r9, loop
  halt
)";
  std::string Predictable = R"(
_start:
  ldi r9, 50000
loop:
  addi r5, r5, 3
  muli r6, r5, 17
  shri r6, r6, 2
  addi r9, r9, -1
  bnez r9, loop
  halt
)";
  auto A = simulateSource(Unpredictable, makeNehalemLike());
  auto B = simulateSource(Predictable, makeNehalemLike());
  ASSERT_TRUE(A.hasValue()) << A.message();
  ASSERT_TRUE(B.hasValue()) << B.message();
  double MissRateA =
      static_cast<double>(A->Stats.Cores[0].BranchMispredicts) /
      A->Stats.Cores[0].Branches;
  double MissRateB =
      static_cast<double>(B->Stats.Cores[0].BranchMispredicts) /
      B->Stats.Cores[0].Branches;
  EXPECT_GT(MissRateA, 0.2);
  EXPECT_LT(MissRateB, 0.05);
  EXPECT_LT(B->Stats.cpi(), A->Stats.cpi());
}

TEST(TimingModel, FootprintTracksDistinctPages) {
  std::string Src = R"(
_start:
  la  r1, buf
  ldi r2, 0
loop:
  shli r3, r2, 12
  add  r3, r3, r1
  ld8  r4, 0(r3)
  addi r2, r2, 1
  slti r5, r2, 10
  bnez r5, loop
  halt
  .bss
  .align 8
buf: .space 40960
)";
  auto R = simulateSource(Src, makeNehalemLike());
  ASSERT_TRUE(R.hasValue()) << R.message();
  // 10 pages touched (plus a couple of prefetch pages at most).
  EXPECT_GE(R->Stats.UserDataPages.size(), 10u);
  EXPECT_LE(R->Stats.UserDataPages.size(), 14u);
}

TEST(FullSystem, KernelAddsInstructionsAndFootprint) {
  // A syscall-heavy region: full-system mode must add ring-0 work,
  // slow the run down, and enlarge the footprint (Table IV shape).
  std::string Src = R"(
_start:
  ldi r9, 400
loop:
  ldi r7, 8
  syscall
  ldi r2, 0
inner:
  addi r2, r2, 1
  slti r3, r2, 200
  bnez r3, inner
  addi r9, r9, -1
  bnez r9, loop
  halt
)";
  auto User = simulateSource(Src, makeSkylakeLike(false));
  auto Full = simulateSource(Src, makeSkylakeLike(true));
  ASSERT_TRUE(User.hasValue()) << User.message();
  ASSERT_TRUE(Full.hasValue()) << Full.message();
  EXPECT_EQ(User->Stats.totalRing0Instructions(), 0u);
  EXPECT_GT(Full->Stats.totalRing0Instructions(), 0u);
  EXPECT_EQ(Full->Stats.totalInstructions(),
            User->Stats.totalInstructions())
      << "ring-3 instruction count must be unchanged (Table IV)";
  EXPECT_GT(Full->Stats.totalCycles(), User->Stats.totalCycles());
  EXPECT_GT(Full->Stats.dataFootprintBytes(),
            User->Stats.dataFootprintBytes());
}

// ---- Front-ends ----

TEST(Frontend, ElfieAutoDetection) {
  std::string Dir = tempDir("elfie");
  auto PB = test::capture(Dir, test::computeProgram(), 5000, 8000,
                          pinball::LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();
  core::Pinball2ElfOptions Opts;
  Opts.TargetKind = core::Pinball2ElfOptions::Target::Guest;
  auto Image = core::pinballToElf(*PB, Opts);
  ASSERT_TRUE(Image.hasValue()) << Image.message();

  auto R = simulateBinaryImage(*Image, makeNehalemLike());
  ASSERT_TRUE(R.hasValue()) << R.message();
  EXPECT_TRUE(R->WasElfie);
  EXPECT_TRUE(R->MarkerSeen);
  // Budget from elfie_region_length: exactly the region is simulated.
  EXPECT_EQ(R->RoiRetired, 8000u);
  removeTree(Dir);
}

TEST(Frontend, JitDoesNotPerturbSimulation) {
  // `esim -jit`: the JIT may only run the pre-ROI fast-forward (the
  // detailed phase needs per-instruction callbacks, so the VM gates
  // compiled dispatch off under the timing observer). Every simulated
  // statistic must be identical with the JIT on and off, and the
  // SimResult must surface the JIT counters either way.
  std::string Dir = tempDir("jitsim");
  auto PB = test::capture(Dir, test::computeProgram(), 5000, 8000,
                          pinball::LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();
  core::Pinball2ElfOptions Opts;
  Opts.TargetKind = core::Pinball2ElfOptions::Target::Guest;
  auto Image = core::pinballToElf(*PB, Opts);
  ASSERT_TRUE(Image.hasValue()) << Image.message();

  vm::VMConfig JitCfg;
  JitCfg.EnableJit = true;
  JitCfg.JitThreshold = 1;
  auto RJit = simulateBinaryImage(*Image, makeNehalemLike(), {}, JitCfg);
  auto RInt = simulateBinaryImage(*Image, makeNehalemLike());
  ASSERT_TRUE(RJit.hasValue()) << RJit.message();
  ASSERT_TRUE(RInt.hasValue()) << RInt.message();
  EXPECT_EQ(RJit->RoiRetired, RInt->RoiRetired);
  EXPECT_EQ(RJit->MarkerSeen, RInt->MarkerSeen);
  EXPECT_EQ(RJit->Stats.totalInstructions(), RInt->Stats.totalInstructions());
  EXPECT_EQ(RJit->Stats.totalCycles(), RInt->Stats.totalCycles());
  EXPECT_EQ(RJit->Stats.dataFootprintBytes(),
            RInt->Stats.dataFootprintBytes());
  // The detailed phase never retires inside compiled code.
  EXPECT_EQ(RInt->JitStats.Hits, 0u);
  EXPECT_LE(RJit->JitStats.Hits + RJit->RoiRetired,
            RJit->RoiRetired + 200u)
      << "JIT hits must come only from the short pre-ROI startup stub";
  removeTree(Dir);
}

TEST(Frontend, ElfieSimulationSkipsStartupCode) {
  std::string Dir = tempDir("skip");
  auto PB = test::capture(Dir, test::computeProgram(), 5000, 5000,
                          pinball::LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue());
  core::Pinball2ElfOptions Opts;
  Opts.TargetKind = core::Pinball2ElfOptions::Target::Guest;
  auto Image = core::pinballToElf(*PB, Opts);
  ASSERT_TRUE(Image.hasValue());
  auto R = simulateBinaryImage(*Image, makeNehalemLike());
  ASSERT_TRUE(R.hasValue());
  // Detailed instructions == region length; the ~100 startup instructions
  // (register restores) are excluded by the marker gating (§III-C).
  EXPECT_EQ(R->Stats.totalInstructions(), 5000u);
  removeTree(Dir);
}

TEST(Frontend, PinballConstrainedVsUnconstrainedMT) {
  std::string Dir = tempDir("pbmt");
  auto PB = test::capture(Dir, test::multiThreadProgram(8, 4, 2000), 40000,
                          24000, pinball::LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();

  auto Constrained =
      simulatePinball(*PB, makeGainestown8(), /*Constrained=*/true);
  ASSERT_TRUE(Constrained.hasValue()) << Constrained.message();
  EXPECT_EQ(Constrained->RoiRetired, 24000u)
      << "constrained replay simulates exactly the recorded region";

  auto Free =
      simulatePinball(*PB, makeGainestown8(), /*Constrained=*/false);
  ASSERT_TRUE(Free.hasValue()) << Free.message();
  EXPECT_EQ(Free->RoiRetired, 24000u);
  // Both spread work over 8 cores.
  unsigned ActiveC = 0, ActiveF = 0;
  for (const auto &C : Constrained->Stats.Cores)
    if (C.Instructions)
      ++ActiveC;
  for (const auto &C : Free->Stats.Cores)
    if (C.Instructions)
      ++ActiveF;
  EXPECT_EQ(ActiveC, 8u);
  EXPECT_EQ(ActiveF, 8u);
  removeTree(Dir);
}

TEST(Frontend, StopPCCondition) {
  std::string Src = R"(
_start:
  ldi r9, 1000
loop:
  addi r9, r9, -1
  bnez r9, loop
  halt
)";
  RunControls Controls;
  Controls.StopPC = isa::TextBase + 16; // the addi inside the loop
  Controls.StopPCCount = 10;
  auto R = simulateSource(Src, makeNehalemLike(), Controls);
  ASSERT_TRUE(R.hasValue()) << R.message();
  EXPECT_EQ(R->Reason, vm::StopReason::Stopped);
  EXPECT_LT(R->RoiRetired, 100u);
}

TEST(Frontend, RegularProgramIsNotElfie) {
  auto Image = easm::assembleToELF("_start:\n  halt\n", "p.s");
  ASSERT_TRUE(Image.hasValue());
  auto R = simulateBinaryImage(*Image, makeNehalemLike());
  ASSERT_TRUE(R.hasValue());
  EXPECT_FALSE(R->WasElfie);
}

} // namespace
