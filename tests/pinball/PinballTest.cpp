//===- tests/pinball/PinballTest.cpp - Format + logger behaviour ----------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "pinball/Pinball.h"

#include "../common/TestHelpers.h"
#include "pinball/Logger.h"
#include "support/Sha256.h"

#include <gtest/gtest.h>

using namespace elfie;
using namespace elfie::pinball;
using test::capture;
using test::computeProgram;

namespace {

std::string tempDir(const std::string &Name) {
  std::string D = testing::TempDir() + "/elfie_pb_" + Name;
  removeTree(D);
  createDirectories(D);
  return D;
}

TEST(Logger, FatPinballCapturesRegion) {
  std::string Dir = tempDir("fat");
  auto PB = capture(Dir, computeProgram(), 1000, 20000,
                    LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();
  EXPECT_TRUE(PB->isFat());
  EXPECT_EQ(PB->Meta.RegionStart, 1000u);
  EXPECT_EQ(PB->Meta.RegionLength, 20000u);
  ASSERT_EQ(PB->Threads.size(), 1u);
  EXPECT_EQ(PB->Threads[0].RegionIcount, 20000u);
  // Fat pinball: everything in the image, no lazy records.
  EXPECT_TRUE(PB->Injects.empty());
  EXPECT_GT(PB->Image.size(), 2u); // text + data + stack at least
  // The schedule covers exactly the region.
  uint64_t Total = 0;
  for (const auto &S : PB->Schedule)
    Total += S.NumInsts;
  EXPECT_EQ(Total, 20000u);
  removeTree(Dir);
}

TEST(Logger, RegularPinballUsesLazyInjection) {
  std::string Dir = tempDir("regular");
  auto PB = capture(Dir, computeProgram(), 1000, 20000, LoggerOptions());
  ASSERT_TRUE(PB.hasValue()) << PB.message();
  EXPECT_FALSE(PB->isFat());
  EXPECT_TRUE(PB->Image.empty());
  EXPECT_GT(PB->Injects.size(), 0u);
  // First injection must be at icount 0 (the first instruction fetch).
  uint64_t MinIcount = UINT64_MAX;
  for (const auto &I : PB->Injects)
    MinIcount = std::min(MinIcount, I.FirstUseIcount);
  EXPECT_EQ(MinIcount, 0u);
  removeTree(Dir);
}

TEST(Logger, WholeImageCapturesUntouchedPages) {
  std::string Dir = tempDir("whole");
  LoggerOptions OnlyWhole;
  OnlyWhole.WholeImage = true;
  auto Whole = capture(Dir, computeProgram(), 1000, 100, OnlyWhole);
  ASSERT_TRUE(Whole.hasValue()) << Whole.message();
  auto Regular = capture(Dir, computeProgram(), 1000, 100, LoggerOptions());
  ASSERT_TRUE(Regular.hasValue()) << Regular.message();
  // A 100-instruction region touches few pages; the whole image holds all
  // mapped pages (text + data + full stack), strictly more.
  EXPECT_GT(Whole->Image.size(), Regular->Injects.size());
  removeTree(Dir);
}

TEST(Logger, FatPinballLargerThanRegular) {
  // Paper §II-A: "a fat pinball can be much larger than a regular pinball".
  std::string Dir = tempDir("size");
  auto Fat =
      capture(Dir, computeProgram(), 1000, 100, LoggerOptions::fat());
  auto Regular = capture(Dir, computeProgram(), 1000, 100, LoggerOptions());
  ASSERT_TRUE(Fat.hasValue());
  ASSERT_TRUE(Regular.hasValue());
  EXPECT_GT(Fat->imageBytes(), Regular->imageBytes());
  removeTree(Dir);
}

TEST(Logger, CapturedPagesHoldRegionStartContents) {
  // The lazy capture must record page contents as of region start, not as
  // of first touch after later writes. We verify by comparing against a
  // reference run stopped at region start.
  std::string Dir = tempDir("contents");
  const uint64_t Start = 5000;
  auto PB = capture(Dir, computeProgram(), Start, 30000,
                    LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();

  auto Ref = test::makeVM(computeProgram(), nullptr);
  ASSERT_NE(Ref, nullptr);
  ASSERT_EQ(Ref->run(Start).Reason, vm::StopReason::BudgetReached);
  for (const PageRecord &P : PB->Image) {
    const uint8_t *Page = Ref->mem().pageData(P.Addr);
    ASSERT_NE(Page, nullptr) << "page " << std::hex << P.Addr;
    // Content comparison via the collision-resistant content hash; the
    // old fnv1a comparison could in principle pass on differing pages.
    EXPECT_EQ(sha256Hex(P.Bytes.data(), P.Bytes.size()),
              sha256Hex(Page, vm::GuestPageSize))
        << "page contents differ at " << std::hex << P.Addr;
  }
  removeTree(Dir);
}

TEST(Logger, RegistersMatchReferenceRun) {
  std::string Dir = tempDir("regs");
  const uint64_t Start = 7777;
  auto PB =
      capture(Dir, computeProgram(), Start, 1000, LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();

  auto Ref = test::makeVM(computeProgram(), nullptr);
  ASSERT_EQ(Ref->run(Start).Reason, vm::StopReason::BudgetReached);
  const vm::ThreadState *T = Ref->thread(0);
  ASSERT_EQ(PB->Threads.size(), 1u);
  EXPECT_EQ(PB->Threads[0].PC, T->PC);
  for (unsigned I = 0; I < isa::NumGPRs; ++I)
    EXPECT_EQ(PB->Threads[0].GPR[I], T->GPR[I]) << "GPR " << I;
  removeTree(Dir);
}

TEST(Logger, SyscallsRecordedWithSideEffects) {
  std::string Dir = tempDir("syscalls");
  // Create the input file the program reads.
  std::string Data(256, '\0');
  for (size_t I = 0; I < Data.size(); ++I)
    Data[I] = static_cast<char>(I);
  writeFileText(Dir + "/data.bin", Data);
  vm::VMConfig Config;
  Config.FsRoot = Dir;
  // Region covers the read loop (starts after the padding loop).
  auto PB = capture(Dir, test::fileReaderProgram(), 16000, 2000,
                    LoggerOptions::fat(), Config);
  ASSERT_TRUE(PB.hasValue()) << PB.message();
  // Region must contain read() records with memory side effects.
  unsigned Reads = 0;
  for (const SyscallRecord &S : PB->Syscalls) {
    if (S.Nr == static_cast<uint64_t>(isa::Sys::Read)) {
      ++Reads;
      ASSERT_EQ(S.MemWrites.size(), 1u);
      EXPECT_EQ(S.MemWrites[0].Bytes.size(),
                static_cast<size_t>(S.Result));
    }
  }
  EXPECT_GT(Reads, 0u);
  removeTree(Dir);
}

TEST(Logger, RegionTruncatedAtProgramExit) {
  std::string Dir = tempDir("trunc");
  // Ask for far more instructions than the program has.
  auto PB = capture(Dir, computeProgram(), 1000, 100000000,
                    LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();
  EXPECT_LT(PB->Meta.RegionLength, 100000000u);
  EXPECT_GT(PB->Meta.RegionLength, 10000u);
  removeTree(Dir);
}

TEST(Logger, FailsWhenRegionStartBeyondExit) {
  std::string Dir = tempDir("beyond");
  auto PB = capture(Dir, computeProgram(), 100000000, 100,
                    LoggerOptions::fat());
  ASSERT_FALSE(PB.hasValue());
  EXPECT_NE(PB.message().find("before the region start"), std::string::npos);
  removeTree(Dir);
}

TEST(Logger, MultiThreadedCapture) {
  std::string Dir = tempDir("mt");
  // Fast-forward past thread creation so all 8 threads exist at region
  // start, then capture a slice of the parallel phase.
  auto PB = capture(Dir, test::multiThreadProgram(), 40000, 30000,
                    LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();
  EXPECT_EQ(PB->Threads.size(), 8u);
  // All threads should have executed in the region (active-wait spinning).
  std::set<uint32_t> Seen;
  for (const auto &S : PB->Schedule)
    Seen.insert(S.Tid);
  EXPECT_EQ(Seen.size(), 8u);
  uint64_t TotalPerThread = 0;
  for (const auto &T : PB->Threads)
    TotalPerThread += T.RegionIcount;
  EXPECT_EQ(TotalPerThread, PB->Meta.RegionLength);
  removeTree(Dir);
}

// ---- Serialization ----

TEST(PinballFormat, SaveLoadRoundTrip) {
  std::string Dir = tempDir("roundtrip");
  auto PB = capture(Dir, computeProgram(), 2000, 5000, LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();
  PB->Meta.ProgramName = "compute";

  std::string PBDir = Dir + "/region.pb";
  ASSERT_FALSE(PB->save(PBDir).isError());
  auto Loaded = Pinball::load(PBDir);
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.message();

  EXPECT_EQ(Loaded->Meta.ProgramName, "compute");
  EXPECT_EQ(Loaded->Meta.RegionStart, PB->Meta.RegionStart);
  EXPECT_EQ(Loaded->Meta.RegionLength, PB->Meta.RegionLength);
  EXPECT_EQ(Loaded->Meta.StackTop, PB->Meta.StackTop);
  EXPECT_EQ(Loaded->Meta.BrkAtStart, PB->Meta.BrkAtStart);
  ASSERT_EQ(Loaded->Image.size(), PB->Image.size());
  for (size_t I = 0; I < PB->Image.size(); ++I) {
    EXPECT_EQ(Loaded->Image[I].Addr, PB->Image[I].Addr);
    EXPECT_EQ(Loaded->Image[I].Perm, PB->Image[I].Perm);
    EXPECT_EQ(Loaded->Image[I].Bytes, PB->Image[I].Bytes);
  }
  ASSERT_EQ(Loaded->Threads.size(), PB->Threads.size());
  EXPECT_EQ(Loaded->Threads[0].PC, PB->Threads[0].PC);
  EXPECT_EQ(Loaded->Threads[0].RegionIcount, PB->Threads[0].RegionIcount);
  ASSERT_EQ(Loaded->Syscalls.size(), PB->Syscalls.size());
  ASSERT_EQ(Loaded->Schedule.size(), PB->Schedule.size());
  EXPECT_EQ(Loaded->OutputLog, PB->OutputLog);
  removeTree(Dir);
}

TEST(PinballFormat, LoadMissingDirectoryFails) {
  auto R = Pinball::load("/nonexistent/pinball/dir");
  ASSERT_FALSE(R.hasValue());
}

TEST(PinballFormat, LoadRejectsCorruptMeta) {
  std::string Dir = tempDir("corrupt_meta");
  auto PB = capture(Dir, computeProgram(), 100, 100, LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue());
  std::string PBDir = Dir + "/r.pb";
  ASSERT_FALSE(PB->save(PBDir).isError());
  writeFileText(PBDir + "/meta", "garbage");
  auto R = Pinball::load(PBDir);
  ASSERT_FALSE(R.hasValue());
  EXPECT_NE(R.message().find("meta"), std::string::npos);
  removeTree(Dir);
}

TEST(PinballFormat, LoadRejectsTruncatedImage) {
  std::string Dir = tempDir("corrupt_image");
  auto PB = capture(Dir, computeProgram(), 100, 1000, LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue());
  std::string PBDir = Dir + "/r.pb";
  ASSERT_FALSE(PB->save(PBDir).isError());
  auto Bytes = readFileBytes(PBDir + "/image.text");
  ASSERT_TRUE(Bytes.hasValue());
  Bytes->resize(Bytes->size() / 2);
  ASSERT_FALSE(
      writeFile(PBDir + "/image.text", Bytes->data(), Bytes->size())
          .isError());
  auto R = Pinball::load(PBDir);
  ASSERT_FALSE(R.hasValue());
  EXPECT_NE(R.message().find("truncated"), std::string::npos);
  removeTree(Dir);
}

TEST(PinballFormat, LoadRejectsMissingRegFile) {
  std::string Dir = tempDir("missing_reg");
  auto PB = capture(Dir, computeProgram(), 100, 1000, LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue());
  std::string PBDir = Dir + "/r.pb";
  ASSERT_FALSE(PB->save(PBDir).isError());
  removeFile(PBDir + "/t0.reg");
  EXPECT_FALSE(Pinball::load(PBDir).hasValue());
  removeTree(Dir);
}

TEST(PinballFormat, AllPagesCombinesImageAndInjects) {
  Pinball PB;
  PB.Image.resize(2);
  PB.Injects.resize(3);
  EXPECT_EQ(PB.allPages().size(), 5u);
  EXPECT_EQ(PB.imageBytes(), 5 * vm::GuestPageSize);
}

/// A minimal hand-built pinball with the given thread ids.
Pinball pinballWithTids(const std::vector<uint32_t> &Tids) {
  Pinball PB;
  PB.Meta.ProgramName = "sparse";
  PB.Meta.RegionLength = 100;
  for (uint32_t Tid : Tids) {
    ThreadRegs T;
    T.Tid = Tid;
    T.PC = 0x10000 + Tid * 8;
    T.GPR[1] = Tid * 100;
    T.RegionIcount = 10;
    PB.Threads.push_back(T);
  }
  return PB;
}

TEST(PinballFormat, SparseTidsRoundTrip) {
  // save() names register files t<Tid>.reg; load() used to guess
  // t0..t{N-1} from the thread count and fail on sparse tids (e.g. a
  // region captured after thread 1 exited).
  std::string Dir = tempDir("sparse_tids");
  Pinball PB = pinballWithTids({0, 2, 5});
  std::string PBDir = Dir + "/r.pb";
  ASSERT_FALSE(PB.save(PBDir).isError());

  auto Loaded = Pinball::load(PBDir);
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.message();
  ASSERT_EQ(Loaded->Threads.size(), 3u);
  EXPECT_EQ(Loaded->Threads[0].Tid, 0u);
  EXPECT_EQ(Loaded->Threads[1].Tid, 2u);
  EXPECT_EQ(Loaded->Threads[2].Tid, 5u);
  EXPECT_EQ(Loaded->Threads[2].GPR[1], 500u);
  EXPECT_NE(Loaded->threadRegs(5), nullptr);
  removeTree(Dir);
}

TEST(PinballFormat, RegFileCountMismatchReported) {
  std::string Dir = tempDir("reg_count");
  Pinball PB = pinballWithTids({0, 1, 2});
  std::string PBDir = Dir + "/r.pb";
  ASSERT_FALSE(PB.save(PBDir).isError());
  removeFile(PBDir + "/t1.reg");
  auto R = Pinball::load(PBDir);
  ASSERT_FALSE(R.hasValue());
  EXPECT_NE(R.message().find("t*.reg"), std::string::npos);
  removeTree(Dir);
}

TEST(PinballFormat, TruncatedHeaderDistinctFromBadMagic) {
  std::string Dir = tempDir("header_diag");
  Pinball PB = pinballWithTids({0});
  std::string PBDir = Dir + "/r.pb";
  ASSERT_FALSE(PB.save(PBDir).isError());

  // A file shorter than the 12-byte header is "truncated", not "bad
  // magic" (the reader used to return zeros for the missing fields and
  // misreport the magic as wrong).
  writeFileText(PBDir + "/meta", "xy");
  auto Short = Pinball::load(PBDir);
  ASSERT_FALSE(Short.hasValue());
  EXPECT_NE(Short.message().find("truncated"), std::string::npos)
      << Short.message();
  EXPECT_EQ(Short.message().find("magic"), std::string::npos)
      << Short.message();

  // A full-length header with the wrong magic is "not a pinball".
  writeFileText(PBDir + "/meta", "this is not a pinball header");
  auto Bad = Pinball::load(PBDir);
  ASSERT_FALSE(Bad.hasValue());
  EXPECT_NE(Bad.message().find("magic"), std::string::npos)
      << Bad.message();
  removeTree(Dir);
}

} // namespace
