//===- tests/replay/JitDifferentialTest.cpp - JIT lockstep differential ---===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// The JIT acceptance suite (`ctest -L jit`): two VMs — one interpreting,
/// one JIT-dispatching — are driven in lockstep over every example guest
/// pipeline in odd-sized budget chunks, and after every chunk the *entire*
/// architectural state is compared: per-thread PC, GPRs, FPR bit patterns,
/// retired counts, plus periodic whole-address-space digests. A chunk
/// boundary is an arbitrary instruction boundary, so this proves the
/// compiled blocks' exit paths account retirement exactly — not just that
/// final results agree.
///
/// The replay-level half captures pinballs and replays them constrained
/// and injection-less with the JIT on and off, pinning the batched
/// runThread() schedule-slice path against the reference.
///
//===----------------------------------------------------------------------===//

#include "replay/Replayer.h"

#include "../common/TestHelpers.h"
#include "pinball/Logger.h"

#include <gtest/gtest.h>

#include <cstring>
#include <tuple>

using namespace elfie;
using namespace elfie::replay;
using pinball::LoggerOptions;
using test::capture;
using test::computeProgram;
using test::makeVM;
using test::multiThreadProgram;

namespace {

std::string tempDir(const std::string &Name) {
  std::string D = testing::TempDir() + "/elfie_jitdiff_" + Name;
  removeTree(D);
  createDirectories(D);
  return D;
}

/// FNV-1a over every mapped page (address, permissions, contents): equal
/// digests mean the two guests' address spaces are byte-identical.
uint64_t memDigest(vm::VM &M) {
  uint64_t H = 1469598103934665603ull;
  auto Mix = [&H](const void *P, size_t N) {
    const uint8_t *B = static_cast<const uint8_t *>(P);
    for (size_t I = 0; I < N; ++I) {
      H ^= B[I];
      H *= 1099511628211ull;
    }
  };
  M.mem().forEachPage(
      [&](uint64_t Addr, uint8_t Perm, const uint8_t *Bytes) {
        Mix(&Addr, sizeof(Addr));
        Mix(&Perm, sizeof(Perm));
        Mix(Bytes, vm::GuestPageSize);
      });
  return H;
}

void compareThreads(vm::VM &MI, vm::VM &MJ, uint64_t Round) {
  std::vector<uint32_t> IdsI = MI.threadIds();
  ASSERT_EQ(IdsI, MJ.threadIds()) << "round " << Round;
  for (uint32_t Tid : IdsI) {
    const vm::ThreadState *TI = MI.thread(Tid);
    const vm::ThreadState *TJ = MJ.thread(Tid);
    ASSERT_NE(TI, nullptr);
    ASSERT_NE(TJ, nullptr);
    ASSERT_EQ(TI->PC, TJ->PC) << "tid " << Tid << " round " << Round;
    ASSERT_EQ(TI->Retired, TJ->Retired) << "tid " << Tid;
    ASSERT_EQ(TI->Exited, TJ->Exited) << "tid " << Tid;
    for (unsigned K = 0; K < isa::NumGPRs; ++K)
      ASSERT_EQ(TI->GPR[K], TJ->GPR[K])
          << "GPR " << K << " tid " << Tid << " round " << Round;
    for (unsigned K = 0; K < isa::NumFPRs; ++K) {
      uint64_t BI, BJ; // bit compare: NaN payloads must match too
      std::memcpy(&BI, &TI->FPR[K], 8);
      std::memcpy(&BJ, &TJ->FPR[K], 8);
      ASSERT_EQ(BI, BJ) << "FPR " << K << " tid " << Tid;
    }
  }
}

/// Drives an interpreter VM and a JIT VM over \p Src in \p Chunk-sized
/// budget slices, comparing full state at every boundary.
void lockstep(const std::string &Src, vm::VMConfig Base, uint64_t Chunk,
              std::vector<std::string> Args = {}) {
  vm::VMConfig CI = Base, CJ = Base;
  CI.EnableJit = false;
  CJ.EnableJit = true;
  CJ.JitThreshold = 4; // promote early so the chunks actually hit the JIT
  auto OutI = std::make_shared<std::string>();
  auto OutJ = std::make_shared<std::string>();
  auto MI = makeVM(Src, OutI, CI, Args);
  auto MJ = makeVM(Src, OutJ, CJ, Args);
  ASSERT_TRUE(MI);
  ASSERT_TRUE(MJ);

  uint64_t Round = 0;
  while (true) {
    vm::RunResult RI = MI->run(Chunk);
    vm::RunResult RJ = MJ->run(Chunk);
    ASSERT_EQ(RI.Reason, RJ.Reason) << "round " << Round;
    ASSERT_EQ(MI->globalRetired(), MJ->globalRetired())
        << "round " << Round;
    compareThreads(*MI, *MJ, Round);
    if (Round % 8 == 0) {
      ASSERT_EQ(memDigest(*MI), memDigest(*MJ)) << "round " << Round;
    }
    if (RI.Reason != vm::StopReason::BudgetReached) {
      EXPECT_EQ(RI.ExitCode, RJ.ExitCode);
      break;
    }
    ASSERT_LT(++Round, 1000000u) << "lockstep failed to converge";
  }
  EXPECT_EQ(*OutI, *OutJ);
  EXPECT_EQ(memDigest(*MI), memDigest(*MJ));
#if defined(__x86_64__)
  EXPECT_GT(MJ->jitStats().Hits, 0u)
      << "the JIT VM never dispatched compiled code — the differential "
         "silently degenerated to interpreter vs interpreter";
#endif
}

TEST(JitDifferential, ComputeProgramLockstep) {
  lockstep(computeProgram(), vm::VMConfig(), 997);
}

TEST(JitDifferential, ComputeProgramLockstepTinyChunks) {
  // Chunks far below block size force constant countdown exits and
  // mid-block interpreter handoffs.
  lockstep(computeProgram(), vm::VMConfig(), 37);
}

TEST(JitDifferential, MultiThreadedLockstep) {
  lockstep(multiThreadProgram(4, 2, 300), vm::VMConfig(), 1009);
}

TEST(JitDifferential, MultiThreadedSeededScheduleLockstep) {
  // The jittered quantum draws from the scheduler RNG; JIT dispatch must
  // consume quanta exactly like interpretation or the draw sequence (and
  // with it every subsequent interleaving) skews.
  vm::VMConfig Base;
  Base.ScheduleSeed = 0xC0FFEE;
  lockstep(multiThreadProgram(4, 2, 300), Base, 1009);
}

TEST(JitDifferential, ClockProgramLockstep) {
  // The virtual clock reads TimeBaseNs + retired * NsPerInst: any drift in
  // retirement accounting changes the guest-visible clock values.
  lockstep(test::clockProgram(), vm::VMConfig(), 499);
}

TEST(JitDifferential, FileReaderLockstep) {
  std::string Dir = tempDir("file");
  std::string Data(256, '\0');
  for (size_t I = 0; I < Data.size(); ++I)
    Data[I] = static_cast<char>(7 * I);
  writeFileText(Dir + "/data.bin", Data);
  vm::VMConfig Base;
  Base.FsRoot = Dir;
  lockstep(test::fileReaderProgram(), Base, 611);
  removeTree(Dir);
}

// -------------------------------------------------------------------------
// Replay-level differential: same pinball, JIT on vs off.
// -------------------------------------------------------------------------

void expectSameReplay(const ReplayResult &A, const ReplayResult &B) {
  EXPECT_EQ(A.Reason, B.Reason);
  EXPECT_EQ(A.Retired, B.Retired);
  EXPECT_EQ(A.Stdout, B.Stdout);
  EXPECT_EQ(A.Divergence, B.Divergence);
  ASSERT_EQ(A.RetiredPerThread.size(), B.RetiredPerThread.size());
  for (const auto &[Tid, N] : A.RetiredPerThread) {
    ASSERT_TRUE(B.RetiredPerThread.count(Tid));
    EXPECT_EQ(N, B.RetiredPerThread.at(Tid)) << "tid " << Tid;
  }
  ASSERT_EQ(A.FinalThreads.size(), B.FinalThreads.size());
  for (const auto &[Tid, TA] : A.FinalThreads) {
    ASSERT_TRUE(B.FinalThreads.count(Tid));
    const vm::ThreadState &TB = B.FinalThreads.at(Tid);
    EXPECT_EQ(TA.PC, TB.PC) << "tid " << Tid;
    for (unsigned K = 0; K < isa::NumGPRs; ++K)
      EXPECT_EQ(TA.GPR[K], TB.GPR[K]) << "GPR " << K << " tid " << Tid;
    for (unsigned K = 0; K < isa::NumFPRs; ++K) {
      uint64_t BI, BJ;
      std::memcpy(&BI, &TA.FPR[K], 8);
      std::memcpy(&BJ, &TB.FPR[K], 8);
      EXPECT_EQ(BI, BJ) << "FPR " << K << " tid " << Tid;
    }
  }
}

void replayDifferential(const pinball::Pinball &PB, bool Injection,
                        bool ExpectClean) {
  ReplayOptions OI;
  OI.Injection = Injection;
  ReplayOptions OJ = OI;
  OJ.Config.EnableJit = true;
  OJ.Config.JitThreshold = 4;
  auto RI = replayPinball(PB, OI);
  auto RJ = replayPinball(PB, OJ);
  ASSERT_TRUE(RI.hasValue()) << RI.message();
  ASSERT_TRUE(RJ.hasValue()) << RJ.message();
  if (ExpectClean) {
    EXPECT_TRUE(RI->Divergence.empty()) << RI->Divergence;
    EXPECT_TRUE(RJ->Divergence.empty()) << RJ->Divergence;
  }
  expectSameReplay(*RI, *RJ);
#if defined(__x86_64__)
  EXPECT_GT(RJ->JitStats.Hits, 0u);
  EXPECT_EQ(RI->JitStats.Hits, 0u);
#endif
}

TEST(JitDifferential, ConstrainedReplayCompute) {
  std::string Dir = tempDir("rp_compute");
  auto PB = capture(Dir, computeProgram(), 3000, 25000, LoggerOptions());
  ASSERT_TRUE(PB.hasValue()) << PB.message();
  replayDifferential(*PB, /*Injection=*/true, /*ExpectClean=*/true);
  removeTree(Dir);
}

TEST(JitDifferential, InjectionlessReplayCompute) {
  std::string Dir = tempDir("rp_compute_free");
  auto PB = capture(Dir, computeProgram(), 3000, 25000,
                    LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();
  replayDifferential(*PB, /*Injection=*/false, /*ExpectClean=*/false);
  removeTree(Dir);
}

TEST(JitDifferential, ConstrainedReplayClock) {
  // Non-repeatable syscalls: the recorded clock values are injected, and
  // the injected results must land identically under compiled dispatch
  // (the syscall bails; the interceptor still fires).
  std::string Dir = tempDir("rp_clock");
  auto PB = capture(Dir, test::clockProgram(), 4000, 8000,
                    LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();
  ASSERT_GT(PB->Syscalls.size(), 0u);
  replayDifferential(*PB, /*Injection=*/true, /*ExpectClean=*/true);
  removeTree(Dir);
}

TEST(JitDifferential, ConstrainedReplayMultiThreaded) {
  // The batched runThread() path under recorded schedule slices: the JIT
  // must respect every slice boundary and lazy page-injection point.
  std::string Dir = tempDir("rp_mt");
  auto PB = capture(Dir, multiThreadProgram(4, 3, 800), 2000, 30000,
                    LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();
  ASSERT_GT(PB->Schedule.size(), 1u);
  replayDifferential(*PB, /*Injection=*/true, /*ExpectClean=*/true);
  removeTree(Dir);
}

} // namespace
