//===- tests/replay/ReplayTest.cpp - Constrained replay fidelity ----------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// The backbone differential test: constrained replay of a pinball must
/// reproduce the logged execution bit-exactly — same per-thread retired
/// counts, same final architectural state as a reference run of the
/// original program.
///
//===----------------------------------------------------------------------===//

#include "replay/Replayer.h"

#include "../common/TestHelpers.h"
#include "pinball/Logger.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace elfie;
using namespace elfie::replay;
using pinball::LoggerOptions;
using test::capture;
using test::computeProgram;

namespace {

std::string tempDir(const std::string &Name) {
  std::string D = testing::TempDir() + "/elfie_rp_" + Name;
  removeTree(D);
  createDirectories(D);
  return D;
}

/// Runs the original program to Start+Len and returns the final state of
/// thread 0 for comparison.
vm::ThreadState referenceState(const std::string &Src, uint64_t Start,
                               uint64_t Len,
                               vm::VMConfig Config = vm::VMConfig()) {
  auto M = test::makeVM(Src, nullptr, Config);
  EXPECT_EQ(M->run(Start + Len).Reason, vm::StopReason::BudgetReached);
  return *M->thread(0);
}

void expectSameRegs(const vm::ThreadState &A, const vm::ThreadState &B) {
  EXPECT_EQ(A.PC, B.PC);
  for (unsigned I = 0; I < isa::NumGPRs; ++I)
    EXPECT_EQ(A.GPR[I], B.GPR[I]) << "GPR " << I;
  for (unsigned I = 0; I < isa::NumFPRs; ++I)
    EXPECT_EQ(A.FPR[I], B.FPR[I]) << "FPR " << I;
}

class ReplayFidelity : public testing::TestWithParam<bool> {};

TEST_P(ReplayFidelity, ReplayMatchesReferenceRun) {
  bool Fat = GetParam();
  std::string Dir = tempDir(Fat ? "fid_fat" : "fid_reg");
  const uint64_t Start = 3000, Len = 25000;
  auto PB = capture(Dir, computeProgram(), Start, Len,
                    Fat ? LoggerOptions::fat() : LoggerOptions());
  ASSERT_TRUE(PB.hasValue()) << PB.message();

  ReplayOptions Opts;
  auto R = replayPinball(*PB, Opts);
  ASSERT_TRUE(R.hasValue()) << R.message();
  EXPECT_TRUE(R->Divergence.empty()) << R->Divergence;
  EXPECT_EQ(R->Retired, Len);
  EXPECT_TRUE(R->SyscallLogFullyConsumed);

  // Final state must equal the reference run stopped at Start+Len.
  vm::ThreadState Ref = referenceState(computeProgram(), Start, Len);
  expectSameRegs(R->FinalThreads.at(0), Ref);
  EXPECT_EQ(R->RetiredPerThread.at(0), PB->Threads[0].RegionIcount);
  removeTree(Dir);
}

INSTANTIATE_TEST_SUITE_P(FatAndRegular, ReplayFidelity,
                         testing::Values(true, false));

TEST(Replay, InjectionReproducesNonRepeatableSyscalls) {
  // The clock program's result depends on clock_gettime values. A replay
  // starting mid-program re-executes the same loop; with injection, the
  // recorded clock values are fed back, so the accumulator develops
  // exactly as logged.
  std::string Dir = tempDir("clock");
  const uint64_t Start = 4000, Len = 8000;
  auto PB = capture(Dir, test::clockProgram(), Start, Len,
                    LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();
  ASSERT_GT(PB->Syscalls.size(), 0u);

  auto R = replayPinball(*PB);
  ASSERT_TRUE(R.hasValue()) << R.message();
  EXPECT_TRUE(R->Divergence.empty()) << R->Divergence;
  EXPECT_TRUE(R->SyscallLogFullyConsumed);
  EXPECT_EQ(R->Retired, Len);
}

TEST(Replay, FileReadWorksWithoutTheFile) {
  // Paper §I-A: "The region pinball replay will skip the file read and
  // return the stored results". The file does not exist in the replay
  // environment, yet constrained replay succeeds.
  std::string Dir = tempDir("file");
  std::string Data(256, '\0');
  for (size_t I = 0; I < Data.size(); ++I)
    Data[I] = static_cast<char>(3 * I);
  writeFileText(Dir + "/data.bin", Data);
  vm::VMConfig Config;
  Config.FsRoot = Dir;
  // Region sits in the middle of the read loop (the file was opened well
  // before the region).
  auto PB = capture(Dir, test::fileReaderProgram(), 15200, 600,
                    LoggerOptions::fat(), Config);
  ASSERT_TRUE(PB.hasValue()) << PB.message();
  unsigned Reads = 0;
  for (const auto &S : PB->Syscalls)
    if (S.Nr == static_cast<uint64_t>(isa::Sys::Read))
      ++Reads;
  ASSERT_GT(Reads, 0u) << "region must contain file reads";

  // Replay in an empty FsRoot: injection makes it succeed anyway.
  std::string Empty = tempDir("file_empty");
  ReplayOptions Opts;
  Opts.Config.FsRoot = Empty;
  auto R = replayPinball(*PB, Opts);
  ASSERT_TRUE(R.hasValue()) << R.message();
  EXPECT_TRUE(R->Divergence.empty()) << R->Divergence;
  EXPECT_EQ(R->Retired, 600u);

  // The same region with injection disabled re-executes read() natively
  // against a dead fd — exactly the ELFie system-call challenge (§II-C2):
  // the reads fail, so the accumulated checksum in r10 differs from the
  // injected replay.
  ReplayOptions NoInj;
  NoInj.Injection = false;
  NoInj.Config.FsRoot = Empty;
  auto R2 = replayPinball(*PB, NoInj);
  ASSERT_TRUE(R2.hasValue()) << R2.message();
  EXPECT_NE(R2->FinalThreads.at(0).GPR[10], R->FinalThreads.at(0).GPR[10]);
  removeTree(Dir);
  removeTree(Empty);
}

TEST(Replay, InjectionZeroMimicsUnconstrainedExecution) {
  // For a pure-compute region injection=0 must still reproduce execution
  // (no syscalls to diverge on).
  std::string Dir = tempDir("inj0");
  const uint64_t Start = 2000, Len = 10000;
  auto PB = capture(Dir, computeProgram(), Start, Len,
                    LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();
  ReplayOptions Opts;
  Opts.Injection = false;
  auto R = replayPinball(*PB, Opts);
  ASSERT_TRUE(R.hasValue()) << R.message();
  EXPECT_EQ(R->Reason, vm::StopReason::BudgetReached);
  EXPECT_EQ(R->Retired, Len);
}

TEST(Replay, RegularPinballInjectsPagesLazily) {
  // Lazy page injection must deliver each page before its first use; a
  // successful full-length replay of a regular pinball proves it.
  std::string Dir = tempDir("lazy");
  auto PB = capture(Dir, computeProgram(), 4096, 30000, LoggerOptions());
  ASSERT_TRUE(PB.hasValue()) << PB.message();
  EXPECT_TRUE(PB->Image.empty());
  auto R = replayPinball(*PB);
  ASSERT_TRUE(R.hasValue()) << R.message();
  EXPECT_TRUE(R->Divergence.empty()) << R->Divergence;
  EXPECT_EQ(R->Retired, 30000u);
  removeTree(Dir);
}

TEST(Replay, MultiThreadedScheduleEnforced) {
  std::string Dir = tempDir("mt");
  const uint64_t Start = 40000, Len = 20000;
  auto PB = capture(Dir, test::multiThreadProgram(), Start, Len,
                    LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();
  ASSERT_EQ(PB->Threads.size(), 8u);

  auto R = replayPinball(*PB);
  ASSERT_TRUE(R.hasValue()) << R.message();
  EXPECT_TRUE(R->Divergence.empty()) << R->Divergence;
  EXPECT_EQ(R->Retired, Len);
  // Constrained replay reproduces each thread's instruction count exactly.
  for (const auto &T : PB->Threads)
    EXPECT_EQ(R->RetiredPerThread.at(T.Tid), T.RegionIcount)
        << "thread " << T.Tid;
  removeTree(Dir);
}

TEST(Replay, MultiThreadedReplayDeterministicAcrossRuns) {
  std::string Dir = tempDir("mtdet");
  auto PB = capture(Dir, test::multiThreadProgram(), 40000, 15000,
                    LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();
  auto A = replayPinball(*PB);
  auto B = replayPinball(*PB);
  ASSERT_TRUE(A.hasValue());
  ASSERT_TRUE(B.hasValue());
  EXPECT_EQ(A->RetiredPerThread, B->RetiredPerThread);
  removeTree(Dir);
}

TEST(Replay, InjectionZeroMTDiffersFromConstrained) {
  // Unconstrained (ELFie-style) multi-threaded execution lets spin loops
  // run freely; with a different scheduler seed the per-thread instruction
  // mix generally differs from the recorded one (paper §IV-B, Fig. 11).
  std::string Dir = tempDir("mtfree");
  auto PB = capture(Dir, test::multiThreadProgram(), 40000, 20000,
                    LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();

  ReplayOptions Free;
  Free.Injection = false;
  Free.Config.ScheduleSeed = 987654321; // different interleaving
  auto R = replayPinball(*PB, Free);
  ASSERT_TRUE(R.hasValue()) << R.message();
  // Same global budget...
  EXPECT_EQ(R->Retired, 20000u);
  // ...but the per-thread split need not match the recording. (With 8
  // threads of spin-wait code a different interleaving virtually always
  // shifts instructions between threads; tolerate the rare exact match by
  // only requiring that the run completed.)
  removeTree(Dir);
}

TEST(Replay, BudgetOverrideStopsEarly) {
  std::string Dir = tempDir("budget");
  auto PB = capture(Dir, computeProgram(), 1000, 10000,
                    LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue());
  ReplayOptions Opts;
  Opts.MaxInstructions = 500;
  auto R = replayPinball(*PB, Opts);
  ASSERT_TRUE(R.hasValue()) << R.message();
  EXPECT_EQ(R->Retired, 500u);
  removeTree(Dir);
}

TEST(Replay, ObserverSeesReplayedInstructions) {
  class Counter : public vm::Observer {
  public:
    uint64_t N = 0;
    void onInstruction(const vm::ThreadState &, uint64_t,
                       const isa::Inst &) override {
      ++N;
    }
  };
  std::string Dir = tempDir("observer");
  auto PB = capture(Dir, computeProgram(), 1000, 5000, LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue());
  Counter C;
  ReplayOptions Opts;
  Opts.Obs = &C;
  auto R = replayPinball(*PB, Opts);
  ASSERT_TRUE(R.hasValue());
  EXPECT_EQ(C.N, 5000u);
  removeTree(Dir);
}

TEST(Replay, CorruptScheduleDetected) {
  std::string Dir = tempDir("badsched");
  auto PB = capture(Dir, computeProgram(), 1000, 5000, LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue());
  // Point the schedule at a thread that does not exist.
  PB->Schedule.front().Tid = 99;
  auto R = replayPinball(*PB);
  ASSERT_TRUE(R.hasValue());
  EXPECT_FALSE(R->Divergence.empty());
  EXPECT_NE(R->Divergence.find("unknown thread"), std::string::npos);
  removeTree(Dir);
}

TEST(Replay, SparseTidsRejectedWithError) {
  // The EVM hands out dense tids, so a pinball whose threads are not
  // numbered 0..N-1 cannot be rebuilt by spawning. This used to be an
  // assert (compiled out in release builds, silently mis-assigning
  // registers); it must be a real error.
  std::string Dir = tempDir("sparse_tid");
  auto PB = capture(Dir, computeProgram(), 1000, 2000, LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue());
  PB->Threads[0].Tid = 3;
  auto R = replayPinball(*PB);
  ASSERT_FALSE(R.hasValue());
  EXPECT_NE(R.message().find("not dense"), std::string::npos)
      << R.message();
  removeTree(Dir);
}

TEST(Replay, TruncatedSyscallLogRejectedWithCode) {
  // On-disk corruption of the syscall log: a chopped tail must be refused
  // by the loader with a stable EFAULT.PINBALL.* code, never replayed.
  std::string Dir = tempDir("trunc_sel");
  auto PB = capture(Dir + "/cap", test::clockProgram(), 3000, 10000,
                    LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();
  ASSERT_FALSE(PB->save(Dir + "/r.pb").isError());
  auto Bytes = readFileBytes(Dir + "/r.pb/sel.log");
  ASSERT_TRUE(Bytes.hasValue()) << Bytes.message();
  ASSERT_GT(Bytes->size(), 40u);
  // Chop mid-record: past the header, short of a whole syscall record.
  ASSERT_FALSE(writeFile(Dir + "/r.pb/sel.log", Bytes->data(),
                         Bytes->size() - (Bytes->size() % 72) - 30)
                   .isError());
  auto MPB = pinball::Pinball::load(Dir + "/r.pb");
  ASSERT_FALSE(MPB.hasValue());
  EXPECT_EQ(MPB.error().code().rfind("EFAULT.PINBALL.", 0), 0u)
      << MPB.error().str();
  removeTree(Dir);
}

TEST(Replay, TruncatedRaceLogRejectedWithCode) {
  std::string Dir = tempDir("trunc_race");
  auto PB = capture(Dir + "/cap", test::multiThreadProgram(4, 2, 500),
                    2000, 20000, LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();
  ASSERT_FALSE(PB->save(Dir + "/r.pb").isError());
  auto Bytes = readFileBytes(Dir + "/r.pb/race.log");
  ASSERT_TRUE(Bytes.hasValue()) << Bytes.message();
  ASSERT_GT(Bytes->size(), 30u);
  ASSERT_FALSE(writeFile(Dir + "/r.pb/race.log", Bytes->data(),
                         Bytes->size() - 7)
                   .isError());
  auto MPB = pinball::Pinball::load(Dir + "/r.pb");
  ASSERT_FALSE(MPB.hasValue());
  EXPECT_EQ(MPB.error().code().rfind("EFAULT.PINBALL.", 0), 0u)
      << MPB.error().str();
  removeTree(Dir);
}

TEST(Replay, HugeCountFieldRejectedNotAllocated) {
  // A hostile count field must be rejected by the range check against the
  // remaining file size — not handed to vector::reserve.
  std::string Dir = tempDir("huge_count");
  auto PB = capture(Dir + "/cap", test::clockProgram(), 3000, 10000,
                    LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();
  ASSERT_FALSE(PB->save(Dir + "/r.pb").isError());
  auto Bytes = readFileBytes(Dir + "/r.pb/sel.log");
  ASSERT_TRUE(Bytes.hasValue());
  // The record-count word sits right after the 12-byte header.
  ASSERT_GT(Bytes->size(), 16u);
  uint32_t Huge = 0xFFFFFFF0u;
  std::memcpy(Bytes->data() + 12, &Huge, 4);
  ASSERT_FALSE(
      writeFile(Dir + "/r.pb/sel.log", Bytes->data(), Bytes->size())
          .isError());
  auto MPB = pinball::Pinball::load(Dir + "/r.pb");
  ASSERT_FALSE(MPB.hasValue());
  EXPECT_EQ(MPB.error().code(), "EFAULT.PINBALL.COUNT")
      << MPB.error().str();
  removeTree(Dir);
}

TEST(Replay, DivergenceInfoIsStructured) {
  // Mis-order the recorded schedule so constrained replay observes a
  // syscall from the wrong thread: the result must carry the machine-
  // checkable DivergenceInfo, not only prose.
  std::string Dir = tempDir("div_info");
  auto PB = capture(Dir, test::clockProgram(), 3000, 10000,
                    LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();
  ASSERT_FALSE(PB->Syscalls.empty());
  PB->Syscalls[0].Tid = 7; // no such thread in this pinball
  auto R = replayPinball(*PB);
  ASSERT_TRUE(R.hasValue()) << R.message();
  ASSERT_FALSE(R->Divergence.empty());
  EXPECT_TRUE(R->Diverge.diverged());
  EXPECT_NE(R->Diverge.K, DivergenceInfo::Kind::None);
  removeTree(Dir);
}

TEST(Replay, DecodeCacheStatsReported) {
  std::string Dir = tempDir("cache_stats");
  auto PB = capture(Dir, computeProgram(), 1000, 5000, LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue());
  auto R = replayPinball(*PB);
  ASSERT_TRUE(R.hasValue()) << R.message();
  // Constrained replay steps 5000 instructions; each one is served by the
  // cache (one hit or one miss).
  EXPECT_EQ(R->VMStats.Hits + R->VMStats.Misses, 5000u);
  EXPECT_GT(R->VMStats.Hits, R->VMStats.Misses);

  ReplayOptions Off;
  Off.Config.EnableDecodeCache = false;
  auto ROff = replayPinball(*PB, Off);
  ASSERT_TRUE(ROff.hasValue()) << ROff.message();
  EXPECT_EQ(ROff->VMStats.Hits + ROff->VMStats.Misses, 0u);
  // The cache must not change what replay computes.
  EXPECT_EQ(R->Retired, ROff->Retired);
  EXPECT_EQ(R->FinalThreads.at(0).PC, ROff->FinalThreads.at(0).PC);
  removeTree(Dir);
}

TEST(Replay, MemStatsShowZeroCopyImageLoad) {
  std::string Dir = tempDir("memstats");
  // Region inside the fill loop, so replay stores into image-backed pages.
  auto Saved = capture(Dir, computeProgram(), 1000, 5000,
                       LoggerOptions::fat());
  ASSERT_TRUE(Saved.hasValue());
  ASSERT_FALSE(Saved->save(Dir + "/pb").isError());
  // Load from disk so the image pages really are mmap-borrowed.
  auto PB = pinball::Pinball::load(Dir + "/pb");
  ASSERT_TRUE(PB.hasValue()) << PB.message();

  auto R = replayPinball(*PB);
  ASSERT_TRUE(R.hasValue()) << R.message();
  EXPECT_TRUE(R->Divergence.empty()) << R->Divergence;
  // The image attached as extents; replay wrote some pages (COW) but a
  // read-mostly region must dirty less than the whole image.
  EXPECT_GT(R->MemStats.ImageExtents, 0u);
  EXPECT_GT(R->MemStats.CowFaults, 0u);
  EXPECT_GT(R->MemStats.DirtyBytes, 0u);
  EXPECT_LT(R->MemStats.DirtyBytes, PB->imageBytes());
  removeTree(Dir);
}

TEST(Replay, TwoVMsSharingOnePinballStayIsolated) {
  std::string Dir = tempDir("shared");
  auto Saved = capture(Dir, computeProgram(), 4000, 5000,
                       LoggerOptions::fat());
  ASSERT_TRUE(Saved.hasValue());
  ASSERT_FALSE(Saved->save(Dir + "/pb").isError());
  auto PB = pinball::Pinball::load(Dir + "/pb");
  ASSERT_TRUE(PB.hasValue()) << PB.message();

  // Two replay VMs over the same loaded pinball: each COWs privately, so
  // back-to-back replays of one Pinball object are bit-identical.
  auto A = replayPinball(*PB);
  auto B = replayPinball(*PB);
  ASSERT_TRUE(A.hasValue()) << A.message();
  ASSERT_TRUE(B.hasValue()) << B.message();
  EXPECT_TRUE(A->Divergence.empty()) << A->Divergence;
  EXPECT_TRUE(B->Divergence.empty()) << B->Divergence;
  EXPECT_EQ(A->Retired, B->Retired);
  ASSERT_TRUE(A->FinalThreads.count(0) && B->FinalThreads.count(0));
  expectSameRegs(A->FinalThreads.at(0), B->FinalThreads.at(0));
  EXPECT_EQ(A->MemStats.DirtyBytes, B->MemStats.DirtyBytes);
  removeTree(Dir);
}

} // namespace
