//===- tests/simpoint/SimPointTest.cpp - BBV/kmeans/PinPoints -------------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "simpoint/PinPoints.h"

#include "../common/TestHelpers.h"
#include "simpoint/BBV.h"
#include "simpoint/KMeans.h"
#include "support/RNG.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace elfie;
using namespace elfie::simpoint;

namespace {

std::string tempDir(const std::string &Name) {
  std::string D = testing::TempDir() + "/elfie_sp_" + Name;
  removeTree(D);
  createDirectories(D);
  return D;
}

// ---- k-means ----

/// Three well-separated 2-D blobs.
std::vector<std::vector<double>> threeBlobs(unsigned PerBlob,
                                            uint64_t Seed) {
  RNG R(Seed);
  std::vector<std::vector<double>> Points;
  const double Centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  for (unsigned B = 0; B < 3; ++B)
    for (unsigned I = 0; I < PerBlob; ++I)
      Points.push_back({Centers[B][0] + R.nextGaussian() * 0.3,
                        Centers[B][1] + R.nextGaussian() * 0.3});
  return Points;
}

TEST(KMeans, SeparatesObviousClusters) {
  auto Points = threeBlobs(40, 7);
  KMeansResult R = kmeans(Points, 3, 1);
  ASSERT_EQ(R.K, 3u);
  // All points of one blob share a cluster id.
  for (unsigned B = 0; B < 3; ++B) {
    unsigned First = R.Assignment[B * 40];
    for (unsigned I = 0; I < 40; ++I)
      EXPECT_EQ(R.Assignment[B * 40 + I], First) << "blob " << B;
  }
  EXPECT_LT(R.Distortion, 40.0);
}

TEST(KMeans, DeterministicForSeed) {
  auto Points = threeBlobs(30, 3);
  KMeansResult A = kmeans(Points, 4, 99);
  KMeansResult B = kmeans(Points, 4, 99);
  EXPECT_EQ(A.Assignment, B.Assignment);
  EXPECT_DOUBLE_EQ(A.Distortion, B.Distortion);
}

TEST(KMeans, BICPicksAboutThreeForThreeBlobs) {
  auto Points = threeBlobs(50, 11);
  KMeansResult Best = kmeansBest(Points, 10, 5);
  EXPECT_GE(Best.K, 3u);
  EXPECT_LE(Best.K, 5u) << "BIC should not badly overfit 3 blobs";
}

TEST(KMeans, MoreClustersNeverIncreaseDistortion) {
  auto Points = threeBlobs(30, 13);
  double Prev = std::numeric_limits<double>::max();
  for (unsigned K = 1; K <= 6; ++K) {
    KMeansResult R = kmeans(Points, K, 21);
    EXPECT_LE(R.Distortion, Prev * 1.05) << "k=" << K;
    Prev = R.Distortion;
  }
}

TEST(KMeans, HandlesDegenerateInputs) {
  // K > N.
  std::vector<std::vector<double>> Two = {{1, 1}, {2, 2}};
  KMeansResult R = kmeans(Two, 5, 1);
  EXPECT_EQ(R.K, 2u);
  // Identical points.
  std::vector<std::vector<double>> Same(10, {3.0, 3.0});
  R = kmeans(Same, 3, 1);
  EXPECT_EQ(R.Assignment.size(), 10u);
  EXPECT_LT(R.Distortion, 1e-9);
  // Empty.
  R = kmeans({}, 3, 1);
  EXPECT_TRUE(R.Assignment.empty());
}

// ---- BBV ----

TEST(BBV, PhasedProgramProducesDistinctVectors) {
  // Program with two clearly different phases.
  std::string Src = R"(
_start:
  ldi  r9, 0
phase_a:
  muli r2, r2, 7
  addi r2, r2, 1
  xori r2, r2, 3
  addi r9, r9, 1
  slti r3, r9, 30000
  bnez r3, phase_a
  ldi  r9, 0
  la   r4, buf
phase_b:
  andi r5, r9, 4095
  add  r6, r4, r5
  ld1  r7, 0(r6)
  add  r8, r8, r7
  addi r9, r9, 1
  slti r3, r9, 30000
  bnez r3, phase_b
  ldi  r7, 1
  ldi  r1, 0
  syscall
  .bss
buf: .space 4096
)";
  auto M = test::makeVM(Src, nullptr);
  ASSERT_NE(M, nullptr);
  BBVCollector C(10000, 12, 1);
  M->setObserver(&C);
  M->run(10000000);
  C.finish();
  ASSERT_GE(C.slices().size(), 10u);

  // Slices within phase A resemble each other and differ from phase B.
  const auto &S = C.slices();
  double Within = squaredDistance(S[1].Projected, S[2].Projected);
  double Across = squaredDistance(S[1].Projected,
                                  S[S.size() - 2].Projected);
  EXPECT_LT(Within * 10, Across)
      << "phase structure must be visible in the BBVs";
}

TEST(BBV, SlicesAreNormalized) {
  auto M = test::makeVM(test::computeProgram(), nullptr);
  BBVCollector C(5000, 8, 2);
  M->setObserver(&C);
  M->run(10000000);
  C.finish();
  ASSERT_GT(C.slices().size(), 0u);
  for (const SliceVector &V : C.slices()) {
    double L1 = 0;
    for (double X : V.Projected)
      L1 += X > 0 ? X : -X;
    EXPECT_NEAR(L1, 1.0, 1e-9);
  }
}

TEST(BBV, SliceIndicesAreSequential) {
  auto M = test::makeVM(test::computeProgram(), nullptr);
  BBVCollector C(4000, 8, 3);
  M->setObserver(&C);
  M->run(10000000);
  C.finish();
  for (size_t I = 0; I < C.slices().size(); ++I)
    EXPECT_EQ(C.slices()[I].SliceIndex, I);
}

// ---- PinPoints ----

TEST(PinPoints, SelectsWeightedRegions) {
  std::string Dir = tempDir("select");
  std::string Path = test::writeGuestELF(Dir, "prog.elf",
                                         test::computeProgram());
  PinPointsOptions Opts;
  Opts.SliceSize = 4000;
  Opts.WarmupLength = 8000;
  Opts.MaxK = 10;
  auto R = profileAndSelect(Path, {}, vm::VMConfig(), Opts);
  ASSERT_TRUE(R.hasValue()) << R.message();
  ASSERT_GT(R->Regions.size(), 0u);
  EXPECT_LE(R->Regions.size(), 10u);

  double TotalWeight = 0;
  for (const Region &Reg : R->Regions) {
    TotalWeight += Reg.Weight;
    EXPECT_EQ(Reg.Length, Opts.SliceSize);
    EXPECT_EQ(Reg.StartIcount, Reg.SliceIndex * Opts.SliceSize);
    if (Reg.StartIcount > Opts.WarmupLength)
      EXPECT_EQ(Reg.WarmupStart, Reg.StartIcount - Opts.WarmupLength);
    else
      EXPECT_EQ(Reg.WarmupStart, 0u);
  }
  EXPECT_NEAR(TotalWeight, 1.0, 1e-9)
      << "region weights must sum to 1 (all slices covered)";
  removeTree(Dir);
}

TEST(PinPoints, AlternatesComeFromSameCluster) {
  std::string Dir = tempDir("alts");
  std::string Path = test::writeGuestELF(
      Dir, "prog.elf", test::computeProgram());
  PinPointsOptions Opts;
  Opts.SliceSize = 2000;
  Opts.MaxK = 6;
  Opts.MaxAlternates = 2;
  auto R = profileAndSelect(Path, {}, vm::VMConfig(), Opts);
  ASSERT_TRUE(R.hasValue()) << R.message();
  for (const Region &Reg : R->Regions)
    for (uint64_t Alt : Reg.AlternateSlices) {
      ASSERT_LT(Alt, R->Assignment.size());
      EXPECT_EQ(R->Assignment[Alt], Reg.Cluster)
          << "alternate representatives must belong to the same phase";
    }
  removeTree(Dir);
}

TEST(PinPoints, GccLikeNeedsMoreClustersThanX264Like) {
  // The "hard to represent" workload has more phases (paper §IV-A).
  using workloads::InputSet;
  auto GccSrc = workloads::generateSource("gcc_like", InputSet::Test);
  auto X264Src = workloads::generateSource("x264_like", InputSet::Test);
  ASSERT_TRUE(GccSrc.hasValue());
  ASSERT_TRUE(X264Src.hasValue());
  std::string Dir = tempDir("phases");
  std::string GccPath = test::writeGuestELF(Dir, "gcc.elf", *GccSrc);
  std::string X264Path = test::writeGuestELF(Dir, "x264.elf", *X264Src);

  PinPointsOptions Opts;
  Opts.SliceSize = 50000;
  Opts.MaxK = 20;
  auto Gcc = profileAndSelect(GccPath, {}, vm::VMConfig(), Opts);
  auto X264 = profileAndSelect(X264Path, {}, vm::VMConfig(), Opts);
  ASSERT_TRUE(Gcc.hasValue()) << Gcc.message();
  ASSERT_TRUE(X264.hasValue()) << X264.message();
  EXPECT_GT(Gcc->K, X264->K)
      << "gcc_like must exhibit more phases than the streaming x264_like";
  removeTree(Dir);
}

TEST(PinPoints, FormatRegionsIsParseable) {
  PinPointsResult R;
  R.TotalSlices = 10;
  R.SliceSize = 1000;
  R.K = 2;
  Region A;
  A.Cluster = 0;
  A.SliceIndex = 2;
  A.StartIcount = 2000;
  A.Weight = 0.6;
  A.AlternateSlices = {3};
  R.Regions.push_back(A);
  std::string Text = formatRegions(R);
  EXPECT_NE(Text.find("0 2 2000 0.600000 3"), std::string::npos) << Text;
}

TEST(PinPoints, TooShortProgramFails) {
  std::string Dir = tempDir("short");
  std::string Path =
      test::writeGuestELF(Dir, "tiny.elf", "_start:\n  halt\n");
  PinPointsOptions Opts;
  Opts.SliceSize = 1000000;
  auto R = profileAndSelect(Path, {}, vm::VMConfig(), Opts);
  ASSERT_FALSE(R.hasValue());
  EXPECT_NE(R.message().find("too short"), std::string::npos);
  removeTree(Dir);
}

} // namespace
