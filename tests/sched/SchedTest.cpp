//===- tests/sched/SchedTest.cpp - Campaign runner unit tests -------------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// Unit tests for the src/sched library: manifest parsing, outcome
/// classification (the full exit-code decision table), seeded backoff,
/// journal round-trip and crash recovery, and quarantine evidence.
///
//===----------------------------------------------------------------------===//

#include "fault/FaultPlan.h"
#include "sched/Backoff.h"
#include "sched/Campaign.h"
#include "sched/Classify.h"
#include "sched/Journal.h"
#include "sched/Quarantine.h"
#include "support/FileIO.h"

#include <gtest/gtest.h>

#include <signal.h>

using namespace elfie;
using namespace elfie::sched;

namespace {

std::string tempPath(const std::string &Name) {
  return testing::TempDir() + "/elfie_sched_" + Name;
}

//===----------------------------------------------------------------------===//
// Manifest parsing
//===----------------------------------------------------------------------===//

TEST(Campaign, ParsesJobsAttributesAndExtras) {
  auto Plan = CampaignPlan::parse(
      "# campaign\n"
      "\n"
      "r1 replay pb/a\n"
      "v1 verify out/a.elfie -pinball pb/a\n"
      "e1 emit pb/a !timeout=30 !retries=2 !env:ELFIE_FAULT_SPEC="
      "write:{attempt}:enospc\n"
      "n1 native /bin/true\n"
      "s1 sim pb/a\n"
      "s2 sim out/a.elfie !warmup=100000\n");
  ASSERT_TRUE(Plan.hasValue()) << Plan.message();
  ASSERT_EQ(Plan->Jobs.size(), 6u);

  const Job *V = Plan->find("v1");
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->A, Action::Verify);
  EXPECT_EQ(V->Target, "out/a.elfie");
  ASSERT_EQ(V->ExtraArgs.size(), 2u);
  EXPECT_EQ(V->ExtraArgs[0], "-pinball");

  const Job *E = Plan->find("e1");
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->TimeoutSecs, 30u);
  EXPECT_EQ(E->Retries, 2u);
  ASSERT_EQ(E->Env.size(), 1u);
  EXPECT_EQ(E->Env[0].first, "ELFIE_FAULT_SPEC");
  EXPECT_EQ(E->Env[0].second, "write:{attempt}:enospc");

  const Job *S1 = Plan->find("s1");
  ASSERT_NE(S1, nullptr);
  EXPECT_EQ(S1->WarmupInstructions, 0u) << "warmup defaults to off";
  const Job *S2 = Plan->find("s2");
  ASSERT_NE(S2, nullptr);
  EXPECT_EQ(S2->WarmupInstructions, 100000u);
}

TEST(Campaign, RejectsMalformedManifests) {
  struct {
    const char *Text;
    const char *Want; // substring of the error message
  } Cases[] = {
      {"", "no jobs"},
      {"onlytwo replay\n", "got 2 fields"},
      {"bad/id replay pb\n", "bad job id"},
      {"a replay pb\na replay pb\n", "duplicate job id"},
      {"a explode pb\n", "unknown action"},
      {"a replay pb !timeout=0\n", "bad '!timeout=0'"},
      {"a replay pb !retries=1001\n", "bad '!retries=1001'"},
      {"a replay pb !env:NOEQUALS\n", "want !env:K=V"},
      {"a replay pb !frob=1\n", "unknown attribute"},
      {"a sim pb !warmup=0\n", "bad '!warmup=0'"},
      {"a replay pb !warmup=1000\n", "only applies to the sim action"},
  };
  for (const auto &C : Cases) {
    auto Plan = CampaignPlan::parse(C.Text);
    ASSERT_FALSE(Plan.hasValue()) << C.Text;
    Error E = Plan.takeError();
    EXPECT_NE(E.message().find(C.Want), std::string::npos)
        << C.Text << " -> " << E.message();
    // Unknown actions carry EFAULT.FLEET.ACTION; the rest MANIFEST.
    EXPECT_EQ(E.code().find("EFAULT.FLEET."), 0u) << E.code();
  }
}

TEST(Campaign, ManifestLineRoundTrips) {
  Job J;
  J.Id = "e1";
  J.A = Action::Sim;
  J.Target = "pb/a";
  J.TimeoutSecs = 30;
  J.Retries = 2;
  J.WarmupInstructions = 50000;
  J.Env.emplace_back("K", "V");
  J.ExtraArgs = {"-x", "1"};
  auto Plan = CampaignPlan::parse(manifestLine(J) + "\n");
  ASSERT_TRUE(Plan.hasValue()) << Plan.message();
  ASSERT_EQ(Plan->Jobs.size(), 1u);
  const Job &R = Plan->Jobs[0];
  EXPECT_EQ(R.Id, J.Id);
  EXPECT_EQ(R.A, J.A);
  EXPECT_EQ(R.Target, J.Target);
  EXPECT_EQ(R.TimeoutSecs, J.TimeoutSecs);
  EXPECT_EQ(R.Retries, J.Retries);
  EXPECT_EQ(R.WarmupInstructions, J.WarmupInstructions);
  EXPECT_EQ(R.Env, J.Env);
  EXPECT_EQ(R.ExtraArgs, J.ExtraArgs);
}

TEST(Campaign, AppendManifestLineGrowsAFile) {
  std::string Path = tempPath("manifest_append");
  removeFile(Path);
  Job A, B;
  A.Id = "a";
  A.A = Action::Replay;
  A.Target = "pb/a";
  B.Id = "b";
  B.A = Action::Verify;
  B.Target = "x.elfie";
  ASSERT_FALSE(appendManifestLine(Path, A).isError());
  ASSERT_FALSE(appendManifestLine(Path, B).isError());
  auto Plan = CampaignPlan::loadFile(Path);
  ASSERT_TRUE(Plan.hasValue()) << Plan.message();
  EXPECT_EQ(Plan->Jobs.size(), 2u);
  removeFile(Path);
}

TEST(Campaign, JobIdForTargetIsManifestLegal) {
  std::string Id = jobIdForTarget("replay", "/tmp/pb dir/a.pb");
  EXPECT_EQ(Id, "replay._tmp_pb_dir_a.pb");
  auto Plan = CampaignPlan::parse(Id + " replay pb\n");
  EXPECT_TRUE(Plan.hasValue()) << Plan.message();
}

TEST(Campaign, ExpandPlaceholders) {
  EXPECT_EQ(expandPlaceholders("write:{attempt}:enospc", 3),
            "write:3:enospc");
  EXPECT_EQ(expandPlaceholders("{attempt}{attempt}", 12), "1212");
  EXPECT_EQ(expandPlaceholders("no placeholder", 7), "no placeholder");
}

//===----------------------------------------------------------------------===//
// Classification: the full documented exit-code decision table
// (DESIGN.md §9). Every code a pipeline tool can produce must map to the
// intended retry/quarantine/success decision.
//===----------------------------------------------------------------------===//

TEST(Classify, ExitCodeDecisionTable) {
  const std::string TransientErr =
      "pinball2elf: error: EFAULT.IO.WRITE: injected: no space left on "
      "device\n";
  const std::string RejectErr =
      "pinball2elf: error: EFAULT.PINBALL.TRUNCATED: meta: short read\n";
  struct Case {
    const char *Name;
    AttemptOutcome O;
    std::string Stderr;
    JobClass Want;
    const char *WantDetail;
  };
  auto Exited = [](int Code) {
    AttemptOutcome O;
    O.Exited = true;
    O.ExitCode = Code;
    return O;
  };
  auto Signaled = [](int Sig) {
    AttemptOutcome O;
    O.Signal = Sig;
    return O;
  };
  AttemptOutcome Timeout = Signaled(SIGKILL);
  Timeout.TimedOut = true;

  const Case Cases[] = {
      // Tool taxonomy 0/1/2/3.
      {"success", Exited(0), "", JobClass::Success, "ok"},
      {"error+io-stderr", Exited(1), TransientErr, JobClass::Transient,
       "transient-io"},
      {"error+rejection", Exited(1), RejectErr, JobClass::Deterministic,
       "rejected"},
      {"error+empty-stderr", Exited(1), "", JobClass::Deterministic,
       "rejected"},
      {"usage", Exited(2), "", JobClass::Deterministic, "usage"},
      {"divergence", Exited(3), "", JobClass::Deterministic, "divergence"},
      // Runner/exec layer.
      {"exec-failure", Exited(124), "", JobClass::Deterministic,
       "exec-failure"},
      // Native-ELFie fault codes.
      {"watchdog", Exited(125), "", JobClass::Deterministic, "elfie-fault"},
      {"hw-signal", Exited(126), "", JobClass::Deterministic, "elfie-fault"},
      {"divergence-abort", Exited(127), "", JobClass::Deterministic,
       "elfie-fault"},
      // Unknown guest semantics.
      {"guest-exit-42", Exited(42), "", JobClass::Deterministic, "rejected"},
      {"fault-kill-97", Exited(97), "", JobClass::Deterministic, "rejected"},
      // Signal deaths: host weather (OOM kill, operator kill) — retry.
      {"sigkill", Signaled(SIGKILL), "", JobClass::Transient, "signal"},
      {"sigsegv", Signaled(SIGSEGV), "", JobClass::Transient, "signal"},
      {"sigterm", Signaled(SIGTERM), "", JobClass::Transient, "signal"},
      // Runner-imposed budget timeout.
      {"timeout", Timeout, "", JobClass::Transient, "timeout"},
  };
  for (const Case &C : Cases) {
    EXPECT_EQ(classifyOutcome(C.O, C.Stderr), C.Want) << C.Name;
    EXPECT_STREQ(classifyDetail(C.O, C.Stderr), C.WantDetail) << C.Name;
  }
}

TEST(Classify, TransientMarkersCoverInjectedFaultMessages) {
  // The exact messages src/fault injects must classify as transient, or
  // the fault harness would quarantine jobs it meant to retry.
  for (const char *Msg :
       {"EFAULT.IO.WRITE: injected: no space left on device",
        "EFAULT.IO.READ: injected: I/O error",
        "EFAULT.IO.FSYNC: fsync failed",
        "open: No space left on device"}) {
    AttemptOutcome O;
    O.Exited = true;
    O.ExitCode = 1;
    EXPECT_EQ(classifyOutcome(O, Msg), JobClass::Transient) << Msg;
  }
}

//===----------------------------------------------------------------------===//
// Backoff
//===----------------------------------------------------------------------===//

TEST(Backoff, DeterministicPerSeedJobAttempt) {
  uint64_t A = backoffDelayMs(7, "job-a", 2, 200, 5000);
  EXPECT_EQ(A, backoffDelayMs(7, "job-a", 2, 200, 5000));
  // Different coordinates draw different jitter (overwhelmingly likely for
  // these fixed inputs; this asserts the hash actually mixes them).
  EXPECT_TRUE(A != backoffDelayMs(8, "job-a", 2, 200, 5000) ||
              A != backoffDelayMs(7, "job-b", 2, 200, 5000) ||
              A != backoffDelayMs(7, "job-a", 3, 200, 5000));
}

TEST(Backoff, DelaysStayInHalfWindowAndGrow) {
  const uint64_t Base = 200, Cap = 5000;
  for (uint32_t Attempt = 2; Attempt <= 12; ++Attempt) {
    uint64_t Exp = Base;
    for (uint32_t I = 2; I < Attempt && Exp < Cap; ++I)
      Exp = std::min(Exp * 2, Cap);
    for (uint64_t Seed = 0; Seed < 20; ++Seed) {
      uint64_t D = backoffDelayMs(Seed, "j", Attempt, Base, Cap);
      EXPECT_GE(D, Exp / 2) << "attempt " << Attempt << " seed " << Seed;
      EXPECT_LE(D, Exp) << "attempt " << Attempt << " seed " << Seed;
    }
  }
}

TEST(Backoff, CapBoundsLateAttemptsAndHugeBases) {
  // Attempt numbers large enough to overflow a naive BaseMs << N.
  EXPECT_LE(backoffDelayMs(1, "j", 200, 200, 5000), 5000u);
  EXPECT_LE(backoffDelayMs(1, "j", 2, UINT64_MAX / 2, 5000), 5000u);
}

//===----------------------------------------------------------------------===//
// Journal
//===----------------------------------------------------------------------===//

TEST(Journal, RecordRoundTrip) {
  JournalRecord Rec = {{"rec", "exit"},
                       {"job", "weird \"id\"\twith\nescapes"},
                       {"attempt", "3"},
                       {"code", "-1"},
                       {"detail", "timeout"}};
  std::string Line = renderJournalRecord(Rec);
  EXPECT_EQ(Line.find('\n'), std::string::npos);
  JournalRecord Back;
  ASSERT_TRUE(parseJournalRecord(Line, Back)) << Line;
  EXPECT_EQ(Back, Rec);
}

TEST(Journal, RejectsTornAndForeignLines) {
  JournalRecord Out;
  EXPECT_FALSE(parseJournalRecord("", Out));
  EXPECT_FALSE(parseJournalRecord("{\"rec\":\"sta", Out)); // torn tail
  EXPECT_FALSE(parseJournalRecord("{\"job\":\"a\"}", Out)); // no rec
  EXPECT_FALSE(parseJournalRecord("{\"rec\":{\"nested\":1}}", Out));
  EXPECT_FALSE(parseJournalRecord("{\"rec\":\"a\"} trailing", Out));
  EXPECT_FALSE(parseJournalRecord("not json at all", Out));
}

TEST(Journal, ScanRecoversTerminalAndInFlightJobs) {
  std::string Path = tempPath("journal_scan");
  JournalWriter W;
  ASSERT_FALSE(W.open(Path).isError());
  auto Put = [&](JournalRecord Rec) {
    ASSERT_FALSE(W.append(Rec).isError());
  };
  Put({{"rec", "plan"}, {"jobs", "3"}, {"seed", "7"}});
  Put({{"rec", "start"}, {"job", "a"}, {"attempt", "1"}});
  Put({{"rec", "exit"}, {"job", "a"}, {"attempt", "1"}});
  Put({{"rec", "done"}, {"job", "a"}, {"attempts", "1"}});
  Put({{"rec", "start"}, {"job", "b"}, {"attempt", "1"}});
  Put({{"rec", "quarantine"}, {"job", "b"}, {"attempts", "1"}});
  Put({{"rec", "start"}, {"job", "c"}, {"attempt", "2"}});
  W.close();
  // Simulate a SIGKILL mid-append: a torn trailing line.
  AppendLog Tail;
  ASSERT_FALSE(Tail.open(Path).isError());
  ASSERT_FALSE(Tail.append("{\"rec\":\"done\",\"jo").isError());
  Tail.close();

  auto St = scanJournal(Path);
  ASSERT_TRUE(St.hasValue()) << St.message();
  EXPECT_EQ(St->PlanJobs, 3u);
  EXPECT_TRUE(St->Done.count("a"));
  EXPECT_TRUE(St->Quarantined.count("b"));
  EXPECT_TRUE(St->InFlight.count("c"));
  EXPECT_FALSE(St->InFlight.count("a"));
  EXPECT_EQ(St->Attempts.at("c"), 2u);
  EXPECT_EQ(St->TornLines, 1u);
  EXPECT_FALSE(St->Sealed);
  EXPECT_TRUE(St->terminal("a"));
  EXPECT_TRUE(St->terminal("b"));
  EXPECT_FALSE(St->terminal("c"));
  removeFile(Path);
}

TEST(Journal, ScanSeesSeal) {
  std::string Path = tempPath("journal_seal");
  JournalWriter W;
  ASSERT_FALSE(W.open(Path).isError());
  ASSERT_FALSE(W.append({{"rec", "seal"}, {"reason", "drain"}}).isError());
  W.close();
  auto St = scanJournal(Path);
  ASSERT_TRUE(St.hasValue());
  EXPECT_TRUE(St->Sealed);
  EXPECT_EQ(St->SealReason, "drain");
  removeFile(Path);
}

/// Disk pressure on an append — whether a kernel errno or an injected
/// hook fault whose message names the condition — surfaces as the
/// structured EFAULT.IO.ENOSPC / EFAULT.IO.EIO codes with the journal
/// path in context, so the campaign service can pause admission on disk
/// pressure specifically.
TEST(Journal, AppendSurfacesDiskPressureStructured) {
  struct Case {
    fault::FaultSpec::Kind Kind;
    const char *Code;
  } Cases[] = {
      {fault::FaultSpec::Kind::Enospc, "EFAULT.IO.ENOSPC"},
      {fault::FaultSpec::Kind::Eio, "EFAULT.IO.EIO"},
  };
  for (const Case &C : Cases) {
    std::string Path = tempPath("journal_pressure");
    removeFile(Path);
    JournalWriter W;
    ASSERT_FALSE(W.open(Path).isError());

    fault::FaultPlan Plan;
    Plan.add({fault::FaultSpec::Op::Write, 1, C.Kind});
    setIOFaultHook(&Plan);
    Error E = W.append({{"rec", "plan"}, {"jobs", "1"}});
    setIOFaultHook(nullptr);

    ASSERT_TRUE(E.isError()) << C.Code;
    EXPECT_EQ(E.code(), C.Code);
    EXPECT_NE(E.message().find(Path), std::string::npos)
        << "no path context: " << E.message();
    EXPECT_TRUE(isDiskPressureError(E));

    // The writer stays usable once the pressure lifts (one-shot fault
    // spent): the next append lands durably.
    ASSERT_FALSE(W.append({{"rec", "plan"}, {"jobs", "1"}}).isError());
    W.close();
    removeFile(Path);
  }
}

TEST(Journal, DiskPressurePredicateMatchesOnlyPressureCodes) {
  EXPECT_TRUE(isDiskPressureError(
      makeCodedError("EFAULT.IO.ENOSPC", "no space")));
  EXPECT_TRUE(isDiskPressureError(makeCodedError("EFAULT.IO.EIO", "eio")));
  EXPECT_FALSE(isDiskPressureError(
      makeCodedError("EFAULT.IO.WRITE", "generic write failure")));
  EXPECT_FALSE(isDiskPressureError(
      makeCodedError("EFAULT.FLEET.MANIFEST", "bad manifest")));
  EXPECT_FALSE(isDiskPressureError(Error::success()));
}

//===----------------------------------------------------------------------===//
// Quarantine
//===----------------------------------------------------------------------===//

TEST(Quarantine, WritesCauseAndEvidence) {
  std::string Root = tempPath("quarantine_root");
  removeTree(Root);
  std::string ErrPath = tempPath("quarantine_stderr");
  ASSERT_FALSE(
      writeFileText(ErrPath,
                    "ereplay: retired 100 instructions\n"
                    "ereplay: DIVERGENCE: sel.log record 0 mismatch\n")
          .isError());

  QuarantineReport R;
  R.JobId = "r1";
  R.Reason = "divergence";
  R.CommandLine = "ereplay pb/a";
  R.Attempts = 1;
  R.ExitCode = 3;
  R.StderrPath = ErrPath;
  auto Dir = quarantineJob(Root, R);
  ASSERT_TRUE(Dir.hasValue()) << Dir.message();

  auto Cause = readFileText(*Dir + "/cause.txt");
  ASSERT_TRUE(Cause.hasValue());
  EXPECT_NE(Cause->find("reason: divergence"), std::string::npos);
  EXPECT_NE(Cause->find("exit-code: 3"), std::string::npos);
  EXPECT_NE(Cause->find("command: ereplay pb/a"), std::string::npos);
  // The fault report extracts the DIVERGENCE line, not the chatter.
  EXPECT_NE(Cause->find("DIVERGENCE: sel.log record 0"), std::string::npos);
  EXPECT_EQ(Cause->find("retired 100"), std::string::npos);
  EXPECT_TRUE(fileExists(*Dir + "/stderr.txt"));
  removeTree(Root);
  removeFile(ErrPath);
}

TEST(Quarantine, ExtractFaultLines) {
  auto Lines = extractFaultLines(
      "noise line\n"
      "elfie-fault: divergence: icount 5 of 10\n"
      "error EFAULT.VERIFY.BUDGET @0x40: budget mismatch\n"
      "evm: guest fault in thread 0 at 0x0: bad opcode\n"
      "EFAULT.IO.WRITE: injected: no space left on device\n");
  ASSERT_EQ(Lines.size(), 4u);
  EXPECT_NE(Lines[0].find("elfie-fault:"), std::string::npos);
}

} // namespace
