//===- tests/sched/FleetTest.cpp - efleet end-to-end tests ----------------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// Drives the efleet campaign runner as a subprocess, the way an operator
/// would: an acceptance campaign with injected transient faults and a
/// deterministic divergence, SIGKILL-mid-campaign resume (via the fault
/// harness's kill op on the runner's own journal appends), a randomized
/// kill-point resume sweep, and SIGTERM graceful drain.
///
/// The sweep runs ELFIE_FLEET_SWEEP_SEEDS seeds by default; building with
/// -DELFIE_SLOW_TESTS=ON raises it to 50.
///
//===----------------------------------------------------------------------===//

#include "sched/Journal.h"
#include "support/FileIO.h"
#include "support/Format.h"
#include "support/Subprocess.h"

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <map>
#include <set>
#include <signal.h>
#include <unistd.h>

using namespace elfie;
using namespace elfie::sched;

#ifndef ELFIE_BIN_DIR
#define ELFIE_BIN_DIR ""
#endif

#ifdef ELFIE_SLOW_TESTS
static constexpr int SweepSeeds = 50;
#else
static constexpr int SweepSeeds = 6;
#endif

namespace {

struct CmdResult {
  int ExitCode = -1;
  std::string Output; // stdout + stderr
};

CmdResult runCmd(const std::string &Env, const std::string &CmdLine) {
  std::string Full = Env + (Env.empty() ? "" : " ") + CmdLine + " 2>&1";
  FILE *P = popen(Full.c_str(), "r");
  CmdResult R;
  if (!P)
    return R;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
    R.Output.append(Buf, N);
  int Status = pclose(P);
  R.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  return R;
}

std::string binPath(const std::string &Tool) {
  return std::string(ELFIE_BIN_DIR) + "/" + Tool;
}

/// Shared fixtures (a pinball, an emitted ELFie, a divergent pinball),
/// built once: every campaign in this file reuses them read-only.
class FleetE2E : public testing::Test {
protected:
  static void SetUpTestSuite() {
    // Per-process root: ctest runs each TEST as its own process, possibly
    // in parallel, and every process rebuilds this fixture — a shared
    // path would race (removeTree under a sibling mid-recording).
    Root = testing::TempDir() + "/elfie_fleet_e2e." +
           std::to_string(getpid());
    removeTree(Root);
    ASSERT_FALSE(createDirectories(Root).isError());

    // A small looping program (same shape the tools test uses). The
    // gettid syscall inside the loop guarantees sel.log records land in
    // the recorded region, which the divergence fixture below corrupts.
    std::string Src = R"(
_start:
  ldi r9, 0
loop:
  muli r2, r2, 13
  addi r2, r2, 7
  ldi r7, 10
  syscall
  addi r9, r9, 1
  slti r3, r9, 50000
  bnez r3, loop
  ldi r7, 1
  ldi r1, 0
  syscall
)";
    ASSERT_FALSE(writeFileText(Root + "/p.s", Src).isError());
    auto R = runCmd("", formatString("%s -o %s/p.elf %s/p.s",
                                     binPath("easm").c_str(), Root.c_str(),
                                     Root.c_str()));
    ASSERT_EQ(R.ExitCode, 0) << R.Output;
    R = runCmd("", formatString("%s -region:start 50000 -region:length "
                                "100000 -log:fat 1 -o %s/r.pb %s/p.elf",
                                binPath("elogger").c_str(), Root.c_str(),
                                Root.c_str()));
    ASSERT_EQ(R.ExitCode, 0) << R.Output;
    R = runCmd("", formatString("%s -o %s/r.elfie %s/r.pb",
                                binPath("pinball2elf").c_str(), Root.c_str(),
                                Root.c_str()));
    ASSERT_EQ(R.ExitCode, 0) << R.Output;
    // A guest ELFie for the sim-action warmup campaign (esim simulates
    // EG64 guest code, not the native x86 ELFie above).
    R = runCmd("", formatString("%s -target guest -o %s/g.elfie %s/r.pb",
                                binPath("pinball2elf").c_str(), Root.c_str(),
                                Root.c_str()));
    ASSERT_EQ(R.ExitCode, 0) << R.Output;

    // A divergent pinball: same region, but the first sel.log record's Tid
    // byte is corrupted, so constrained replay hits a syscall-order
    // mismatch and exits 3.
    R = runCmd("", formatString("cp -r %s/r.pb %s/div.pb", Root.c_str(),
                                Root.c_str()));
    ASSERT_EQ(R.ExitCode, 0) << R.Output;
    auto Sel = readFileBytes(Root + "/div.pb/sel.log");
    ASSERT_TRUE(Sel.hasValue()) << Sel.message();
    ASSERT_GT(Sel->size(), 16u);
    (*Sel)[16] = 99; // Tid of the first syscall record
    ASSERT_FALSE(writeFile(Root + "/div.pb/sel.log", Sel->data(),
                           Sel->size())
                     .isError());
  }

  static void TearDownTestSuite() { removeTree(Root); }

  void SetUp() override {
    Dir = Root + "/" +
          testing::UnitTest::GetInstance()->current_test_info()->name();
    removeTree(Dir);
    ASSERT_FALSE(createDirectories(Dir).isError());
  }

  CmdResult runFleetCmd(const std::string &Env, const std::string &Flags,
                        const std::string &Manifest) {
    return runCmd(Env, formatString("%s -bindir %s -out %s/out %s %s",
                                    binPath("efleet").c_str(), ELFIE_BIN_DIR,
                                    Dir.c_str(), Flags.c_str(),
                                    Manifest.c_str()));
  }

  /// Parses the campaign journal into ordered records.
  std::vector<JournalRecord> journalRecords() {
    std::vector<JournalRecord> Recs;
    auto Text = readFileText(Dir + "/out/journal.jsonl");
    if (!Text)
      return Recs;
    for (const std::string &Line : splitString(*Text, '\n')) {
      JournalRecord Rec;
      if (!trimString(Line).empty() && parseJournalRecord(Line, Rec))
        Recs.push_back(Rec);
    }
    return Recs;
  }

  static std::string Root;
  std::string Dir;
};

std::string FleetE2E::Root;

/// The ISSUE acceptance campaign: >= 20 jobs over real pipelines; several
/// suffer injected transient I/O faults on their first attempt (the
/// {attempt} placeholder makes the fault miss on retry); one is a
/// deterministic divergence. Everything transient must succeed under
/// backoff; the divergence must be quarantined with a fault report.
TEST_F(FleetE2E, AcceptanceCampaignWithFaultsAndDivergence) {
  std::string Manifest;
  for (int I = 0; I < 10; ++I)
    Manifest += formatString("replay%d replay %s/r.pb\n", I, Root.c_str());
  for (int I = 0; I < 6; ++I)
    Manifest += formatString("flaky%d emit %s/r.pb "
                             "!env:ELFIE_FAULT_SPEC=write:{attempt}:enospc\n",
                             I, Root.c_str());
  Manifest += formatString("verify0 verify %s/r.elfie -pinball %s/r.pb\n",
                           Root.c_str(), Root.c_str());
  Manifest += formatString("sim0 sim %s/r.pb\n", Root.c_str());
  Manifest += formatString("native0 native /bin/true\n");
  Manifest += formatString("diverge replay %s/div.pb !retries=3\n",
                           Root.c_str());
  ASSERT_FALSE(writeFileText(Dir + "/manifest.txt", Manifest).isError());

  CmdResult R = runFleetCmd("", "-json", Dir + "/manifest.txt");
  EXPECT_EQ(R.ExitCode, 1) << R.Output; // the divergent job fails it
  EXPECT_NE(R.Output.find("\"jobs\":20"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("\"succeeded\":19"), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("\"quarantined\":1"), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("\"incomplete\":0"), std::string::npos)
      << R.Output;

  // Each flaky job retried exactly once: 20 + 6 retries = 26 attempts.
  EXPECT_NE(R.Output.find("\"attempts\":26"), std::string::npos) << R.Output;

  // The divergent job was quarantined on first classification (exit 3 is
  // deterministic — its !retries=3 budget must NOT be consumed).
  auto Cause = readFileText(Dir + "/out/quarantine/diverge/cause.txt");
  ASSERT_TRUE(Cause.hasValue()) << Cause.message();
  EXPECT_NE(Cause->find("reason: divergence"), std::string::npos) << *Cause;
  EXPECT_NE(Cause->find("attempts: 1"), std::string::npos) << *Cause;
  EXPECT_NE(Cause->find("DIVERGENCE"), std::string::npos) << *Cause;
  EXPECT_TRUE(fileExists(Dir + "/out/quarantine/diverge/stderr.txt"));

  // Emitted artifacts from the flaky emit jobs actually landed.
  for (int I = 0; I < 6; ++I)
    EXPECT_TRUE(
        fileExists(Dir + formatString("/out/artifacts/flaky%d.elfie", I)));

  // The journal is sealed complete and scan agrees with the summary.
  auto St = scanJournal(Dir + "/out/journal.jsonl");
  ASSERT_TRUE(St.hasValue()) << St.message();
  EXPECT_TRUE(St->Sealed);
  EXPECT_EQ(St->SealReason, "complete");
  EXPECT_EQ(St->Done.size(), 19u);
  EXPECT_EQ(St->Quarantined.size(), 1u);
}

/// SIGKILL mid-campaign (the fault harness kills efleet at its Nth journal
/// append), then resume: journaled-complete jobs must not re-run, in-flight
/// jobs must, and the final state must be exactly one terminal record per
/// job.
TEST_F(FleetE2E, KillAndResumeSkipsCompletedJobs) {
  std::string Manifest =
      formatString("a replay %s/r.pb\n"
                   "b emit %s/r.pb\n"
                   "c verify %s/r.elfie\n"
                   "d emit %s/r.pb "
                   "!env:ELFIE_FAULT_SPEC=write:{attempt}:enospc\n",
                   Root.c_str(), Root.c_str(), Root.c_str(), Root.c_str());
  ASSERT_FALSE(writeFileText(Dir + "/manifest.txt", Manifest).isError());

  // Serial workers so some jobs are journaled done before the kill lands.
  CmdResult First = runFleetCmd("ELFIE_FAULT_SPEC=write:10:kill",
                                "-workers 1", Dir + "/manifest.txt");
  ASSERT_EQ(First.ExitCode, 97) << First.Output; // fault kill op

  auto Before = scanJournal(Dir + "/out/journal.jsonl");
  ASSERT_TRUE(Before.hasValue()) << Before.message();
  ASSERT_FALSE(Before->Sealed);
  ASSERT_FALSE(Before->Done.empty()) << "kill landed before any job done";
  std::set<std::string> DoneBeforeKill = Before->Done;
  size_t RecordsBeforeKill = Before->Records;

  CmdResult Second = runFleetCmd("", "-verbose", Dir + "/manifest.txt");
  EXPECT_EQ(Second.ExitCode, 0) << Second.Output;
  EXPECT_NE(Second.Output.find("resumed"), std::string::npos)
      << Second.Output;

  // No journaled-complete job may have a start record after the resume.
  std::vector<JournalRecord> Recs = journalRecords();
  bool SawResume = false;
  std::map<std::string, int> TerminalCount;
  for (JournalRecord &Rec : Recs) {
    if (Rec["rec"] == "resume")
      SawResume = true;
    if (Rec["rec"] == "start" && SawResume)
      EXPECT_EQ(DoneBeforeKill.count(Rec["job"]), 0u)
          << "completed job '" << Rec["job"] << "' re-ran after resume";
    if (Rec["rec"] == "done" || Rec["rec"] == "quarantine")
      ++TerminalCount[Rec["job"]];
  }
  EXPECT_TRUE(SawResume);
  EXPECT_GT(Recs.size(), RecordsBeforeKill);
  ASSERT_EQ(TerminalCount.size(), 4u);
  for (const auto &[JobId, N] : TerminalCount)
    EXPECT_EQ(N, 1) << "job '" << JobId << "' has duplicate terminal records";

  auto After = scanJournal(Dir + "/out/journal.jsonl");
  ASSERT_TRUE(After.hasValue());
  EXPECT_TRUE(After->Sealed);
  EXPECT_EQ(After->SealReason, "complete");
  EXPECT_EQ(After->Done.size(), 4u);
}

/// Satellite: the resume sweep. Kill efleet at randomized journal-append
/// points across many seeds; every resume must complete the campaign with
/// no duplicated or lost jobs. (50 seeds with -DELFIE_SLOW_TESTS=ON.)
TEST_F(FleetE2E, ResumeSweepOverRandomizedKillPoints) {
  std::string Manifest =
      formatString("a replay %s/r.pb\n"
                   "b emit %s/r.pb\n"
                   "c emit %s/r.pb "
                   "!env:ELFIE_FAULT_SPEC=write:{attempt}:enospc\n",
                   Root.c_str(), Root.c_str(), Root.c_str());
  ASSERT_FALSE(writeFileText(Dir + "/manifest.txt", Manifest).isError());

  for (int Seed = 1; Seed <= SweepSeeds; ++Seed) {
    removeTree(Dir + "/out");
    // A full run of this campaign appends ~13 journal records (plan, 4
    // attempts x start/exit, 3 done, seal); walk the kill point across
    // that whole range so every record boundary gets hit across seeds.
    int KillAt = 2 + (Seed * 7) % 12;
    CmdResult First = runFleetCmd(
        formatString("ELFIE_FAULT_SPEC=write:%d:kill", KillAt),
        "-workers 1", Dir + "/manifest.txt");
    // Either the kill landed (97) or the campaign finished under it.
    ASSERT_TRUE(First.ExitCode == 97 || First.ExitCode == 0)
        << "seed " << Seed << ": " << First.Output;

    CmdResult Second = runFleetCmd("", "", Dir + "/manifest.txt");
    ASSERT_EQ(Second.ExitCode, 0) << "seed " << Seed << ": " << Second.Output;

    // Exactly one terminal record per job — none lost, none duplicated.
    std::map<std::string, int> TerminalCount;
    for (JournalRecord &Rec : journalRecords())
      if (Rec["rec"] == "done" || Rec["rec"] == "quarantine")
        ++TerminalCount[Rec["job"]];
    ASSERT_EQ(TerminalCount.size(), 3u) << "seed " << Seed;
    for (const auto &[JobId, N] : TerminalCount)
      ASSERT_EQ(N, 1) << "seed " << Seed << " job " << JobId;

    auto St = scanJournal(Dir + "/out/journal.jsonl");
    ASSERT_TRUE(St.hasValue());
    ASSERT_TRUE(St->Sealed) << "seed " << Seed;
    ASSERT_EQ(St->Done.size(), 3u) << "seed " << Seed;
  }
}

/// SIGTERM triggers a graceful drain: running jobs get the grace period,
/// the journal seals with reason "drain", and the summary still comes out.
TEST_F(FleetE2E, SigtermDrainsGracefully) {
  std::string Manifest = formatString("fast replay %s/r.pb\n"
                                      "slow native /bin/sleep 30 "
                                      "!timeout=60\n",
                                      Root.c_str());
  ASSERT_FALSE(writeFileText(Dir + "/manifest.txt", Manifest).isError());

  SpawnSpec Spec;
  Spec.Argv = {binPath("efleet"), "-bindir", ELFIE_BIN_DIR,
               "-out",            Dir + "/out", "-grace", "1",
               Dir + "/manifest.txt"};
  Spec.StdoutPath = Dir + "/fleet.out";
  Spec.StderrPath = Dir + "/fleet.err";
  auto Pid = spawnProcess(Spec);
  ASSERT_TRUE(Pid.hasValue()) << Pid.message();

  // Wait until the slow job is journaled as started, then ask for drain.
  bool SlowStarted = false;
  for (int I = 0; I < 200 && !SlowStarted; ++I) {
    ::usleep(50000);
    for (JournalRecord &Rec : journalRecords())
      if (Rec["rec"] == "start" && Rec["job"] == "slow")
        SlowStarted = true;
  }
  ASSERT_TRUE(SlowStarted);
  // efleet leads its own process group: signal it directly.
  ASSERT_EQ(::kill(*Pid, SIGTERM), 0);

  auto W = waitProcess(*Pid);
  ASSERT_TRUE(W.hasValue());
  ASSERT_TRUE(W->Exited) << "signal " << W->Signal;
  EXPECT_EQ(W->ExitCode, 1); // drained campaigns are not all-success

  auto St = scanJournal(Dir + "/out/journal.jsonl");
  ASSERT_TRUE(St.hasValue());
  EXPECT_TRUE(St->Sealed);
  EXPECT_EQ(St->SealReason, "drain");
  EXPECT_TRUE(St->Done.count("fast"));
  EXPECT_FALSE(St->terminal("slow")); // re-runs on resume
  auto Err = readFileText(Dir + "/fleet.err");
  ASSERT_TRUE(Err.hasValue());
  EXPECT_NE(Err->find("drain requested"), std::string::npos) << *Err;
  EXPECT_NE(Err->find("drained"), std::string::npos) << *Err;
}

/// Drain edge: SIGTERM and SIGINT land together (and again mid-drain).
/// Concurrent deliveries collapse into one idempotent drain — exactly one
/// seal record, reason "drain", never a double-seal or an abort.
TEST_F(FleetE2E, ConcurrentSignalsDuringDrainSealOnce) {
  std::string Manifest = formatString("fast replay %s/r.pb\n"
                                      "slow native /bin/sleep 30 "
                                      "!timeout=60\n",
                                      Root.c_str());
  ASSERT_FALSE(writeFileText(Dir + "/manifest.txt", Manifest).isError());

  SpawnSpec Spec;
  Spec.Argv = {binPath("efleet"), "-bindir", ELFIE_BIN_DIR,
               "-out",            Dir + "/out", "-grace", "1",
               Dir + "/manifest.txt"};
  Spec.StdoutPath = Dir + "/fleet.out";
  Spec.StderrPath = Dir + "/fleet.err";
  auto Pid = spawnProcess(Spec);
  ASSERT_TRUE(Pid.hasValue()) << Pid.message();

  bool SlowStarted = false;
  for (int I = 0; I < 200 && !SlowStarted; ++I) {
    ::usleep(50000);
    for (JournalRecord &Rec : journalRecords())
      if (Rec["rec"] == "start" && Rec["job"] == "slow")
        SlowStarted = true;
  }
  ASSERT_TRUE(SlowStarted);

  // Both drain signals back to back, then another one mid-drain.
  ASSERT_EQ(::kill(*Pid, SIGTERM), 0);
  ASSERT_EQ(::kill(*Pid, SIGINT), 0);
  ::usleep(100000);
  ASSERT_EQ(::kill(*Pid, SIGTERM), 0);

  auto W = waitProcess(*Pid);
  ASSERT_TRUE(W.hasValue());
  ASSERT_TRUE(W->Exited) << "signal " << W->Signal;
  EXPECT_EQ(W->ExitCode, 1);

  int Seals = 0;
  for (JournalRecord &Rec : journalRecords())
    if (Rec["rec"] == "seal")
      ++Seals;
  EXPECT_EQ(Seals, 1);
  auto St = scanJournal(Dir + "/out/journal.jsonl");
  ASSERT_TRUE(St.hasValue());
  EXPECT_TRUE(St->Sealed);
  EXPECT_EQ(St->SealReason, "drain");
  EXPECT_TRUE(St->Done.count("fast"));
}

/// Drain edge: the journal's seal record is torn mid-write (SIGKILL
/// mid-append leaves a partial final line). Resume must treat the journal
/// as unsealed, skip every journaled-terminal job, and re-seal complete —
/// the torn line is tolerated, never fatal, never a re-run.
TEST_F(FleetE2E, ResumeFromJournalTornMidSealRecord) {
  std::string Manifest = formatString("a replay %s/r.pb\n"
                                      "b native /bin/true\n",
                                      Root.c_str());
  ASSERT_FALSE(writeFileText(Dir + "/manifest.txt", Manifest).isError());
  CmdResult First = runFleetCmd("", "", Dir + "/manifest.txt");
  ASSERT_EQ(First.ExitCode, 0) << First.Output;

  // Tear the seal line: keep everything up to a few bytes into it.
  std::string JPath = Dir + "/out/journal.jsonl";
  auto Text = readFileText(JPath);
  ASSERT_TRUE(Text.hasValue()) << Text.message();
  size_t SealAt = Text->rfind("{\"rec\":\"seal\"");
  ASSERT_NE(SealAt, std::string::npos);
  std::string Torn = Text->substr(0, SealAt + 9); // ends inside "seal"
  ASSERT_FALSE(writeFileText(JPath, Torn).isError());
  auto Before = scanJournal(JPath);
  ASSERT_TRUE(Before.hasValue());
  ASSERT_FALSE(Before->Sealed);
  ASSERT_GE(Before->TornLines, 1u);
  size_t StartsBefore = 0;
  for (JournalRecord &Rec : journalRecords())
    if (Rec["rec"] == "start")
      ++StartsBefore;

  CmdResult Second = runFleetCmd("", "", Dir + "/manifest.txt");
  EXPECT_EQ(Second.ExitCode, 0) << Second.Output;
  EXPECT_NE(Second.Output.find("2 skipped as already complete"),
            std::string::npos)
      << Second.Output;

  // No job re-ran, and the journal is sealed complete again with exactly
  // one terminal record per job.
  size_t StartsAfter = 0;
  std::map<std::string, int> TerminalCount;
  for (JournalRecord &Rec : journalRecords()) {
    if (Rec["rec"] == "start")
      ++StartsAfter;
    if (Rec["rec"] == "done" || Rec["rec"] == "quarantine")
      ++TerminalCount[Rec["job"]];
  }
  EXPECT_EQ(StartsAfter, StartsBefore);
  ASSERT_EQ(TerminalCount.size(), 2u);
  for (const auto &[JobId, N] : TerminalCount)
    EXPECT_EQ(N, 1) << JobId;
  auto After = scanJournal(JPath);
  ASSERT_TRUE(After.hasValue());
  EXPECT_TRUE(After->Sealed);
  EXPECT_EQ(After->SealReason, "complete");
}

/// Per-job budget timeouts kill and retry; retries exhausted quarantines.
TEST_F(FleetE2E, TimeoutRetriesThenQuarantines) {
  std::string Manifest = "hang native /bin/sleep 30 !timeout=1 !retries=2\n";
  ASSERT_FALSE(writeFileText(Dir + "/manifest.txt", Manifest).isError());
  CmdResult R = runFleetCmd("", "-backoff-ms 50 -backoff-max-ms 100",
                            Dir + "/manifest.txt");
  EXPECT_EQ(R.ExitCode, 1) << R.Output;
  auto Cause = readFileText(Dir + "/out/quarantine/hang/cause.txt");
  ASSERT_TRUE(Cause.hasValue()) << Cause.message();
  EXPECT_NE(Cause->find("reason: retries-exhausted"), std::string::npos)
      << *Cause;
  EXPECT_NE(Cause->find("attempts: 2"), std::string::npos) << *Cause;
}

/// The !warmup= attribute: the first campaign warms and writes the job's
/// checkpoint sidecar, a re-run of the same campaign finds it and
/// resumes, and a corrupted sidecar is quarantined as deterministic (one
/// attempt, no blind retries).
TEST_F(FleetE2E, WarmupCheckpointSaveResumeAndQuarantine) {
  std::string Manifest = formatString("wsim sim %s/g.elfie !warmup=20000\n",
                                      Root.c_str());
  ASSERT_FALSE(writeFileText(Dir + "/manifest.txt", Manifest).isError());
  std::string Sidecar = Dir + "/out/artifacts/wsim.esimstate";

  // First campaign: no sidecar yet -> the job runs esim -warmup-save.
  CmdResult R = runFleetCmd("", "", Dir + "/manifest.txt");
  auto JobErr = readFileText(Dir + "/out/logs/wsim.a1.err");
  EXPECT_EQ(R.ExitCode, 0) << R.Output
                           << (JobErr ? *JobErr : JobErr.message());
  ASSERT_TRUE(fileExists(Sidecar));
  auto Log = readFileText(Dir + "/out/logs/wsim.a1.out");
  ASSERT_TRUE(Log.hasValue()) << Log.message();
  EXPECT_NE(Log->find("warmup checkpoint saved to"), std::string::npos)
      << *Log;

  // Same campaign re-run fresh (journal cleared, artifacts kept): the
  // sidecar is found and the job resumes instead of re-warming.
  removeFile(Dir + "/out/journal.jsonl");
  R = runFleetCmd("", "", Dir + "/manifest.txt");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  Log = readFileText(Dir + "/out/logs/wsim.a1.out");
  ASSERT_TRUE(Log.hasValue()) << Log.message();
  EXPECT_NE(Log->find("warmup checkpoint loaded from"), std::string::npos)
      << *Log;

  // Corrupt one payload byte: the resume must fail closed and classify
  // as deterministic — quarantined after exactly one attempt, with the
  // EFAULT.SIMSTATE code in the evidence.
  auto Bytes = readFileBytes(Sidecar);
  ASSERT_TRUE(Bytes.hasValue()) << Bytes.message();
  (*Bytes)[Bytes->size() / 2] ^= 0x01;
  ASSERT_FALSE(
      writeFile(Sidecar, Bytes->data(), Bytes->size()).isError());
  removeFile(Dir + "/out/journal.jsonl");
  R = runFleetCmd("", "", Dir + "/manifest.txt");
  EXPECT_EQ(R.ExitCode, 1) << R.Output;
  auto Cause = readFileText(Dir + "/out/quarantine/wsim/cause.txt");
  ASSERT_TRUE(Cause.hasValue()) << Cause.message();
  EXPECT_NE(Cause->find("reason: rejected"), std::string::npos) << *Cause;
  EXPECT_NE(Cause->find("attempts: 1"), std::string::npos)
      << "a corrupt checkpoint must never be retried: " << *Cause;
  auto Stderr = readFileText(Dir + "/out/quarantine/wsim/stderr.txt");
  ASSERT_TRUE(Stderr.hasValue()) << Stderr.message();
  EXPECT_NE(Stderr->find("EFAULT.SIMSTATE."), std::string::npos) << *Stderr;
}

/// Manifest and usage errors surface as the documented exit codes.
TEST_F(FleetE2E, BadInputsUseTaxonomyCodes) {
  CmdResult R = runCmd("", binPath("efleet"));
  EXPECT_EQ(R.ExitCode, 2); // usage
  ASSERT_FALSE(
      writeFileText(Dir + "/bad.txt", "only two-fields\n").isError());
  R = runFleetCmd("", "", Dir + "/bad.txt");
  EXPECT_EQ(R.ExitCode, 1);
  EXPECT_NE(R.Output.find("EFAULT.FLEET.MANIFEST"), std::string::npos)
      << R.Output;
}

} // namespace
