//===- tests/sched/ServiceTest.cpp - efleetd service tests ----------------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// The campaign service, bottom up: protocol grammar and reply parsing,
/// the quota ledger, line assembly and session buffer caps — then the
/// daemon end to end as an operator sees it, driven over its socket with
/// `efleet -connect`: submit/status/stream/cancel, structured busy
/// backpressure, dup rejection, client disconnect mid-stream, graceful
/// shutdown drain, SIGKILL + restart recovery, and the ENOSPC admission
/// pause with probe-based recovery.
///
/// Campaigns here use native /bin jobs only (no pinball fixtures): the
/// service layer is what is under test, and FleetTest already proves the
/// engine against real pipelines.
///
//===----------------------------------------------------------------------===//

#include "sched/Journal.h"
#include "sched/Protocol.h"
#include "sched/Quota.h"
#include "sched/Session.h"
#include "support/FileIO.h"
#include "support/Format.h"
#include "support/SocketIO.h"
#include "support/Subprocess.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/wait.h>

#include <cstdio>
#include <map>
#include <signal.h>
#include <string>
#include <unistd.h>

using namespace elfie;
using namespace elfie::sched;

#ifndef ELFIE_BIN_DIR
#define ELFIE_BIN_DIR ""
#endif

namespace {

//===----------------------------------------------------------------------===//
// Protocol grammar
//===----------------------------------------------------------------------===//

TEST(Protocol, NamesAreDirectorySafe) {
  EXPECT_TRUE(proto::isValidName("team-a"));
  EXPECT_TRUE(proto::isValidName("run.2026_08"));
  EXPECT_TRUE(proto::isValidName("A"));
  EXPECT_TRUE(proto::isValidName(std::string(64, 'x')));
  EXPECT_FALSE(proto::isValidName(""));
  EXPECT_FALSE(proto::isValidName(std::string(65, 'x')));
  EXPECT_FALSE(proto::isValidName("."));
  EXPECT_FALSE(proto::isValidName(".."));
  EXPECT_FALSE(proto::isValidName("a/b"));
  EXPECT_FALSE(proto::isValidName("a b"));
  EXPECT_FALSE(proto::isValidName("caf\xc3\xa9"));
}

TEST(Protocol, ParsesEveryRequestForm) {
  auto R = proto::parseRequest("ping");
  ASSERT_TRUE(R.hasValue());
  EXPECT_EQ(R->Kind, proto::RequestKind::Ping);

  R = proto::parseRequest("submit team  job-1\t12");
  ASSERT_TRUE(R.hasValue()) << R.message();
  EXPECT_EQ(R->Kind, proto::RequestKind::Submit);
  EXPECT_EQ(R->Ns, "team");
  EXPECT_EQ(R->Campaign, "job-1");
  EXPECT_EQ(R->ManifestLines, 12u);

  R = proto::parseRequest("status");
  ASSERT_TRUE(R.hasValue());
  EXPECT_TRUE(R->Ns.empty());
  R = proto::parseRequest("status team");
  ASSERT_TRUE(R.hasValue());
  EXPECT_EQ(R->Ns, "team");
  EXPECT_TRUE(R->Campaign.empty());
  R = proto::parseRequest("status team c1");
  ASSERT_TRUE(R.hasValue());
  EXPECT_EQ(R->Campaign, "c1");

  R = proto::parseRequest("stream team c1");
  ASSERT_TRUE(R.hasValue());
  EXPECT_EQ(R->Kind, proto::RequestKind::Stream);
  R = proto::parseRequest("cancel team c1");
  ASSERT_TRUE(R.hasValue());
  EXPECT_EQ(R->Kind, proto::RequestKind::Cancel);
  R = proto::parseRequest("shutdown");
  ASSERT_TRUE(R.hasValue());
  EXPECT_EQ(R->Kind, proto::RequestKind::Shutdown);
}

TEST(Protocol, RejectsWithStableCodes) {
  struct Case {
    const char *Line;
    const char *Code;
  } Cases[] = {
      {"", proto::CodeProtoCmd},
      {"frobnicate", proto::CodeProtoCmd},
      {"ping extra", proto::CodeProtoArgs},
      {"submit team c1", proto::CodeProtoArgs},     // missing nlines
      {"submit team c1 0", proto::CodeProtoArgs},   // empty body
      {"submit team c1 nan", proto::CodeProtoArgs},
      {"submit team c1 9999", proto::CodeProtoLine}, // over MaxManifestLines
      {"submit ../etc c1 1", proto::CodeProtoNs},
      {"stream a/b c1", proto::CodeProtoNs},
      {"stream team", proto::CodeProtoArgs},
      {"status a b c d", proto::CodeProtoArgs},
  };
  for (const Case &C : Cases) {
    auto R = proto::parseRequest(C.Line);
    ASSERT_FALSE(R.hasValue()) << C.Line;
    EXPECT_EQ(R.takeError().code(), C.Code) << C.Line;
  }
  auto R = proto::parseRequest(std::string(proto::MaxLineBytes + 1, 'p'));
  ASSERT_FALSE(R.hasValue());
  EXPECT_EQ(R.takeError().code(), proto::CodeProtoLine);
}

TEST(Protocol, ReplyRenderParseRoundTrip) {
  struct Case {
    std::string Wire;
    proto::Reply::Kind K;
    std::string Code, Text;
  } Cases[] = {
      {proto::replyOk("accepted t/c jobs=3"), proto::Reply::Kind::Ok, "",
       "accepted t/c jobs=3"},
      {proto::replyOk(), proto::Reply::Kind::Ok, "", ""},
      {proto::replyErr(proto::CodeDup, "campaign t/c already exists"),
       proto::Reply::Kind::Err, proto::CodeDup, "campaign t/c already exists"},
      {proto::replyBusy(proto::CodeBusyJobs, "namespace t is at its quota"),
       proto::Reply::Kind::Busy, proto::CodeBusyJobs,
       "namespace t is at its quota"},
      {proto::replyEvent("{\"rec\":\"done\",\"job\":\"a\"}"),
       proto::Reply::Kind::Event, "", "{\"rec\":\"done\",\"job\":\"a\"}"},
      {proto::replyEnd("complete"), proto::Reply::Kind::End, "", "complete"},
  };
  for (const Case &C : Cases) {
    ASSERT_EQ(C.Wire.back(), '\n');
    auto R = proto::parseReply(C.Wire.substr(0, C.Wire.size() - 1));
    ASSERT_TRUE(R.hasValue()) << C.Wire;
    EXPECT_EQ(R->K, C.K) << C.Wire;
    EXPECT_EQ(R->Code, C.Code) << C.Wire;
    EXPECT_EQ(R->Text, C.Text) << C.Wire;
  }
  EXPECT_FALSE(proto::parseReply("gibberish line").hasValue());
  EXPECT_FALSE(proto::parseReply("err").hasValue()); // code is mandatory
}

//===----------------------------------------------------------------------===//
// Quota ledger
//===----------------------------------------------------------------------===//

TEST(Quota, BoundsCampaignsAndJobsPerNamespace) {
  QuotaLedger L({/*MaxCampaigns=*/2, /*MaxJobs=*/10});
  EXPECT_EQ(L.check("a", 8), nullptr);
  L.admit("a", 8);
  // Job bound: 8 + 3 > 10.
  EXPECT_STREQ(L.check("a", 3), proto::CodeBusyJobs);
  EXPECT_EQ(L.check("a", 2), nullptr);
  L.admit("a", 2);
  // Campaign bound: a third campaign even with zero jobs outstanding.
  L.releaseJobs("a", 10);
  EXPECT_STREQ(L.check("a", 1), proto::CodeBusyCampaigns);
  // Namespaces are isolated shares, not a global pool.
  EXPECT_EQ(L.check("b", 10), nullptr);

  L.releaseCampaign("a");
  EXPECT_EQ(L.check("a", 1), nullptr);
  auto U = L.usage("a");
  EXPECT_EQ(U.Campaigns, 1u);
  EXPECT_EQ(U.Jobs, 0u);
}

TEST(Quota, ReleaseClampsAndErasesEmptyNamespaces) {
  QuotaLedger L({2, 10});
  L.admit("a", 4);
  L.releaseJobs("a", 100); // over-release never underflows
  EXPECT_EQ(L.usage("a").Jobs, 0u);
  L.releaseCampaign("a");
  L.releaseCampaign("a"); // idempotent on an empty namespace
  EXPECT_EQ(L.usage("a").Campaigns, 0u);
  EXPECT_EQ(L.check("a", 10), nullptr);
}

TEST(Quota, MillionCycleChurnStaysExact) {
  QuotaLedger L({4, 100});
  for (int I = 0; I < 250000; ++I) {
    ASSERT_EQ(L.check("ns", 25), nullptr);
    L.admit("ns", 25);
    L.releaseJobs("ns", 25);
    L.releaseCampaign("ns");
  }
  EXPECT_EQ(L.usage("ns").Campaigns, 0u);
  EXPECT_EQ(L.usage("ns").Jobs, 0u);
}

//===----------------------------------------------------------------------===//
// Line assembly and session caps
//===----------------------------------------------------------------------===//

TEST(LineBuffer, AssemblesLinesAcrossArbitraryChunks) {
  LineBuffer B(64);
  std::string Line;
  EXPECT_TRUE(B.feed("pi", 2));
  EXPECT_FALSE(B.pop(Line));
  EXPECT_TRUE(B.feed("ng\nsta", 6));
  ASSERT_TRUE(B.pop(Line));
  EXPECT_EQ(Line, "ping");
  EXPECT_FALSE(B.pop(Line));
  EXPECT_TRUE(B.feed("tus\r\nok\n", 8)); // CRLF peers are tolerated
  ASSERT_TRUE(B.pop(Line));
  EXPECT_EQ(Line, "status");
  ASSERT_TRUE(B.pop(Line));
  EXPECT_EQ(Line, "ok");
  EXPECT_FALSE(B.pop(Line));
  EXPECT_EQ(B.pending(), 0u);
}

TEST(LineBuffer, UnterminatedDataPastCapPoisons) {
  LineBuffer B(8);
  EXPECT_TRUE(B.feed("complete\n", 9)); // a full line may exceed nothing
  std::string Line;
  ASSERT_TRUE(B.pop(Line));
  EXPECT_EQ(Line, "complete");
  EXPECT_FALSE(B.overflowed());
  // 9 pending bytes with no newline in sight: poisoned.
  EXPECT_FALSE(B.feed("abcdefghi", 9));
  EXPECT_TRUE(B.overflowed());
}

TEST(Session, ReadsLinesAndEnforcesRecvCap) {
  int Pair[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Pair), 0);
  ASSERT_FALSE(setNonBlocking(Pair[0]).isError());
  {
    Session S(Pair[0], 1, /*RecvCap=*/32, /*SendCap=*/4096);
    ASSERT_FALSE(writeAllSocket(Pair[1], "ping\n").isError());
    S.onReadable();
    std::string Line;
    ASSERT_TRUE(S.nextLine(Line));
    EXPECT_EQ(Line, "ping");
    EXPECT_FALSE(S.dead());

    S.send("ok pong\n");
    char Buf[64];
    auto R = readSocket(Pair[1], Buf, sizeof(Buf));
    ASSERT_TRUE(R.hasValue());
    EXPECT_EQ(std::string(Buf, R->Bytes), "ok pong\n");

    // A client spraying an endless unterminated line is disconnected when
    // it crosses the recv cap, not buffered forever.
    ASSERT_FALSE(
        writeAllSocket(Pair[1], std::string(64, 'x')).isError());
    S.onReadable();
    EXPECT_TRUE(S.dead());
    EXPECT_TRUE(S.shouldClose());
  } // Session closes Pair[0]
  ::close(Pair[1]);
}

TEST(Session, PeerDisconnectMakesSessionDeadAndSendsAreSwallowed) {
  int Pair[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Pair), 0);
  ASSERT_FALSE(setNonBlocking(Pair[0]).isError());
  Session S(Pair[0], 1, 4096, 4096);
  ::close(Pair[1]); // the client vanishes
  S.onReadable();   // EOF
  EXPECT_TRUE(S.dead());
  // Sends to a dead session are dropped, never an error or a signal.
  S.send("event {\"rec\":\"done\"}\n");
  EXPECT_TRUE(S.shouldClose());
}

//===----------------------------------------------------------------------===//
// Daemon end-to-end
//===----------------------------------------------------------------------===//

struct CmdResult {
  int ExitCode = -1;
  std::string Output; // stdout + stderr
};

CmdResult runCmd(const std::string &Env, const std::string &CmdLine) {
  std::string Full = Env + (Env.empty() ? "" : " ") + CmdLine + " 2>&1";
  FILE *P = popen(Full.c_str(), "r");
  CmdResult R;
  if (!P)
    return R;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
    R.Output.append(Buf, N);
  int Status = pclose(P);
  R.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  return R;
}

std::string binPath(const std::string &Tool) {
  return std::string(ELFIE_BIN_DIR) + "/" + Tool;
}

class ServiceE2E : public testing::Test {
protected:
  static void SetUpTestSuite() {
    Root = testing::TempDir() + "/elfie_service_e2e." +
           std::to_string(getpid());
    removeTree(Root);
    ASSERT_FALSE(createDirectories(Root).isError());
  }
  static void TearDownTestSuite() { removeTree(Root); }

  void SetUp() override {
    Dir = Root + "/" +
          testing::UnitTest::GetInstance()->current_test_info()->name();
    removeTree(Dir);
    ASSERT_FALSE(createDirectories(Dir).isError());
    Sock = Dir + "/d.sock";
  }

  void TearDown() override {
    if (Daemon > 0) {
      killProcessTree(Daemon, SIGKILL);
      (void)waitProcess(Daemon);
      Daemon = -1;
    }
  }

  /// Spawns efleetd against this test's state root and waits for its
  /// socket to accept. Extra flags append (last flag wins in CommandLine);
  /// Env entries are set in the daemon only.
  void startDaemon(
      const std::vector<std::string> &Extra = {},
      const std::vector<std::pair<std::string, std::string>> &Env = {}) {
    SpawnSpec Spec;
    Spec.Argv = {binPath("efleetd"),
                 "-root", Dir + "/state",
                 "-socket", Sock,
                 "-bindir", ELFIE_BIN_DIR,
                 "-workers", "4",
                 "-poll-ms", "5",
                 "-grace", "1",
                 "-retries", "3",
                 "-backoff-ms", "20",
                 "-backoff-max-ms", "100",
                 "-timeout", "30"};
    Spec.Argv.insert(Spec.Argv.end(), Extra.begin(), Extra.end());
    Spec.ExtraEnv = Env;
    Spec.StdoutPath = Dir + formatString("/daemon%d.out", ++DaemonGen);
    Spec.StderrPath = Dir + formatString("/daemon%d.err", DaemonGen);
    auto Pid = spawnProcess(Spec);
    ASSERT_TRUE(Pid.hasValue()) << Pid.message();
    Daemon = *Pid;
    for (int I = 0; I < 400; ++I) {
      auto Fd = connectUnixSocket(Sock);
      if (Fd.hasValue()) {
        ::close(*Fd);
        return;
      }
      ::usleep(25000);
    }
    FAIL() << "daemon socket never came up: " << daemonErr();
  }

  void killDaemon() {
    ASSERT_GT(Daemon, 0);
    killProcessTree(Daemon, SIGKILL);
    (void)waitProcess(Daemon);
    Daemon = -1;
  }

  /// Graceful stop via the protocol; asserts a clean daemon exit.
  void shutdownDaemon() {
    CmdResult R = client("shutdown");
    EXPECT_EQ(R.ExitCode, 0) << R.Output;
    auto W = waitProcess(Daemon);
    Daemon = -1;
    ASSERT_TRUE(W.hasValue());
    ASSERT_TRUE(W->Exited) << "signal " << W->Signal;
    EXPECT_EQ(W->ExitCode, 0);
  }

  CmdResult client(const std::string &Args) {
    return runCmd("", formatString("%s -connect %s %s",
                                   binPath("efleet").c_str(), Sock.c_str(),
                                   Args.c_str()));
  }

  std::string daemonErr() {
    auto T = readFileText(Dir + formatString("/daemon%d.err", DaemonGen));
    return T ? *T : T.message();
  }

  void writeManifest(const std::string &Name, const std::string &Text) {
    ASSERT_FALSE(writeFileText(Dir + "/" + Name, Text).isError());
  }

  CmdResult submit(const std::string &Ns, const std::string &Id,
                   const std::string &ManifestName) {
    return client(formatString("submit %s %s %s/%s", Ns.c_str(), Id.c_str(),
                               Dir.c_str(), ManifestName.c_str()));
  }

  /// Polls `status ns id` until the campaign reports sealed (or the
  /// budget runs out). Returns the final status text.
  std::string waitSealed(const std::string &Ns, const std::string &Id,
                         int BudgetMs = 30000) {
    std::string Last;
    for (int Waited = 0; Waited < BudgetMs; Waited += 100) {
      CmdResult R = client(formatString("status %s %s", Ns.c_str(),
                                        Id.c_str()));
      Last = R.Output;
      if (R.Output.find("state=sealed") != std::string::npos)
        return R.Output;
      ::usleep(100000);
    }
    return Last;
  }

  std::string journalPath(const std::string &Ns, const std::string &Id) {
    return Dir + "/state/ns/" + Ns + "/" + Id + "/journal.jsonl";
  }

  /// done/quarantine record count per job, straight off the on-disk
  /// journal (the chaos invariant: exactly one per job).
  std::map<std::string, int> terminalCounts(const std::string &Ns,
                                            const std::string &Id) {
    std::map<std::string, int> Counts;
    auto Text = readFileText(journalPath(Ns, Id));
    if (!Text)
      return Counts;
    for (const std::string &Line : splitString(*Text, '\n')) {
      JournalRecord Rec;
      if (trimString(Line).empty() || !parseJournalRecord(Line, Rec))
        continue;
      if (Rec["rec"] == "done" || Rec["rec"] == "quarantine")
        ++Counts[Rec["job"]];
    }
    return Counts;
  }

  static std::string Root;
  std::string Dir, Sock;
  pid_t Daemon = -1;
  int DaemonGen = 0;
};

std::string ServiceE2E::Root;

TEST_F(ServiceE2E, PingStatusAndWireErrors) {
  startDaemon();
  CmdResult R = client("ping");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("ok pong"), std::string::npos) << R.Output;

  R = client("status");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("active=0"), std::string::npos) << R.Output;

  R = client("status team nothere");
  EXPECT_EQ(R.ExitCode, 1) << R.Output;
  EXPECT_NE(R.Output.find("EFLEETD.NOTFOUND"), std::string::npos)
      << R.Output;
  R = client("cancel team nothere");
  EXPECT_EQ(R.ExitCode, 1) << R.Output;

  // Raw wire errors, bypassing the client's own arg validation.
  auto Fd = connectUnixSocket(Sock);
  ASSERT_TRUE(Fd.hasValue()) << Fd.message();
  std::string Raw = "frobnicate\n";
  Raw += "stream bad/ns c1\n";
  Raw += std::string(proto::MaxLineBytes + 16, 'z') + "\n";
  Raw += "ping\n";
  ASSERT_FALSE(writeAllSocket(*Fd, Raw).isError());
  std::string Got;
  char Buf[4096];
  while (Got.find("ok pong") == std::string::npos) {
    auto RR = readSocket(*Fd, Buf, sizeof(Buf));
    ASSERT_TRUE(RR.hasValue()) << RR.message();
    ASSERT_FALSE(RR->Closed) << Got;
    Got.append(Buf, RR->Bytes);
  }
  ::close(*Fd);
  EXPECT_NE(Got.find("err EFLEETD.PROTO.CMD"), std::string::npos) << Got;
  EXPECT_NE(Got.find("err EFLEETD.PROTO.NS"), std::string::npos) << Got;
  EXPECT_NE(Got.find("err EFLEETD.PROTO.LINE"), std::string::npos) << Got;

  shutdownDaemon();
}

TEST_F(ServiceE2E, SubmitRunsStreamsAndRejectsDuplicates) {
  startDaemon();
  // One job sleeps long enough that the campaign is reliably still live
  // when the streaming client connects below (instant jobs can seal the
  // campaign before the stream attaches, which is the `end sealed` path
  // tested separately).
  writeManifest("m.txt", "a native /bin/true\n"
                         "b native /bin/true\n"
                         "c native /bin/echo hello\n"
                         "d native /bin/sleep 1\n");
  CmdResult R = submit("team", "c1", "m.txt");
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("accepted team/c1 jobs=4"), std::string::npos)
      << R.Output;

  // The manifest was durable before the ok reply.
  auto M = readFileText(Dir + "/state/ns/team/c1/manifest");
  ASSERT_TRUE(M.hasValue()) << M.message();
  EXPECT_NE(M->find("a native"), std::string::npos);

  // Stream until the campaign seals; every event line is a well-formed
  // journal record on stdout.
  R = client("stream team c1");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("end complete"), std::string::npos) << R.Output;
  int Events = 0;
  for (const std::string &Line : splitString(R.Output, '\n')) {
    if (Line.empty() || Line.compare(0, 1, "{") != 0)
      continue;
    JournalRecord Rec;
    EXPECT_TRUE(parseJournalRecord(Line, Rec)) << Line;
    ++Events;
  }
  EXPECT_GT(Events, 0) << R.Output;

  std::string St = waitSealed("team", "c1");
  EXPECT_NE(St.find("reason=complete"), std::string::npos) << St;
  EXPECT_NE(St.find("done=4"), std::string::npos) << St;

  // Streaming a sealed campaign ends immediately instead of hanging.
  R = client("stream team c1");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("end sealed"), std::string::npos) << R.Output;

  // Same name, same namespace: a permanent error, not backpressure.
  R = submit("team", "c1", "m.txt");
  EXPECT_EQ(R.ExitCode, 1) << R.Output;
  EXPECT_NE(R.Output.find("EFLEETD.DUP"), std::string::npos) << R.Output;
  // Same name in another namespace is a different campaign.
  R = submit("other", "c1", "m.txt");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  waitSealed("other", "c1");

  auto St2 = scanJournal(journalPath("team", "c1"));
  ASSERT_TRUE(St2.hasValue()) << St2.message();
  EXPECT_TRUE(St2->Sealed);
  EXPECT_EQ(St2->SealReason, "complete");
  EXPECT_EQ(St2->Done.size(), 4u);

  shutdownDaemon();
}

TEST_F(ServiceE2E, QuotaBackpressureIsBusyNotError) {
  startDaemon({"-max-campaigns", "2", "-max-jobs", "3"});
  writeManifest("slow.txt", "s1 native /bin/sleep 10 !timeout=30\n"
                            "s2 native /bin/sleep 10 !timeout=30\n");
  writeManifest("slow1.txt", "s1 native /bin/sleep 10 !timeout=30\n");
  writeManifest("one.txt", "only native /bin/true\n");

  CmdResult R = submit("team", "big", "slow.txt");
  ASSERT_EQ(R.ExitCode, 0) << R.Output;

  // Job quota: 2 running + 2 more > 3.
  R = submit("team", "big2", "slow.txt");
  EXPECT_EQ(R.ExitCode, 4) << R.Output;
  EXPECT_NE(R.Output.find("busy EFLEETD.BUSY.JOBS"), std::string::npos)
      << R.Output;

  // A one-job campaign still fits (3 total) ...
  R = submit("team", "small", "slow1.txt");
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  // ... but the namespace is now at its campaign quota.
  R = submit("team", "small2", "one.txt");
  EXPECT_EQ(R.ExitCode, 4) << R.Output;
  EXPECT_NE(R.Output.find("busy EFLEETD.BUSY.CAMPAIGNS"), std::string::npos)
      << R.Output;

  // Quotas are per namespace, not global.
  R = submit("other", "small", "one.txt");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;

  // Cancel drains the big campaign; its slots free and the busy submit —
  // retried exactly as the reply tells the client to — goes through.
  R = client("cancel team big");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  std::string St = waitSealed("team", "big");
  EXPECT_NE(St.find("reason=drain"), std::string::npos) << St;
  bool Accepted = false;
  for (int I = 0; I < 100 && !Accepted; ++I) {
    R = submit("team", "small2", "one.txt");
    if (R.ExitCode == 0)
      Accepted = true;
    else {
      ASSERT_EQ(R.ExitCode, 4) << R.Output;
      ::usleep(100000);
    }
  }
  EXPECT_TRUE(Accepted) << R.Output;

  shutdownDaemon();
}

TEST_F(ServiceE2E, StreamerDisconnectNeverHurtsTheCampaign) {
  startDaemon();
  writeManifest("m.txt", "a native /bin/sleep 2\n"
                         "b native /bin/sleep 2\n");
  CmdResult R = submit("team", "c1", "m.txt");
  ASSERT_EQ(R.ExitCode, 0) << R.Output;

  // A streaming client attaches, then dies mid-stream (SIGKILL, no
  // goodbye). The daemon must drop the subscription and keep running.
  SpawnSpec Spec;
  Spec.Argv = {binPath("efleet"), "-connect", Sock, "stream", "team", "c1"};
  Spec.StdoutPath = Dir + "/streamer.out";
  Spec.StderrPath = Dir + "/streamer.err";
  auto Pid = spawnProcess(Spec);
  ASSERT_TRUE(Pid.hasValue()) << Pid.message();
  ::usleep(300000);
  killProcessTree(*Pid, SIGKILL);
  (void)waitProcess(*Pid);

  R = client("ping");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;

  std::string St = waitSealed("team", "c1");
  EXPECT_NE(St.find("reason=complete"), std::string::npos) << St;
  EXPECT_NE(St.find("done=2"), std::string::npos) << St;
  shutdownDaemon();
}

TEST_F(ServiceE2E, SigkillRestartRecoversZeroLostZeroDuplicated) {
  startDaemon();
  writeManifest("m.txt", "f1 native /bin/true\n"
                         "f2 native /bin/true\n"
                         "s1 native /bin/sleep 1\n"
                         "s2 native /bin/sleep 1\n");
  CmdResult R = submit("team", "c1", "m.txt");
  ASSERT_EQ(R.ExitCode, 0) << R.Output;

  // SIGKILL with the fast jobs likely journaled done and the sleeps in
  // flight. Workers are orphaned — they only write log files, never the
  // journal, so the restart re-runs their jobs from journal truth.
  ::usleep(400000);
  killDaemon();

  startDaemon();
  EXPECT_NE(daemonErr().find("recover: resuming team/c1"),
            std::string::npos)
      << daemonErr();

  std::string St = waitSealed("team", "c1");
  EXPECT_NE(St.find("reason=complete"), std::string::npos) << St;
  EXPECT_NE(St.find("done=4"), std::string::npos) << St;

  std::map<std::string, int> Counts = terminalCounts("team", "c1");
  ASSERT_EQ(Counts.size(), 4u);
  for (const auto &[Job, N] : Counts)
    EXPECT_EQ(N, 1) << "job '" << Job << "' lost or duplicated";

  // Recovery after the seal: a fresh daemon lists the campaign as
  // finished without resuming it.
  shutdownDaemon();
  startDaemon();
  R = client("status team c1");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("reason=complete"), std::string::npos)
      << R.Output;
  R = client("status");
  EXPECT_NE(R.Output.find("active=0"), std::string::npos) << R.Output;
  shutdownDaemon();
}

TEST_F(ServiceE2E, ShutdownDrainsInFlightWorkAndResumeFinishesIt) {
  startDaemon();
  writeManifest("m.txt", "fast native /bin/true\n"
                         "slow native /bin/sleep 3 !timeout=30\n");
  CmdResult R = submit("team", "c1", "m.txt");
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  ::usleep(300000); // let the slow job start

  R = client("shutdown");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("draining"), std::string::npos) << R.Output;

  // Admission is closed while the drain runs: structured busy, exit 4.
  writeManifest("late.txt", "late native /bin/true\n");
  R = submit("team", "c2", "late.txt");
  if (R.ExitCode != 1) { // the daemon may already be gone (conn refused)
    EXPECT_EQ(R.ExitCode, 4) << R.Output;
    EXPECT_NE(R.Output.find("EFLEETD.BUSY.DRAIN"), std::string::npos)
        << R.Output;
  }

  auto W = waitProcess(Daemon);
  Daemon = -1;
  ASSERT_TRUE(W.hasValue());
  ASSERT_TRUE(W->Exited);
  EXPECT_EQ(W->ExitCode, 0);

  auto St = scanJournal(journalPath("team", "c1"));
  ASSERT_TRUE(St.hasValue()) << St.message();
  EXPECT_TRUE(St->Sealed);
  EXPECT_EQ(St->SealReason, "drain");
  EXPECT_TRUE(St->Done.count("fast"));
  EXPECT_FALSE(St->terminal("slow"));

  // The drained campaign resumes on the next start and completes.
  startDaemon();
  std::string Final = waitSealed("team", "c1");
  EXPECT_NE(Final.find("reason=complete"), std::string::npos) << Final;
  std::map<std::string, int> Counts = terminalCounts("team", "c1");
  ASSERT_EQ(Counts.size(), 2u);
  for (const auto &[Job, N] : Counts)
    EXPECT_EQ(N, 1) << Job;
  shutdownDaemon();
}

TEST_F(ServiceE2E, DiskPressurePausesAdmissionUntilProbeRecovers) {
  // The injected ENOSPC lands on the daemon's 4th write: manifest, plan
  // record, start record, then the exit-record append fails. The daemon
  // must pause admission (busy EFLEETD.BUSY.DISK), drain the campaign,
  // and reopen admission when the probe write succeeds (the one-shot
  // fault is spent by then).
  startDaemon({"-probe-ms", "2000"},
              {{"ELFIE_FAULT_SPEC", "write:4:enospc"}});
  writeManifest("m.txt", "a native /bin/true\n");
  writeManifest("late.txt", "late native /bin/true\n");

  CmdResult R = submit("team", "c1", "m.txt");
  ASSERT_EQ(R.ExitCode, 0) << R.Output;

  // Wait for the pause to take effect, then prove the structured refusal.
  bool Paused = false;
  for (int I = 0; I < 100 && !Paused; ++I) {
    R = client("status");
    Paused = R.Output.find("paused=1") != std::string::npos;
    if (!Paused)
      ::usleep(100000);
  }
  ASSERT_TRUE(Paused) << R.Output << daemonErr();
  R = submit("team", "late", "late.txt");
  EXPECT_EQ(R.ExitCode, 4) << R.Output;
  EXPECT_NE(R.Output.find("busy EFLEETD.BUSY.DISK"), std::string::npos)
      << R.Output;

  // The documented client policy: busy means retry later. The probe
  // unpauses admission within its cadence and the retry goes through.
  bool Accepted = false;
  for (int I = 0; I < 150 && !Accepted; ++I) {
    R = submit("team", "late", "late.txt");
    if (R.ExitCode == 0)
      Accepted = true;
    else {
      ASSERT_EQ(R.ExitCode, 4) << R.Output;
      ::usleep(100000);
    }
  }
  ASSERT_TRUE(Accepted) << R.Output << daemonErr();
  waitSealed("team", "late");

  // c1 drained under the outage; a restart (healthy disk) finishes it.
  shutdownDaemon();
  startDaemon();
  std::string Final = waitSealed("team", "c1");
  EXPECT_NE(Final.find("reason=complete"), std::string::npos)
      << Final << daemonErr();
  std::map<std::string, int> Counts = terminalCounts("team", "c1");
  ASSERT_EQ(Counts.size(), 1u);
  EXPECT_EQ(Counts["a"], 1);
  shutdownDaemon();
}

TEST_F(ServiceE2E, SecondDaemonOnSameRootIsRefused) {
  startDaemon();
  CmdResult R = runCmd(
      "", formatString("%s -root %s/state -socket %s/other.sock",
                       binPath("efleetd").c_str(), Dir.c_str(), Dir.c_str()));
  EXPECT_NE(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("EFAULT.SERVICE.LOCKED"), std::string::npos)
      << R.Output;
  // The incumbent is unharmed.
  R = client("ping");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  shutdownDaemon();
}

} // namespace
