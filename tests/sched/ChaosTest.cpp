//===- tests/sched/ChaosTest.cpp - seeded chaos episodes over efleetd -----===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// Drives the echaos harness: each episode boots a real efleetd, submits
/// campaigns from concurrent clients, then kills the daemon (SIGKILL),
/// streamers, and workers at seeded random instants, restarts, waits for
/// every campaign to seal, and verifies the journal-derived invariants
/// from disk alone — exactly one terminal record per manifest job, no
/// terminals for unknown jobs, every journal sealed complete, every acked
/// submit durable. A clean episode exits 0; any violation is printed and
/// fails the seed.
///
/// The default build runs a handful of seeds per configuration; building
/// with -DELFIE_SLOW_TESTS=ON runs the 100-seed soak in both
/// configurations (the acceptance sweep, >= 200 episodes).
///
//===----------------------------------------------------------------------===//

#include "support/FileIO.h"
#include "support/Format.h"

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <string>
#include <unistd.h>

using namespace elfie;

#ifndef ELFIE_BIN_DIR
#define ELFIE_BIN_DIR ""
#endif

#ifdef ELFIE_SLOW_TESTS
static constexpr int ChaosSeeds = 100;
#else
static constexpr int ChaosSeeds = 3;
#endif

namespace {

struct CmdResult {
  int ExitCode = -1;
  std::string Output;
};

CmdResult runCmd(const std::string &CmdLine) {
  std::string Full = CmdLine + " 2>&1";
  FILE *P = popen(Full.c_str(), "r");
  CmdResult R;
  if (!P)
    return R;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
    R.Output.append(Buf, N);
  int Status = pclose(P);
  R.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  return R;
}

/// One episode. Roots are per-pid + per-seed + per-config so parallel
/// ctest shards never collide (and short: the root carries a socket).
CmdResult runEpisode(int Seed, const std::string &ExtraFlags) {
  std::string Root = testing::TempDir() +
                     formatString("/ec.%d.%d%s", getpid(), Seed,
                                  ExtraFlags.empty() ? "" : ".k");
  removeTree(Root);
  CmdResult R = runCmd(formatString(
      "%s/echaos -root %s -bindir %s -seed %d %s", ELFIE_BIN_DIR,
      Root.c_str(), ELFIE_BIN_DIR, Seed, ExtraFlags.c_str()));
  if (R.ExitCode == 0)
    removeTree(Root); // keep failed episodes on disk for forensics
  return R;
}

/// The full fault mix: daemon SIGKILL + restart, streamer kills, late
/// submits, worker crashes (the flaky/crash jobs in the generated
/// manifests) — across seeds.
TEST(ChaosE2E, SeededEpisodesWithDaemonKillsStayClean) {
  for (int Seed = 1; Seed <= ChaosSeeds; ++Seed) {
    CmdResult R = runEpisode(Seed, "");
    ASSERT_EQ(R.ExitCode, 0) << "seed " << Seed << ":\n" << R.Output;
    EXPECT_NE(R.Output.find("clean"), std::string::npos)
        << "seed " << Seed << ":\n" << R.Output;
  }
}

/// Same episodes without daemon kills: the daemon must also survive an
/// entire episode of client/worker chaos in one uninterrupted run.
TEST(ChaosE2E, SeededEpisodesDaemonLongevityStayClean) {
  for (int Seed = 1; Seed <= ChaosSeeds; ++Seed) {
    CmdResult R = runEpisode(1000 + Seed, "-no-daemon-kill");
    ASSERT_EQ(R.ExitCode, 0) << "seed " << 1000 + Seed << ":\n" << R.Output;
  }
}

} // namespace
