//===- tests/common/Subprocess.h - run emitted ELFies -----------*- C++ -*-===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes an emitted native ELFie as a subprocess and captures stdout,
/// stderr, and the wait status. Used by the pinball2elf tests, examples,
/// and benches to validate that ELFies really run natively.
///
//===----------------------------------------------------------------------===//

#ifndef ELFIE_TESTS_COMMON_SUBPROCESS_H
#define ELFIE_TESTS_COMMON_SUBPROCESS_H

#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <signal.h>

namespace elfie {
namespace test {

struct ProcessResult {
  bool Started = false;
  bool Exited = false;   ///< normal exit (vs signal)
  int ExitCode = -1;     ///< when Exited
  int TermSignal = 0;    ///< when killed by a signal
  std::string Stdout;
  std::string Stderr;
  std::string Error;
};

/// Runs \p Path (argv[0] only) with \p WorkDir as its working directory
/// (empty = inherit), capturing stdout/stderr. Kills the child after
/// \p TimeoutSec seconds.
inline ProcessResult runProcess(const std::string &Path,
                                const std::string &WorkDir = "",
                                int TimeoutSec = 30) {
  ProcessResult R;
  int OutPipe[2], ErrPipe[2];
  if (pipe(OutPipe) != 0 || pipe(ErrPipe) != 0) {
    R.Error = "pipe failed";
    return R;
  }
  pid_t Pid = fork();
  if (Pid < 0) {
    R.Error = "fork failed";
    return R;
  }
  if (Pid == 0) {
    // Child.
    dup2(OutPipe[1], 1);
    dup2(ErrPipe[1], 2);
    close(OutPipe[0]);
    close(OutPipe[1]);
    close(ErrPipe[0]);
    close(ErrPipe[1]);
    if (!WorkDir.empty() && chdir(WorkDir.c_str()) != 0)
      _exit(126);
    alarm(static_cast<unsigned>(TimeoutSec));
    char *const Argv[] = {const_cast<char *>(Path.c_str()), nullptr};
    execv(Path.c_str(), Argv);
    _exit(125); // exec failed
  }
  close(OutPipe[1]);
  close(ErrPipe[1]);
  R.Started = true;

  auto Drain = [](int Fd, std::string &Out) {
    char Buf[4096];
    ssize_t N;
    while ((N = read(Fd, Buf, sizeof(Buf))) > 0)
      Out.append(Buf, static_cast<size_t>(N));
  };
  // Sequential drains suffice: pipe buffers hold our small test outputs.
  Drain(OutPipe[0], R.Stdout);
  Drain(ErrPipe[0], R.Stderr);
  close(OutPipe[0]);
  close(ErrPipe[0]);

  int Status = 0;
  if (waitpid(Pid, &Status, 0) < 0) {
    R.Error = "waitpid failed";
    return R;
  }
  if (WIFEXITED(Status)) {
    R.Exited = true;
    R.ExitCode = WEXITSTATUS(Status);
  } else if (WIFSIGNALED(Status)) {
    R.TermSignal = WTERMSIG(Status);
  }
  return R;
}

} // namespace test
} // namespace elfie

#endif // ELFIE_TESTS_COMMON_SUBPROCESS_H
