//===- tests/common/TestHelpers.h - Shared test fixtures --------*- C++ -*-===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Guest programs and driver helpers shared by the pinball, replay, core
/// (pinball2elf), and simulator test suites.
///
//===----------------------------------------------------------------------===//

#ifndef ELFIE_TESTS_COMMON_TESTHELPERS_H
#define ELFIE_TESTS_COMMON_TESTHELPERS_H

#include "easm/Assembler.h"
#include "elf/ELFReader.h"
#include "pinball/Logger.h"
#include "support/FileIO.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace elfie {
namespace test {

/// A compute-heavy deterministic program: mixes ALU, memory, branches, and
/// an output syscall; runs ~50k instructions.
inline std::string computeProgram() {
  return R"(
_start:
  la   r1, table          # build a table
  ldi  r2, 0              # i
  ldi  r3, 512            # n
fill:
  muli r4, r2, 1103515245
  xori r4, r4, 12345
  shli r5, r2, 3
  add  r5, r5, r1
  st8  r4, 0(r5)
  addi r2, r2, 1
  blt  r2, r3, fill
  # checksum loop with data-dependent branches
  ldi  r2, 0
  ldi  r6, 0              # sum
  ldi  r9, 40             # outer iterations
outer:
  ldi  r2, 0
sumloop:
  shli r5, r2, 3
  add  r5, r5, r1
  ld8  r4, 0(r5)
  andi r8, r4, 1
  beqz r8, even
  add  r6, r6, r4
  jmp  next
even:
  sub  r6, r6, r4
next:
  addi r2, r2, 1
  blt  r2, r3, sumloop
  addi r9, r9, -1
  bnez r9, outer
  # write the checksum digits (low byte) to stdout
  la   r1, out
  st1  r6, 0(r1)
  ldi  r7, 2
  ldi  r1, 1
  la   r2, out
  ldi  r3, 1
  syscall
  ldi  r7, 1
  ldi  r1, 0
  syscall
  .data
  .align 8
out:   .space 8
table: .space 4096
)";
}

/// A program whose behaviour depends on the clock syscall inside the
/// interesting region (the paper's "non-repeatable system call" case).
inline std::string clockProgram() {
  return R"(
_start:
  ldi  r9, 0
loop:
  ldi  r7, 8              # clock_gettime_ns
  syscall
  mov  r10, r1
  andi r10, r10, 255
  add  r9, r9, r10
  addi r8, r8, 1
  slti r4, r8, 2000
  bnez r4, loop
  mov  r1, r9
  ldi  r7, 1
  syscall
)";
}

/// A program that opens a file before the region and reads it inside the
/// region (the SYSSTATE / FD_n case, paper §II-C2). Reads 4 bytes at a
/// time, 64 times, summing the bytes.
inline std::string fileReaderProgram() {
  return R"(
_start:
  ldi  r7, 4              # open("data.bin", O_RDONLY)
  la   r1, path
  ldi  r2, 0
  ldi  r3, 0
  syscall
  mov  r9, r1             # fd (expected 3)
  ldi  r10, 0             # sum
  ldi  r11, 0             # iteration
  # padding work so the open is clearly before the region
  ldi  r2, 0
pad:
  addi r2, r2, 1
  slti r3, r2, 5000
  bnez r3, pad
region_body:
  ldi  r7, 3              # read(fd, buf, 4)
  mov  r1, r9
  la   r2, buf
  ldi  r3, 4
  syscall
  beqz r1, done           # EOF
  la   r2, buf
  ld1  r3, 0(r2)
  add  r10, r10, r3
  ld1  r3, 1(r2)
  add  r10, r10, r3
  ld1  r3, 2(r2)
  add  r10, r10, r3
  ld1  r3, 3(r2)
  add  r10, r10, r3
  addi r11, r11, 1
  slti r3, r11, 64
  bnez r3, region_body
done:
  ldi  r7, 5              # close(fd)
  mov  r1, r9
  syscall
  mov  r1, r10
  ldi  r7, 1              # exit_group(sum & 0xff...)
  syscall
  .data
path: .asciz "data.bin"
  .align 8
buf:  .space 8
)";
}

/// An 8-thread program with spin-wait synchronization (active-wait OpenMP
/// style, paper §IV-B): the main thread spawns 7 workers; all threads
/// amoadd into per-thread counters and meet at a spin barrier each round.
inline std::string multiThreadProgram(int Threads = 8, int Rounds = 4,
                                      int WorkPerRound = 2000) {
  std::string S = R"(
  .equ NTHREADS, )" + std::to_string(Threads) + R"(
  .equ ROUNDS, )" + std::to_string(Rounds) + R"(
  .equ WORK, )" + std::to_string(WorkPerRound) + R"(
_start:
  ldi  r9, 1               # next thread index
spawn:
  ldi  r7, 9               # clone(entry=worker, stack, arg=index)
  la   r1, worker
  la   r2, stacks
  muli r3, r9, 8192
  add  r2, r2, r3
  mov  r3, r9
  syscall
  addi r9, r9, 1
  slti r4, r9, NTHREADS
  bnez r4, spawn
  ldi  r1, 0               # main thread participates as index 0
  jal  lr, thread_work
  # wait for all workers to finish all rounds, then exit_group
waitend:
  la   r2, finished
  ld8  r3, 0(r2)
  pause
  slti r4, r3, NTHREADS
  bnez r4, waitend
  la   r2, total
  ld8  r1, 0(r2)
  la   r3, outbuf
  st8  r1, 0(r3)
  ldi  r7, 2              # write(1, outbuf, 8): observable final total
  mov  r5, r1
  ldi  r1, 1
  mov  r2, r3
  ldi  r3, 8
  syscall
  mov  r1, r5
  ldi  r7, 1
  syscall

worker:                    # r1 = thread index
  jal  lr, thread_work
  ldi  r7, 0               # exit(0)
  ldi  r1, 0
  syscall

thread_work:               # r1 = index; clobbers r2..r6, r8, r10..r13
  mov  r10, r1             # index
  ldi  r11, 0              # round
round:
  # do WORK amoadds into the shared total
  ldi  r12, 0
work:
  la   r2, total
  ldi  r3, 1
  amoadd r4, (r2), r3
  addi r12, r12, 1
  slti r5, r12, WORK
  bnez r5, work
  # barrier: arrive
  la   r2, barrier
  ldi  r3, 1
  amoadd r4, (r2), r3
  addi r11, r11, 1
  muli r13, r11, NTHREADS  # expected arrivals after this round
barrier_spin:
  la   r2, barrier
  ld8  r4, 0(r2)
  pause
  blt  r4, r13, barrier_spin
  slti r5, r11, ROUNDS
  bnez r5, round
  # signal completion
  la   r2, finished
  ldi  r3, 1
  amoadd r4, (r2), r3
  ret

  .bss
  .align 8
total:    .space 8
barrier:  .space 8
finished: .space 8
outbuf:   .space 8
stacks:   .space )" + std::to_string(8192 * (Threads + 1)) + R"(
)";
  return S;
}

/// Builds a VM loaded with \p Src; records stdout into \p CapturedOut.
inline std::unique_ptr<vm::VM>
makeVM(const std::string &Src, std::shared_ptr<std::string> CapturedOut,
       vm::VMConfig Config = vm::VMConfig(),
       std::vector<std::string> Args = {}) {
  if (CapturedOut)
    Config.StdoutSink = [CapturedOut](const char *P, size_t N) {
      CapturedOut->append(P, N);
    };
  auto Image = easm::assembleToELF(Src, "test.s");
  EXPECT_TRUE(Image.hasValue()) << Image.message();
  if (!Image)
    return nullptr;
  auto Reader = elf::ELFReader::parse(*Image);
  EXPECT_TRUE(Reader.hasValue()) << Reader.message();
  auto M = std::make_unique<vm::VM>(Config);
  Error E = M->loadELF(*Reader);
  EXPECT_FALSE(E.isError()) << E.message();
  E = M->setupMainThread(Args);
  EXPECT_FALSE(E.isError()) << E.message();
  return M;
}

/// Writes \p Src to a guest ELF file under \p Dir and returns the path.
inline std::string writeGuestELF(const std::string &Dir,
                                 const std::string &Name,
                                 const std::string &Src) {
  EXPECT_FALSE(createDirectories(Dir).isError());
  std::string Path = Dir + "/" + Name;
  Error E = easm::assembleToFile(Src, Name + ".s", Path);
  EXPECT_FALSE(E.isError()) << E.message();
  return Path;
}

/// Captures a pinball from \p Src over [Start, Start+Len).
inline Expected<pinball::Pinball>
capture(const std::string &Dir, const std::string &Src, uint64_t Start,
        uint64_t Len, pinball::LoggerOptions Opts,
        vm::VMConfig Config = vm::VMConfig()) {
  pinball::CaptureRequest Req;
  Req.ProgramPath = writeGuestELF(Dir, "prog.elf", Src);
  Req.RegionStart = Start;
  Req.RegionLength = Len;
  Req.Opts = Opts;
  Req.Config = Config;
  return pinball::captureRegion(Req);
}

} // namespace test
} // namespace elfie

#endif // ELFIE_TESTS_COMMON_TESTHELPERS_H
