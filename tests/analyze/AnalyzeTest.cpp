//===- tests/analyze/AnalyzeTest.cpp - everify pass tests -----------------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Verifies the everify static-analysis passes: clean ELFies produce zero
/// error findings, and each pass detects a deliberately corrupted input
/// with its documented finding code (DESIGN.md §"Static verification").
/// Corruptions are byte patches on the emitted image (headers, context
/// blocks, startup code) or mutations of a copied pinball.
///
//===----------------------------------------------------------------------===//

#include "analyze/Passes.h"
#include "core/Pinball2Elf.h"
#include "elf/ELFTypes.h"
#include "isa/ISA.h"
#include "sysstate/SysState.h"
#include "vm/VM.h"
#include "x86/Translator.h"

#include "../common/TestHelpers.h"

#include <gtest/gtest.h>

#include <cstring>
#include <unistd.h>

using namespace elfie;
using namespace elfie::test;
using pinball::LoggerOptions;

namespace {

std::string tempDir(const std::string &Name) {
  // ctest runs each test case as its own parallel process, and corpus() is
  // rebuilt in every one of them — the path must be per-process or sibling
  // processes race on removeTree/capture in the same directory.
  std::string D = testing::TempDir() + "/elfie_analyze_" + Name + "_" +
                  std::to_string(getpid());
  removeTree(D);
  createDirectories(D);
  return D;
}

//===--------------------------------------------------------------------===//
// Shared corpus: one captured pinball, emitted to all three targets.
//===--------------------------------------------------------------------===//

struct Corpus {
  pinball::Pinball PB;
  std::vector<uint8_t> Native, Guest, Object;
  bool OK = false;
};

const Corpus &corpus() {
  static Corpus C = [] {
    Corpus X;
    std::string Dir = tempDir("corpus");
    auto PB = capture(Dir, computeProgram(), 2000, 4000, LoggerOptions::fat());
    EXPECT_TRUE(PB.hasValue()) << PB.message();
    if (!PB)
      return X;
    X.PB = std::move(*PB);
    core::Pinball2ElfOptions Opts;
    auto N = core::emitNativeElfie(X.PB, Opts);
    EXPECT_TRUE(N.hasValue()) << N.message();
    auto G = core::emitGuestElfie(X.PB, Opts);
    EXPECT_TRUE(G.hasValue()) << G.message();
    auto O = core::emitElfieObject(X.PB, Opts);
    EXPECT_TRUE(O.hasValue()) << O.message();
    if (!N || !G || !O)
      return X;
    X.Native = std::move(*N);
    X.Guest = std::move(*G);
    X.Object = std::move(*O);
    removeTree(Dir);
    X.OK = true;
    return X;
  }();
  return C;
}

/// Runs the standard pass pipeline over an in-memory image.
analyze::Report runOn(const std::vector<uint8_t> &Image,
                      const pinball::Pinball *PB,
                      const std::string &SysstateDir = "",
                      int ExpectMarkers = -1) {
  auto Elf = elf::ELFReader::parse(Image);
  EXPECT_TRUE(Elf.hasValue()) << Elf.message();
  analyze::Report R;
  if (!Elf)
    return R;
  analyze::AnalysisInput In;
  In.Elf = &*Elf;
  In.PB = PB;
  In.SysstateDir = SysstateDir;
  In.Kind = analyze::AnalysisInput::classify(*Elf);
  In.ExpectMarkers = ExpectMarkers;
  analyze::PassManager PM;
  analyze::addStandardPasses(PM);
  PM.runAll(In, R);
  return R;
}

bool hasFinding(const analyze::Report &R, const std::string &Code,
                analyze::Severity Sev = analyze::Severity::Error) {
  for (const analyze::Finding &F : R.findings())
    if (F.Code == Code && F.Sev == Sev)
      return true;
  return false;
}

//===--------------------------------------------------------------------===//
// Raw header patching (corrupting emitted images in place).
//===--------------------------------------------------------------------===//

elf::Elf64_Ehdr readEhdr(const std::vector<uint8_t> &B) {
  elf::Elf64_Ehdr H;
  std::memcpy(&H, B.data(), sizeof(H));
  return H;
}

elf::Elf64_Shdr readShdr(const std::vector<uint8_t> &B, size_t Index) {
  elf::Elf64_Shdr S;
  std::memcpy(&S, B.data() + readEhdr(B).e_shoff + Index * sizeof(S),
              sizeof(S));
  return S;
}

void writeShdr(std::vector<uint8_t> &B, size_t Index,
               const elf::Elf64_Shdr &S) {
  std::memcpy(B.data() + readEhdr(B).e_shoff + Index * sizeof(S), &S,
              sizeof(S));
}

elf::Elf64_Phdr readPhdr(const std::vector<uint8_t> &B, size_t Index) {
  elf::Elf64_Phdr P;
  std::memcpy(&P, B.data() + readEhdr(B).e_phoff + Index * sizeof(P),
              sizeof(P));
  return P;
}

void writePhdr(std::vector<uint8_t> &B, size_t Index,
               const elf::Elf64_Phdr &P) {
  std::memcpy(B.data() + readEhdr(B).e_phoff + Index * sizeof(P), &P,
              sizeof(P));
}

/// Index of the section named \p Name, or SIZE_MAX.
size_t sectionIndex(const std::vector<uint8_t> &B, const std::string &Name) {
  elf::Elf64_Ehdr E = readEhdr(B);
  elf::Elf64_Shdr Str = readShdr(B, E.e_shstrndx);
  for (size_t I = 0; I < E.e_shnum; ++I) {
    elf::Elf64_Shdr S = readShdr(B, I);
    const char *N =
        reinterpret_cast<const char *>(B.data() + Str.sh_offset + S.sh_name);
    if (Name == N)
      return I;
  }
  return SIZE_MAX;
}

/// Patches \p Size bytes of loaded memory at virtual address \p VAddr in
/// the file image, resolving the address through section \p SecName.
void patchAtVAddr(std::vector<uint8_t> &B, const std::string &SecName,
                  uint64_t VAddr, const void *Data, size_t Size) {
  size_t Index = sectionIndex(B, SecName);
  ASSERT_NE(Index, SIZE_MAX) << SecName;
  elf::Elf64_Shdr S = readShdr(B, Index);
  ASSERT_GE(VAddr, S.sh_addr);
  ASSERT_LE(VAddr + Size, S.sh_addr + S.sh_size);
  std::memcpy(B.data() + S.sh_offset + (VAddr - S.sh_addr), Data, Size);
}

uint64_t stackPageCount(const pinball::Pinball &PB) {
  uint64_t N = 0;
  for (const auto &P : PB.Image)
    if (P.Addr >= PB.Meta.StackBase && P.Addr < PB.Meta.StackTop)
      ++N;
  return N;
}

//===--------------------------------------------------------------------===//
// Clean ELFies verify with zero errors.
//===--------------------------------------------------------------------===//

// Satellite: the stack-collision workaround (§II-B3) holds on a pinball
// that actually captured stack pages — they travel in .elfie.stash at the
// stash base, and no PT_LOAD touches the checkpointed stack range.
TEST(Analyze, NativeCleanVerifiesWithStashedStack) {
  const Corpus &C = corpus();
  ASSERT_TRUE(C.OK);
  ASSERT_GT(stackPageCount(C.PB), 0u);

  analyze::Report R = runOn(C.Native, &C.PB, "", 1);
  EXPECT_EQ(R.errorCount(), 0u) << R.renderText();

  auto Elf = elf::ELFReader::parse(C.Native);
  ASSERT_TRUE(Elf.hasValue());
  const auto *Stash = Elf->findSection(".elfie.stash");
  ASSERT_NE(Stash, nullptr);
  EXPECT_EQ(Stash->Addr, core::NativeLayout::StashBase);
  EXPECT_EQ(Stash->Size, stackPageCount(C.PB) * vm::GuestPageSize);
  for (const auto &Seg : Elf->segments())
    if (Seg.Type == elf::PT_LOAD)
      EXPECT_FALSE(Seg.VAddr < C.PB.Meta.StackTop &&
                   Seg.VAddr + Seg.MemSize > C.PB.Meta.StackBase)
          << "PT_LOAD overlaps the checkpointed stack";
}

TEST(Analyze, GuestCleanVerifies) {
  const Corpus &C = corpus();
  ASSERT_TRUE(C.OK);
  analyze::Report R = runOn(C.Guest, &C.PB, "", 1);
  EXPECT_EQ(R.errorCount(), 0u) << R.renderText();
}

// Satellite: Target::Object goes through everify cleanly — the passes that
// need a loader view or startup code declare themselves inapplicable
// instead of reporting bogus errors.
TEST(Analyze, ObjectSkipsInapplicablePasses) {
  const Corpus &C = corpus();
  ASSERT_TRUE(C.OK);
  analyze::Report R = runOn(C.Object, &C.PB);
  EXPECT_EQ(R.errorCount(), 0u) << R.renderText();

  std::vector<std::string> Skipped;
  for (const analyze::Finding &F : R.findings())
    if (F.Code == "PASS.SKIPPED")
      Skipped.push_back(F.Message);
  ASSERT_GE(Skipped.size(), 3u);
  auto SkippedPass = [&](const std::string &Name) {
    for (const std::string &M : Skipped)
      if (M.compare(0, Name.size(), Name) == 0)
        return true;
    return false;
  };
  EXPECT_TRUE(SkippedPass("layout"));
  EXPECT_TRUE(SkippedPass("context"));
  EXPECT_TRUE(SkippedPass("reach"));
  // Budget/perm cross-checks still run: objects carry pages and symbols.
  EXPECT_FALSE(SkippedPass("budget"));
  EXPECT_FALSE(SkippedPass("perm"));
}

//===--------------------------------------------------------------------===//
// LayoutPass corruption tests.
//===--------------------------------------------------------------------===//

TEST(Analyze, DetectsOverlappingLoadSegments) {
  const Corpus &C = corpus();
  ASSERT_TRUE(C.OK);
  std::vector<uint8_t> B = C.Native;
  elf::Elf64_Ehdr E = readEhdr(B);
  size_t First = SIZE_MAX, Second = SIZE_MAX;
  for (size_t I = 0; I < E.e_phnum; ++I) {
    if (readPhdr(B, I).p_type != elf::PT_LOAD)
      continue;
    if (First == SIZE_MAX)
      First = I;
    else if (Second == SIZE_MAX)
      Second = I;
  }
  ASSERT_NE(Second, SIZE_MAX);
  elf::Elf64_Phdr P = readPhdr(B, Second);
  P.p_vaddr = readPhdr(B, First).p_vaddr;
  writePhdr(B, Second, P);

  analyze::Report R = runOn(B, nullptr);
  EXPECT_TRUE(hasFinding(R, "LAYOUT.OVERLAP")) << R.renderText();
  // The structured JSON report carries the same code.
  std::string JSON = R.renderJSON();
  EXPECT_NE(JSON.find("\"code\":\"LAYOUT.OVERLAP\""), std::string::npos);
  EXPECT_NE(JSON.find("\"severity\":\"error\""), std::string::npos);
  EXPECT_EQ(JSON.find("\"errors\":0"), std::string::npos);
}

// Satellite (negative half): hand-break the ELFie so the stashed stack is
// an ordinary loadable range inside the checkpointed stack — the exact
// collision of paper Fig. 4 — and the verifier must flag it.
TEST(Analyze, DetectsAllocStackSection) {
  const Corpus &C = corpus();
  ASSERT_TRUE(C.OK);
  ASSERT_GT(stackPageCount(C.PB), 0u);
  std::vector<uint8_t> B = C.Native;

  size_t StashIndex = sectionIndex(B, ".elfie.stash");
  ASSERT_NE(StashIndex, SIZE_MAX);
  elf::Elf64_Shdr S = readShdr(B, StashIndex);
  uint64_t OldAddr = S.sh_addr;
  S.sh_addr = C.PB.Meta.StackBase;
  writeShdr(B, StashIndex, S);
  elf::Elf64_Ehdr E = readEhdr(B);
  bool PatchedSegment = false;
  for (size_t I = 0; I < E.e_phnum; ++I) {
    elf::Elf64_Phdr P = readPhdr(B, I);
    if (P.p_type == elf::PT_LOAD && P.p_vaddr == OldAddr) {
      P.p_vaddr = C.PB.Meta.StackBase;
      writePhdr(B, I, P);
      PatchedSegment = true;
    }
  }
  ASSERT_TRUE(PatchedSegment);

  analyze::Report R = runOn(B, &C.PB);
  EXPECT_TRUE(hasFinding(R, "LAYOUT.STACK_LOADED")) << R.renderText();
  EXPECT_TRUE(hasFinding(R, "LAYOUT.STASH_ADDR")) << R.renderText();
}

//===--------------------------------------------------------------------===//
// ContextPass corruption tests.
//===--------------------------------------------------------------------===//

TEST(Analyze, DetectsCorruptContextPC) {
  const Corpus &C = corpus();
  ASSERT_TRUE(C.OK);
  std::vector<uint8_t> B = C.Native;
  auto Elf = elf::ELFReader::parse(B);
  ASSERT_TRUE(Elf.hasValue());
  const auto *Ctx = Elf->findSymbol(".t0.ctx");
  ASSERT_NE(Ctx, nullptr);
  uint64_t BadPC = 0xdeadbeef;
  patchAtVAddr(B, ".elfie.data", Ctx->Value + x86::CtxLayout::StartPCOff,
               &BadPC, sizeof(BadPC));

  analyze::Report R = runOn(B, &C.PB);
  EXPECT_TRUE(hasFinding(R, "CTX.PC_UNMAPPED")) << R.renderText();
  EXPECT_TRUE(hasFinding(R, "CTX.PC_MISMATCH")) << R.renderText();
}

//===--------------------------------------------------------------------===//
// BudgetPass corruption tests.
//===--------------------------------------------------------------------===//

TEST(Analyze, DetectsBudgetMismatch) {
  const Corpus &C = corpus();
  ASSERT_TRUE(C.OK);
  // The ELFie is untouched; the claimed source pinball disagrees with it.
  pinball::Pinball PB = C.PB;
  ASSERT_FALSE(PB.Threads.empty());
  PB.Threads[0].RegionIcount += 1;

  analyze::Report R = runOn(C.Native, &PB);
  EXPECT_TRUE(hasFinding(R, "BUDGET.MISMATCH")) << R.renderText();
  EXPECT_TRUE(hasFinding(R, "BUDGET.CTX_MISMATCH")) << R.renderText();
}

TEST(Analyze, DetectsMarkerStripped) {
  const Corpus &C = corpus();
  ASSERT_TRUE(C.OK);
  core::Pinball2ElfOptions Opts;
  Opts.EmitMarkers = false;
  auto Native = core::emitNativeElfie(C.PB, Opts);
  ASSERT_TRUE(Native.hasValue()) << Native.message();

  // Claim the ELFie was emitted with markers: their absence is an error.
  analyze::Report R = runOn(*Native, &C.PB, "", 1);
  EXPECT_TRUE(hasFinding(R, "BUDGET.MARKER_MISSING")) << R.renderText();
  // Honest metadata (markers disabled) verifies clean.
  analyze::Report Clean = runOn(*Native, &C.PB, "", 0);
  EXPECT_EQ(Clean.errorCount(), 0u) << Clean.renderText();
}

//===--------------------------------------------------------------------===//
// PermPass corruption tests.
//===--------------------------------------------------------------------===//

TEST(Analyze, DetectsPagePermAndContentDrift) {
  const Corpus &C = corpus();
  ASSERT_TRUE(C.OK);
  pinball::Pinball PB = C.PB;
  size_t PermPage = SIZE_MAX, DataPage = SIZE_MAX;
  for (size_t I = 0; I < PB.Image.size(); ++I) {
    const auto &P = PB.Image[I];
    if (P.Addr >= PB.Meta.StackBase && P.Addr < PB.Meta.StackTop)
      continue; // stack pages are covered by DetectsStashContentDrift
    if (PermPage == SIZE_MAX)
      PermPage = I;
    else if (DataPage == SIZE_MAX)
      DataPage = I;
  }
  ASSERT_NE(DataPage, SIZE_MAX);
  PB.Image[PermPage].Perm ^= vm::PermWrite;
  PB.Image[DataPage].Bytes[0] ^= 0xff;

  analyze::Report R = runOn(C.Native, &PB);
  EXPECT_TRUE(hasFinding(R, "PERM.MISMATCH")) << R.renderText();
  EXPECT_TRUE(hasFinding(R, "PERM.CONTENT")) << R.renderText();
}

TEST(Analyze, DetectsStashContentDrift) {
  const Corpus &C = corpus();
  ASSERT_TRUE(C.OK);
  pinball::Pinball PB = C.PB;
  bool Mutated = false;
  for (auto &P : PB.Image)
    if (P.Addr >= PB.Meta.StackBase && P.Addr < PB.Meta.StackTop) {
      P.Bytes[P.Bytes.size() - 1] ^= 0xff;
      Mutated = true;
      break;
    }
  ASSERT_TRUE(Mutated);

  analyze::Report R = runOn(C.Native, &PB);
  EXPECT_TRUE(hasFinding(R, "PERM.STASH_CONTENT")) << R.renderText();
}

//===--------------------------------------------------------------------===//
// ReachPass corruption tests.
//===--------------------------------------------------------------------===//

TEST(Analyze, DetectsUndecodableStartup) {
  const Corpus &C = corpus();
  ASSERT_TRUE(C.OK);
  std::vector<uint8_t> B = C.Guest;
  uint8_t BadOpcode = 0xff;
  patchAtVAddr(B, ".elfie.text", readEhdr(B).e_entry, &BadOpcode, 1);

  analyze::Report R = runOn(B, &C.PB);
  EXPECT_TRUE(hasFinding(R, "REACH.BADINST")) << R.renderText();
}

TEST(Analyze, DetectsMissingCapturedJump) {
  const Corpus &C = corpus();
  ASSERT_TRUE(C.OK);
  std::vector<uint8_t> B = C.Guest;
  size_t Index = sectionIndex(B, ".elfie.text");
  ASSERT_NE(Index, SIZE_MAX);
  elf::Elf64_Shdr S = readShdr(B, Index);
  // Replace every captured-PC jump in the startup code with a halt: the
  // CFG walk then terminates without ever reaching the region.
  isa::Inst Halt;
  Halt.Op = isa::Opcode::Halt;
  uint64_t HaltWord = isa::encode(Halt);
  size_t Replaced = 0;
  for (uint64_t Off = 0; Off + isa::InstSize <= S.sh_size;
       Off += isa::InstSize) {
    isa::Inst I;
    if (isa::decode(B.data() + S.sh_offset + Off, I) &&
        I.Op == isa::Opcode::Jalr) {
      std::memcpy(B.data() + S.sh_offset + Off, &HaltWord, sizeof(HaltWord));
      ++Replaced;
    }
  }
  ASSERT_GT(Replaced, 0u);

  analyze::Report R = runOn(B, &C.PB);
  EXPECT_TRUE(hasFinding(R, "REACH.NO_JUMP")) << R.renderText();
}

TEST(Analyze, DetectsCorruptFaultReport) {
  const Corpus &C = corpus();
  ASSERT_TRUE(C.OK);
  auto Elf = elf::ELFReader::parse(C.Native);
  ASSERT_TRUE(Elf.hasValue());
  const auto *Rpt = Elf->findSymbol("elfie_fault_report");
  ASSERT_NE(Rpt, nullptr);
  EXPECT_GE(Rpt->Size, 64u);

  // A patched magic breaks the divergence-containment contract.
  {
    std::vector<uint8_t> B = C.Native;
    uint8_t Bad = 'X';
    patchAtVAddr(B, ".elfie.data", Rpt->Value, &Bad, 1);
    analyze::Report R = runOn(B, &C.PB, "", 1);
    EXPECT_TRUE(hasFinding(R, "REACH.FAULT_REPORT")) << R.renderText();
  }
  // A nonzero kind at rest means the emitter shipped a "pre-faulted"
  // report block.
  {
    std::vector<uint8_t> B = C.Native;
    uint64_t Kind = 2;
    patchAtVAddr(B, ".elfie.data", Rpt->Value + 8, &Kind, 8);
    analyze::Report R = runOn(B, &C.PB, "", 1);
    EXPECT_TRUE(hasFinding(R, "REACH.FAULT_REPORT")) << R.renderText();
  }
}

TEST(Analyze, UnknownKindRejected) {
  // A corrupted e_machine must be an error finding, not a silent pass of
  // every kind-gated check (this exact corruption once SIGSEGVed the
  // context pass).
  const Corpus &C = corpus();
  ASSERT_TRUE(C.OK);
  std::vector<uint8_t> B = C.Native;
  elf::Elf64_Ehdr E = readEhdr(B);
  E.e_machine = 0x7d02;
  std::memcpy(B.data(), &E, sizeof(E));
  analyze::Report R = runOn(B, nullptr);
  EXPECT_TRUE(hasFinding(R, "LAYOUT.KIND")) << R.renderText();
}

//===--------------------------------------------------------------------===//
// SysstatePass tests (separate corpus: needs a pre-region open()).
//===--------------------------------------------------------------------===//

TEST(Analyze, SysstateProxyChecks) {
  std::string Dir = tempDir("sysstate");
  std::string Data(256, '\0');
  for (size_t I = 0; I < Data.size(); ++I)
    Data[I] = static_cast<char>(I * 7 + 3);
  ASSERT_FALSE(writeFileText(Dir + "/data.bin", Data).isError());
  vm::VMConfig Config;
  Config.FsRoot = Dir;
  auto PB = capture(Dir, fileReaderProgram(), 15200, 800,
                    LoggerOptions::fat(), Config);
  ASSERT_TRUE(PB.hasValue()) << PB.message();

  sysstate::SysState SS = sysstate::analyze(*PB);
  ASSERT_FALSE(SS.Files.empty());
  std::string SSDir = Dir + "/ss";
  ASSERT_FALSE(sysstate::writeSysstateDir(SS, SSDir).isError());

  core::Pinball2ElfOptions Opts;
  Opts.EmbedSysstate = true;
  auto Native = core::emitNativeElfie(*PB, Opts);
  ASSERT_TRUE(Native.hasValue()) << Native.message();

  // Complete sysstate directory: clean.
  analyze::Report Clean = runOn(*Native, &*PB, SSDir, 1);
  EXPECT_EQ(Clean.errorCount(), 0u) << Clean.renderText();

  // Delete the FD_3 proxy the preopen table points at.
  removeFile(SSDir + "/workdir/" + SS.Files[0].ProxyName);
  analyze::Report Broken = runOn(*Native, &*PB, SSDir, 1);
  EXPECT_TRUE(hasFinding(Broken, "SYSSTATE.MISSING_PROXY"))
      << Broken.renderText();

  // A directory pinball_sysstate never touched.
  analyze::Report NoDir = runOn(*Native, &*PB, Dir + "/nonexistent", 1);
  EXPECT_TRUE(hasFinding(NoDir, "SYSSTATE.NO_WORKDIR")) << NoDir.renderText();
  removeTree(Dir);
}

//===--------------------------------------------------------------------===//
// Report rendering.
//===--------------------------------------------------------------------===//

TEST(Analyze, ReportRendersTextAndJSON) {
  analyze::Report R;
  R.add(analyze::Severity::Error, "LAYOUT.OVERLAP", 0x10000,
        "q\"b\\s\nt\tend");
  R.add(analyze::Severity::Warning, "BUDGET.MISMATCH", 0, "warned");
  R.add(analyze::Severity::Note, "PASS.SKIPPED", 0, "skipped");
  EXPECT_EQ(R.errorCount(), 1u);

  std::string Text = R.renderText();
  EXPECT_NE(Text.find("error LAYOUT.OVERLAP @0x10000"), std::string::npos);
  EXPECT_NE(Text.find("1 error(s), 1 warning(s), 1 note(s)"),
            std::string::npos);

  std::string JSON = R.renderJSON();
  EXPECT_NE(JSON.find("\"code\":\"LAYOUT.OVERLAP\",\"addr\":65536"),
            std::string::npos);
  EXPECT_NE(JSON.find("\"message\":\"q\\\"b\\\\s\\nt\\tend\""),
            std::string::npos);
  EXPECT_NE(JSON.find("\"errors\":1,\"warnings\":1,\"notes\":1"),
            std::string::npos);
}

} // namespace
