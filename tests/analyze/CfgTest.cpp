//===- tests/analyze/CfgTest.cpp - CFG recovery + dataflow pass tests -----===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Covers the analyze/cfg subsystem (DESIGN.md §13): the shared block
/// walker recovers the loop structure of hand-assembled programs, the
/// constant-propagation lattice resolves syscall numbers and memory
/// addresses, clean emitted ELFies analyze with zero CODE.* errors, a
/// deliberately corrupted branch target is detected both standalone and
/// through the everify pipeline, and the static JIT-translatability
/// percentage agrees with the EVM's measured dispatch statistics on a
/// uniformly executing workload. The JSON report shape is locked by a
/// golden file.
///
//===----------------------------------------------------------------------===//

#include "analyze/Passes.h"
#include "analyze/cfg/CodePasses.h"
#include "core/Pinball2Elf.h"
#include "isa/ISA.h"
#include "vm/VM.h"

#include "../common/TestHelpers.h"

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <unistd.h>

using namespace elfie;
using namespace elfie::analyze;
using namespace elfie::test;
using isa::Opcode;
using pinball::LoggerOptions;

namespace {

constexpr uint64_t Base = 0x10000;

isa::Inst I4(Opcode Op, uint8_t Rd, uint8_t Rs1, uint8_t Rs2, int32_t Imm) {
  isa::Inst I;
  I.Op = Op;
  I.Rd = Rd;
  I.Rs1 = Rs1;
  I.Rs2 = Rs2;
  I.Imm = Imm;
  return I;
}

std::vector<uint8_t> encodeProgram(const std::vector<isa::Inst> &Prog) {
  std::vector<uint8_t> Bytes(Prog.size() * isa::InstSize);
  for (size_t K = 0; K < Prog.size(); ++K) {
    uint64_t Word = isa::encode(Prog[K]);
    std::memcpy(Bytes.data() + K * isa::InstSize, &Word, 8);
  }
  return Bytes;
}

/// Walks \p Prog placed at Base as one flat R+X span.
cfg::CFG walkProgram(const std::vector<isa::Inst> &Prog,
                     std::vector<uint8_t> &Storage,
                     cfg::CFGOptions Opts = {}) {
  Storage = encodeProgram(Prog);
  cfg::SpanCodeSource CS(Base, Storage, vm::PermRead | vm::PermExec);
  uint64_t Seeds[1] = {Base};
  return cfg::buildCFG(CS, Seeds, Opts);
}

//===--------------------------------------------------------------------===//
// The walker itself.
//===--------------------------------------------------------------------===//

TEST(CfgWalk, RecoversLoopGraph) {
  // ldi r2, 4 / loop: addi r2, r2, -1 / bne r2, r0, loop / halt
  std::vector<isa::Inst> Prog = {
      I4(Opcode::Ldi, 2, 0, 0, 4),
      I4(Opcode::Addi, 2, 2, 0, -1),
      I4(Opcode::Bne, 0, 2, 0, -8),
      I4(Opcode::Halt, 0, 0, 0, 0),
  };
  std::vector<uint8_t> Storage;
  cfg::CFG G = walkProgram(Prog, Storage);
  ASSERT_TRUE(G.Issues.empty());
  EXPECT_EQ(G.Blocks.size(), 3u); // entry, loop body, halt
  EXPECT_EQ(G.InstPCs.size(), 4u);
  // The loop body branches back to itself and falls through to the halt.
  const cfg::CFGBlock *Body = G.block(Base + 8);
  ASSERT_NE(Body, nullptr);
  ASSERT_EQ(Body->Succs.size(), 2u);
  EXPECT_EQ(Body->Succs[0], Base + 8);
  EXPECT_EQ(Body->Succs[1], Base + 24);
  const cfg::CFGBlock *Tail = G.block(Base + 24);
  ASSERT_NE(Tail, nullptr);
  EXPECT_TRUE(Tail->Succs.empty()); // halt ends the walk
}

TEST(CfgWalk, FlagsMisalignedAndEscapingTargets) {
  // jmp +4 lands mid-instruction; the fall path jumps out of the span.
  std::vector<isa::Inst> Prog = {
      I4(Opcode::Beq, 0, 0, 0, 12), // always taken... but also walks fall
      I4(Opcode::Jmp, 0, 0, 0, 0x7000),
  };
  // Target Base+12 is misaligned; Base+8+0x7000 is outside the span.
  std::vector<uint8_t> Storage;
  cfg::CFG G = walkProgram(Prog, Storage);
  bool SawMisaligned = false, SawUnmapped = false;
  for (const cfg::CFGIssue &I : G.Issues) {
    SawMisaligned |= I.K == cfg::CFGIssue::TargetMisaligned;
    SawUnmapped |= I.K == cfg::CFGIssue::TargetUnmapped;
  }
  EXPECT_TRUE(SawMisaligned);
  EXPECT_TRUE(SawUnmapped);
}

TEST(CfgWalk, ReportsUndecodableReachableWord) {
  std::vector<isa::Inst> Prog = {
      I4(Opcode::Nop, 0, 0, 0, 0),
      I4(Opcode::Nop, 0, 0, 0, 0),
  };
  std::vector<uint8_t> Storage = encodeProgram(Prog);
  Storage[8] = 0xff; // second word: invalid opcode
  cfg::SpanCodeSource CS(Base, Storage, vm::PermRead | vm::PermExec);
  uint64_t Seeds[1] = {Base};
  cfg::CFG G = cfg::buildCFG(CS, Seeds, {});
  ASSERT_EQ(G.Issues.size(), 1u);
  EXPECT_EQ(G.Issues[0].K, cfg::CFGIssue::BadInst);
  EXPECT_EQ(G.Issues[0].PC, Base + 8);
}

TEST(CfgWalk, IndirectBranchesAreCountedNotFollowed) {
  std::vector<isa::Inst> Prog = {
      I4(Opcode::Jalr, 0, 5, 0, 0), // target in r5: unknown
  };
  std::vector<uint8_t> Storage;
  cfg::CFG G = walkProgram(Prog, Storage);
  EXPECT_EQ(G.IndirectSites, 1u);
  EXPECT_EQ(G.Blocks.size(), 1u);
  EXPECT_TRUE(G.Issues.empty());
}

//===--------------------------------------------------------------------===//
// Dataflow: syscall-number and address constant propagation.
//===--------------------------------------------------------------------===//

TEST(CfgDataflow, ExitSyscallEndsThePath) {
  // A provably-exiting syscall must not fall through into the data that
  // commonly follows it.
  std::vector<isa::Inst> Prog = {
      I4(Opcode::Ldi, isa::SysNrReg, 0, 0, 0), // Sys::Exit
      I4(Opcode::Syscall, 0, 0, 0, 0),
      I4(Opcode::Halt, 0, 0, 0, 0), // unreachable
  };
  std::vector<uint8_t> Storage;
  cfg::CFG G = walkProgram(Prog, Storage);
  ASSERT_EQ(G.Blocks.size(), 1u);
  EXPECT_TRUE(G.block(Base)->Succs.empty());
  EXPECT_EQ(G.InstPCs.size(), 2u);
}

TEST(CfgDataflow, NonExitSyscallFallsThrough) {
  std::vector<isa::Inst> Prog = {
      I4(Opcode::Ldi, isa::SysNrReg, 0, 0, 2), // Sys::Write
      I4(Opcode::Syscall, 0, 0, 0, 0),
      I4(Opcode::Halt, 0, 0, 0, 0),
  };
  std::vector<uint8_t> Storage;
  cfg::CFG G = walkProgram(Prog, Storage);
  EXPECT_EQ(G.Blocks.size(), 2u);
  EXPECT_EQ(G.InstPCs.size(), 3u);
}

TEST(CfgDataflow, ResolvesSyscallNumbersAndAddresses) {
  std::vector<isa::Inst> Prog = {
      I4(Opcode::Ldi, isa::SysNrReg, 0, 0, 2),  // write
      I4(Opcode::Syscall, 0, 0, 0, 0),
      I4(Opcode::Ldi, 5, 0, 0, 0x20000),
      I4(Opcode::Ld8, 3, 5, 0, 8),  // load from 0x20008: known address
      I4(Opcode::St8, 0, 6, 3, 0),  // store via r6: unknown address
      I4(Opcode::Ldi, isa::SysNrReg, 0, 0, 1), // exit_group
      I4(Opcode::Syscall, 0, 0, 0, 0),
  };
  std::vector<uint8_t> Storage = encodeProgram(Prog);
  cfg::SpanCodeSource CS(Base, Storage, vm::PermRead | vm::PermExec);
  uint64_t Seeds[1] = {Base};
  cfg::CodeAnalysis A = cfg::analyzeCode(CS, Seeds);
  EXPECT_EQ(A.Report.SyscallSites.at(2), 1u);
  EXPECT_EQ(A.Report.SyscallSites.at(1), 1u);
  EXPECT_EQ(A.Report.UnknownSyscallSites, 0u);
  // The known-address load targets unmapped memory (only code is mapped),
  // which the footprint pass reports.
  EXPECT_EQ(A.Report.ResolvedLoads + A.Report.UnknownLoads, 1u);
  EXPECT_EQ(A.Report.UnknownStores, 1u);
  bool SawUnmapped = false;
  for (const Finding &F : A.Findings)
    SawUnmapped |= F.Code == "CODE.MEM_UNMAPPED";
  EXPECT_TRUE(SawUnmapped);
}

//===--------------------------------------------------------------------===//
// Whole-ELFie analysis over the emitted corpus.
//===--------------------------------------------------------------------===//

std::string tempDir(const std::string &Name) {
  std::string D = testing::TempDir() + "/elfie_cfg_" + Name + "_" +
                  std::to_string(getpid());
  removeTree(D);
  createDirectories(D);
  return D;
}

struct Corpus {
  pinball::Pinball PB;
  std::vector<uint8_t> Native, Guest;
  bool OK = false;
};

const Corpus &corpus() {
  static Corpus C = [] {
    Corpus X;
    std::string Dir = tempDir("corpus");
    auto PB = capture(Dir, computeProgram(), 2000, 4000, LoggerOptions::fat());
    EXPECT_TRUE(PB.hasValue()) << PB.message();
    if (!PB)
      return X;
    X.PB = std::move(*PB);
    core::Pinball2ElfOptions Opts;
    auto N = core::emitNativeElfie(X.PB, Opts);
    EXPECT_TRUE(N.hasValue()) << N.message();
    auto G = core::emitGuestElfie(X.PB, Opts);
    EXPECT_TRUE(G.hasValue()) << G.message();
    if (!N || !G)
      return X;
    X.Native = std::move(*N);
    X.Guest = std::move(*G);
    removeTree(Dir);
    X.OK = true;
    return X;
  }();
  return C;
}

cfg::CodeAnalysis analyzeImage(const std::vector<uint8_t> &Image,
                               const pinball::Pinball *PB) {
  auto Elf = elf::ELFReader::parse(Image);
  EXPECT_TRUE(Elf.hasValue()) << Elf.message();
  cfg::ElfCodeSource CS(*Elf);
  ElfKind Kind = AnalysisInput::classify(*Elf);
  std::vector<uint64_t> Seeds = cfg::elfieSeeds(*Elf, Kind, PB);
  EXPECT_FALSE(Seeds.empty());
  cfg::Provisioning Prov;
  const cfg::Provisioning *ProvPtr = nullptr;
  if (PB) {
    Prov = cfg::provisioningFromPinball(*PB);
    ProvPtr = &Prov;
  }
  return cfg::analyzeCode(CS, Seeds, {}, ProvPtr);
}

TEST(CfgCode, CleanNativeElfieHasZeroErrors) {
  const Corpus &C = corpus();
  ASSERT_TRUE(C.OK);
  cfg::CodeAnalysis A = analyzeImage(C.Native, &C.PB);
  EXPECT_EQ(A.count(Severity::Error), 0u) << cfg::renderCodeText(A);
  EXPECT_GT(A.Report.Blocks, 0u);
  EXPECT_TRUE(A.Report.ProvisioningKnown);
  // The short capture region ends before the program's output syscalls,
  // but the fat image still carries that code: the footprint diff must
  // flag the statically reachable file-io family as unprovisioned, with a
  // matching warning per family — and never an error.
  unsigned UnprovWarnings = 0;
  for (const Finding &F : A.Findings)
    if (F.Code == "CODE.SYSCALL_UNPROVISIONED")
      UnprovWarnings += F.Sev == Severity::Warning;
  EXPECT_EQ(UnprovWarnings, A.Report.Unprovisioned.size());
  EXPECT_GT(A.Report.translatablePct(), 0.0);
}

TEST(CfgCode, CleanGuestElfieHasZeroErrors) {
  const Corpus &C = corpus();
  ASSERT_TRUE(C.OK);
  cfg::CodeAnalysis A = analyzeImage(C.Guest, &C.PB);
  EXPECT_EQ(A.count(Severity::Error), 0u) << cfg::renderCodeText(A);
  // The guest walk also covers the EG64 startup stub.
  cfg::CodeAnalysis N = analyzeImage(C.Native, &C.PB);
  EXPECT_GT(A.Report.Insts, N.Report.Insts);
}

TEST(CfgCode, PinballImageMatchesEmittedElfie) {
  const Corpus &C = corpus();
  ASSERT_TRUE(C.OK);
  cfg::MemImageCodeSource CS(C.PB.buildMemImage(/*IncludeInjects=*/true));
  std::vector<uint64_t> Seeds;
  for (const pinball::ThreadRegs &T : C.PB.Threads)
    Seeds.push_back(T.PC);
  cfg::AnalyzeOptions Opts;
  Opts.CompleteImage = C.PB.isFat();
  cfg::Provisioning Prov = cfg::provisioningFromPinball(C.PB);
  cfg::CodeAnalysis A = cfg::analyzeCode(CS, Seeds, Opts, &Prov);
  EXPECT_EQ(A.count(Severity::Error), 0u) << cfg::renderCodeText(A);
  // Pinball pages and the emitted region sections hold identical code, so
  // the recovered footprint is identical.
  cfg::CodeAnalysis N = analyzeImage(C.Native, &C.PB);
  EXPECT_EQ(A.Report.Insts, N.Report.Insts);
  EXPECT_EQ(A.Report.Blocks, N.Report.Blocks);
  EXPECT_EQ(A.Report.SyscallSites, N.Report.SyscallSites);
}

TEST(CfgCode, RendersTextJSONAndDot) {
  const Corpus &C = corpus();
  ASSERT_TRUE(C.OK);
  cfg::CodeAnalysis A = analyzeImage(C.Native, &C.PB);
  std::string Text = cfg::renderCodeText(A);
  EXPECT_NE(Text.find("blocks:"), std::string::npos);
  std::string JSON = cfg::renderCodeJSON(A);
  EXPECT_EQ(JSON.find("{\"schema\":1,\"tool\":\"ecfg\""), 0u);
  EXPECT_NE(JSON.find("\"errors\":0"), std::string::npos);
  std::string Dot = cfg::renderCodeDot(A);
  EXPECT_EQ(Dot.find("digraph cfg {"), 0u);
  EXPECT_NE(Dot.find("->"), std::string::npos);
}

//===--------------------------------------------------------------------===//
// Corruption: a patched-out branch target must surface as a CODE.* error,
// standalone and through the everify pipeline.
//===--------------------------------------------------------------------===//

/// Finds a block ending in an unconditional `jmp` inside the region code
/// and returns the terminator's vaddr (0 when none).
uint64_t findJmpTerminator(const cfg::CodeAnalysis &A) {
  for (const auto &[PC, B] : A.Graph.Blocks)
    if (!B.Insts.empty() && B.Insts.back().Op == Opcode::Jmp)
      return B.lastPC();
  return 0;
}

TEST(CfgCode, DetectsBranchTargetPatchedOutOfImage) {
  const Corpus &C = corpus();
  ASSERT_TRUE(C.OK);
  cfg::CodeAnalysis Clean = analyzeImage(C.Native, &C.PB);
  uint64_t JmpPC = findJmpTerminator(Clean);
  ASSERT_NE(JmpPC, 0u);

  // Repoint the jump's imm32 far outside every mapped page.
  std::vector<uint8_t> B = C.Native;
  auto Elf = elf::ELFReader::parse(B);
  ASSERT_TRUE(Elf.hasValue());
  const auto *Sec = Elf->sectionContaining(JmpPC);
  ASSERT_NE(Sec, nullptr);
  int32_t FarOff = 0x40000000;
  std::memcpy(B.data() + Sec->Offset + (JmpPC - Sec->Addr) + 4, &FarOff, 4);

  // Standalone analysis reports the corrupted direct edge as an error.
  cfg::CodeAnalysis Bad = analyzeImage(B, &C.PB);
  bool Saw = false;
  for (const Finding &F : Bad.Findings)
    Saw |= F.Code == "CODE.TARGET_UNMAPPED" && F.Sev == Severity::Error;
  EXPECT_TRUE(Saw) << cfg::renderCodeText(Bad);

  // And so does the full everify pipeline.
  auto Elf2 = elf::ELFReader::parse(B);
  ASSERT_TRUE(Elf2.hasValue());
  AnalysisInput In;
  In.Elf = &*Elf2;
  In.PB = &C.PB;
  In.Kind = AnalysisInput::classify(*Elf2);
  In.ExpectMarkers = -1;
  PassManager PM;
  addStandardPasses(PM);
  Report R;
  PM.runAll(In, R);
  bool SawPipeline = false;
  for (const Finding &F : R.findings())
    SawPipeline |=
        F.Code == "CODE.TARGET_UNMAPPED" && F.Sev == Severity::Error;
  EXPECT_TRUE(SawPipeline) << R.renderText();
}

//===--------------------------------------------------------------------===//
// Static JIT translatability vs. measured dispatch statistics.
//===--------------------------------------------------------------------===//

TEST(CfgCode, JitTranslatabilityAgreesWithMeasuredStats) {
  // A loop that executes every site uniformly, with its sole bailout op
  // (pause) directly before the backedge so static site classification
  // and dynamic retirement counts measure the same thing.
  std::vector<isa::Inst> Prog;
  Prog.push_back(I4(Opcode::Ldi, 2, 0, 0, 3000)); // counter
  size_t LoopStart = Prog.size();
  for (int K = 0; K < 20; ++K)
    Prog.push_back(I4(Opcode::Addi, 3, 3, 0, 1));
  Prog.push_back(I4(Opcode::Addi, 2, 2, 0, -1));
  Prog.push_back(I4(Opcode::Pause, 0, 0, 0, 0));
  int32_t Back = -static_cast<int32_t>((Prog.size() - LoopStart) *
                                       isa::InstSize);
  Prog.push_back(I4(Opcode::Bne, 0, 2, 0, Back));
  Prog.push_back(I4(Opcode::Ldi, isa::SysNrReg, 0, 0, 1)); // exit_group
  Prog.push_back(I4(Opcode::Syscall, 0, 0, 0, 0));

  // Static side.
  std::vector<uint8_t> Storage = encodeProgram(Prog);
  cfg::SpanCodeSource CS(Base, Storage, vm::PermRead | vm::PermExec);
  uint64_t Seeds[1] = {Base};
  cfg::CodeAnalysis A = cfg::analyzeCode(CS, Seeds);
  EXPECT_EQ(A.Report.Insts, Prog.size());
  double StaticPct = A.Report.translatablePct();
  EXPECT_GT(StaticPct, 80.0);
  EXPECT_LT(StaticPct, 100.0);

#if defined(__x86_64__)
  // Dynamic side: the same program under compiled dispatch.
  vm::VMConfig Config;
  Config.EnableJit = true;
  Config.JitThreshold = 4;
  vm::VM M(Config);
  M.mem().map(Base, vm::GuestPageSize, vm::PermRWX);
  for (size_t K = 0; K < Prog.size(); ++K) {
    uint64_t Word = isa::encode(Prog[K]);
    ASSERT_EQ(M.mem().poke(Base + K * isa::InstSize, &Word, 8),
              vm::MemFault::None);
  }
  vm::ThreadState T;
  T.PC = Base;
  M.spawnThread(T);
  vm::RunResult R = M.run();
  EXPECT_EQ(R.Reason, vm::StopReason::AllExited);
  ASSERT_GT(R.Jit.Hits, 0u);
  double DynamicPct = 100.0 * static_cast<double>(R.Jit.Hits) /
                      static_cast<double>(M.globalRetired());
  EXPECT_NEAR(StaticPct, DynamicPct, 5.0);
#endif
}

//===--------------------------------------------------------------------===//
// The machine interface: golden file locks the everify JSON shape.
//===--------------------------------------------------------------------===//

TEST(CfgReport, EverifyJSONMatchesGoldenFile) {
  Report R;
  R.add(Severity::Error, "CODE.TARGET_UNMAPPED", 0x1a2b3c,
        "direct branch targets unmapped memory");
  R.add(Severity::Warning, "CODE.SYSCALL_UNPROVISIONED", 0,
        "family \"file-io\" has no recorded syscalls");
  R.add(Severity::Note, "PASS.SKIPPED", 0, "sysstate: inapplicable: no dir");
  std::string Got = R.renderJSON();

  std::ifstream In(std::string(ELFIE_ANALYZE_GOLDEN_DIR) +
                   "/everify_report.json");
  ASSERT_TRUE(In.good()) << "golden file missing";
  std::string Want((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(Got, Want)
      << "everify -json output shape changed; bump "
         "analyze::ReportSchemaVersion and regenerate the golden file";
}

} // namespace
