//===- tests/easm/AssemblerTest.cpp - Assembler behaviour -----------------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "easm/Assembler.h"

#include "elf/ELFReader.h"
#include "isa/ISA.h"

#include <gtest/gtest.h>

using namespace elfie;
using namespace elfie::easm;
using isa::Inst;
using isa::Opcode;

namespace {

/// Assembles and decodes the .text section into instructions.
std::vector<Inst> assembleText(const std::string &Src) {
  auto P = assembleString(Src, "test.s");
  EXPECT_TRUE(P.hasValue()) << P.message();
  if (!P)
    return {};
  for (const AssembledSection &S : P->Sections) {
    if (S.Name != ".text")
      continue;
    std::vector<Inst> Out;
    for (size_t Off = 0; Off + 8 <= S.Data.size(); Off += 8) {
      Inst I;
      EXPECT_TRUE(isa::decode(S.Data.data() + Off, I));
      Out.push_back(I);
    }
    return Out;
  }
  return {};
}

TEST(Assembler, BasicInstructions) {
  auto Insts = assembleText("  addi r1, r0, 5\n"
                            "  add  r2, r1, r1\n"
                            "  halt\n");
  ASSERT_EQ(Insts.size(), 3u);
  EXPECT_EQ(Insts[0].Op, Opcode::Addi);
  EXPECT_EQ(Insts[0].Rd, 1);
  EXPECT_EQ(Insts[0].Imm, 5);
  EXPECT_EQ(Insts[1].Op, Opcode::Add);
  EXPECT_EQ(Insts[2].Op, Opcode::Halt);
}

TEST(Assembler, CommentsAndBlankLines) {
  auto Insts = assembleText("# full comment\n"
                            "\n"
                            "  nop  # trailing\n"
                            "  nop  ; alt comment\n");
  EXPECT_EQ(Insts.size(), 2u);
}

TEST(Assembler, BranchTargetsResolve) {
  auto Insts = assembleText("start:\n"
                            "  addi r1, r1, 1\n"
                            "  bne r1, r2, start\n"
                            "  jmp done\n"
                            "done:\n"
                            "  halt\n");
  ASSERT_EQ(Insts.size(), 4u);
  // bne at TextBase+8 -> start at TextBase: displacement -8.
  EXPECT_EQ(Insts[1].Imm, -8);
  // jmp at +16 -> done at +24: displacement +8.
  EXPECT_EQ(Insts[2].Imm, 8);
}

TEST(Assembler, MemoryOperands) {
  auto Insts = assembleText("  ld8 r1, 16(sp)\n"
                            "  st4 r2, -8(r3)\n"
                            "  ld1 r4, (r5)\n");
  ASSERT_EQ(Insts.size(), 3u);
  EXPECT_EQ(Insts[0].Rs1, isa::RegSP);
  EXPECT_EQ(Insts[0].Imm, 16);
  EXPECT_EQ(Insts[1].Imm, -8);
  EXPECT_EQ(Insts[2].Imm, 0);
}

TEST(Assembler, LiExpandsToTwoInstructions) {
  auto Insts = assembleText("  li r1, 0x123456789abcdef0\n");
  ASSERT_EQ(Insts.size(), 2u);
  EXPECT_EQ(Insts[0].Op, Opcode::Ldi);
  EXPECT_EQ(Insts[1].Op, Opcode::Ldih);
  // ldi sign-extends the low 32 bits; ldih replaces the high 32.
  uint64_t Lo = static_cast<uint64_t>(static_cast<int64_t>(Insts[0].Imm));
  uint64_t V = (static_cast<uint64_t>(static_cast<uint32_t>(Insts[1].Imm))
                << 32) |
               (Lo & 0xffffffffull);
  EXPECT_EQ(V, 0x123456789abcdef0ull);
}

TEST(Assembler, LaLoadsLabelAddress) {
  auto P = assembleString("  la r1, value\n"
                          "  halt\n"
                          "  .data\n"
                          "value: .quad 7\n",
                          "test.s");
  ASSERT_TRUE(P.hasValue()) << P.message();
  uint64_t ValueAddr = P->Symbols.at("value");
  const AssembledSection &Text = P->Sections[0];
  Inst Lo, Hi;
  ASSERT_TRUE(isa::decode(Text.Data.data(), Lo));
  ASSERT_TRUE(isa::decode(Text.Data.data() + 8, Hi));
  uint64_t V =
      (static_cast<uint64_t>(static_cast<uint32_t>(Hi.Imm)) << 32) |
      (static_cast<uint64_t>(static_cast<int64_t>(Lo.Imm)) & 0xffffffffull);
  EXPECT_EQ(V, ValueAddr);
}

TEST(Assembler, PseudoInstructions) {
  auto Insts = assembleText("f:\n"
                            "  push r1\n"
                            "  pop r1\n"
                            "  call f\n"
                            "  ret\n"
                            "  mv r2, r3\n"
                            "  beqz r1, f\n"
                            "  bnez r1, f\n");
  // push=2, pop=2, call=1, ret=1, mv=1, beqz=1, bnez=1.
  ASSERT_EQ(Insts.size(), 9u);
  EXPECT_EQ(Insts[4].Op, Opcode::Jal);
  EXPECT_EQ(Insts[4].Rd, isa::RegLR);
  EXPECT_EQ(Insts[5].Op, Opcode::Jalr);
  EXPECT_EQ(Insts[5].Rs1, isa::RegLR);
  EXPECT_EQ(Insts[7].Op, Opcode::Beq);
  EXPECT_EQ(Insts[7].Rs2, isa::RegZero);
}

TEST(Assembler, DataDirectives) {
  auto P = assembleString("  .data\n"
                          "a: .byte 1, 2, 3\n"
                          "b: .half 0x1234\n"
                          "c: .word 0xdeadbeef\n"
                          "d: .quad 0x0102030405060708\n"
                          "s: .asciz \"hi\\n\"\n"
                          "z: .space 5\n",
                          "test.s");
  ASSERT_TRUE(P.hasValue()) << P.message();
  const AssembledSection *Data = nullptr;
  for (const auto &S : P->Sections)
    if (S.Name == ".data")
      Data = &S;
  ASSERT_NE(Data, nullptr);
  EXPECT_EQ(Data->Data.size(), 3u + 2 + 4 + 8 + 4 + 5);
  EXPECT_EQ(Data->Data[0], 1);
  EXPECT_EQ(Data->Data[3], 0x34);
  EXPECT_EQ(Data->Data[5], 0xef);
  // "hi\n\0"
  size_t SOff = 3 + 2 + 4 + 8;
  EXPECT_EQ(Data->Data[SOff], 'h');
  EXPECT_EQ(Data->Data[SOff + 2], '\n');
  EXPECT_EQ(Data->Data[SOff + 3], '\0');
}

TEST(Assembler, QuadWithSymbol) {
  auto P = assembleString("  .data\n"
                          "ptr: .quad target\n"
                          "target: .quad 0\n",
                          "test.s");
  ASSERT_TRUE(P.hasValue()) << P.message();
  const AssembledSection *Data = nullptr;
  for (const auto &S : P->Sections)
    if (S.Name == ".data")
      Data = &S;
  ASSERT_NE(Data, nullptr);
  uint64_t V;
  memcpy(&V, Data->Data.data(), 8);
  EXPECT_EQ(V, P->Symbols.at("target"));
}

TEST(Assembler, EquConstants) {
  auto Insts = assembleText("  .equ N, 17\n"
                            "  addi r1, r0, N\n");
  ASSERT_EQ(Insts.size(), 1u);
  EXPECT_EQ(Insts[0].Imm, 17);
}

TEST(Assembler, BssAllocatesWithoutBytes) {
  auto P = assembleString("  .bss\n"
                          "buf: .space 4096\n"
                          "  .align 8\n"
                          "v:   .space 8\n",
                          "test.s");
  ASSERT_TRUE(P.hasValue()) << P.message();
  const AssembledSection *Bss = nullptr;
  for (const auto &S : P->Sections)
    if (S.Name == ".bss")
      Bss = &S;
  ASSERT_NE(Bss, nullptr);
  EXPECT_TRUE(Bss->IsNoBits);
  EXPECT_EQ(Bss->Size, 4104u);
  EXPECT_TRUE(Bss->Data.empty());
}

TEST(Assembler, EntryIsStartSymbol) {
  auto P = assembleString("  nop\n"
                          "_start: halt\n",
                          "test.s");
  ASSERT_TRUE(P.hasValue()) << P.message();
  EXPECT_EQ(P->Entry, isa::TextBase + 8);
}

TEST(Assembler, OrgSetsSectionBase) {
  auto P = assembleString("  .text\n"
                          "  .org 0x40000\n"
                          "_start: halt\n",
                          "test.s");
  ASSERT_TRUE(P.hasValue()) << P.message();
  EXPECT_EQ(P->Entry, 0x40000u);
}

TEST(Assembler, MarkerInstruction) {
  auto Insts = assembleText("  marker 1, 42\n");
  ASSERT_EQ(Insts.size(), 1u);
  EXPECT_EQ(Insts[0].Op, Opcode::Marker);
  EXPECT_EQ(Insts[0].Rd, 1);
  EXPECT_EQ(Insts[0].Imm, 42);
}

TEST(Assembler, FloatingPointForms) {
  auto Insts = assembleText("  fadd f1, f2, f3\n"
                            "  fsqrt f4, f1\n"
                            "  flt r1, f1, f2\n"
                            "  fld f5, 8(r2)\n"
                            "  fst f5, 16(r2)\n"
                            "  fcvtid f0, r3\n"
                            "  fcvtdi r3, f0\n"
                            "  fmvtof f1, r1\n"
                            "  fmvtoi r1, f1\n");
  ASSERT_EQ(Insts.size(), 9u);
  EXPECT_EQ(Insts[0].Op, Opcode::Fadd);
  EXPECT_EQ(Insts[3].Imm, 8);
}

// ---- Error cases ----

TEST(AssemblerErrors, UnknownMnemonic) {
  auto P = assembleString("  frobnicate r1\n", "bad.s");
  ASSERT_FALSE(P.hasValue());
  EXPECT_NE(P.message().find("bad.s:1"), std::string::npos);
  EXPECT_NE(P.message().find("unknown mnemonic"), std::string::npos);
}

TEST(AssemblerErrors, UndefinedSymbol) {
  auto P = assembleString("  jmp nowhere\n", "bad.s");
  ASSERT_FALSE(P.hasValue());
  EXPECT_NE(P.message().find("undefined symbol"), std::string::npos);
}

TEST(AssemblerErrors, RedefinedLabel) {
  auto P = assembleString("x: nop\nx: nop\n", "bad.s");
  ASSERT_FALSE(P.hasValue());
  EXPECT_NE(P.message().find("redefined"), std::string::npos);
}

TEST(AssemblerErrors, WrongOperandCount) {
  EXPECT_FALSE(assembleString("  add r1, r2\n", "bad.s").hasValue());
  EXPECT_FALSE(assembleString("  halt r1\n", "bad.s").hasValue());
}

TEST(AssemblerErrors, BadRegister) {
  EXPECT_FALSE(assembleString("  add r1, r99, r2\n", "bad.s").hasValue());
}

TEST(AssemblerErrors, FpIntMismatch) {
  EXPECT_FALSE(assembleString("  fadd r1, f1, f2\n", "bad.s").hasValue());
  EXPECT_FALSE(assembleString("  add f1, f2, f3\n", "bad.s").hasValue());
}

// ---- ELF output ----

TEST(AssemblerELF, ProducesLoadableGuestExecutable) {
  auto Image = assembleToELF("_start:\n"
                             "  .global _start\n"
                             "  halt\n"
                             "  .data\n"
                             "msg: .ascii \"x\"\n",
                             "prog.s");
  ASSERT_TRUE(Image.hasValue()) << Image.message();
  auto R = elf::ELFReader::parse(*Image);
  ASSERT_TRUE(R.hasValue()) << R.message();
  EXPECT_EQ(R->machine(), elf::EM_EG64);
  EXPECT_EQ(R->fileType(), elf::ET_EXEC);
  EXPECT_EQ(R->entry(), isa::TextBase);
  ASSERT_NE(R->findSection(".text"), nullptr);
  ASSERT_NE(R->findSection(".data"), nullptr);
  ASSERT_NE(R->findSymbol("_start"), nullptr);
}

} // namespace
