//===- tests/vm/JitTest.cpp - EVM JIT dispatch behaviour ------------------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// The JIT is a pure dispatch optimization: with `EnableJit` on or off the
/// EVM must retire the identical instruction stream, fire the same faults,
/// and count the same budgets. These tests pin that equivalence (the full
/// lockstep differential lives in tests/replay/JitDifferentialTest.cpp),
/// the promotion/invalidation machinery, the observer gating contract, and
/// multi-threaded self-modifying-code coherence.
///
/// On non-x86-64 hosts EnableJit is silently inert, so the equivalence
/// tests still run (trivially); only the stats assertions are gated.
///
//===----------------------------------------------------------------------===//

#include "vm/VM.h"

#include "../common/TestHelpers.h"
#include "isa/ISA.h"

#include <gtest/gtest.h>

#include <tuple>

using namespace elfie;
using namespace elfie::vm;
using test::computeProgram;
using test::makeVM;
using test::multiThreadProgram;

namespace {

constexpr uint64_t CodeBase = 0x10000;

isa::Inst I3(isa::Opcode Op, uint8_t Rd, uint8_t Rs1, uint8_t Rs2,
             int32_t Imm) {
  isa::Inst I;
  I.Op = Op;
  I.Rd = Rd;
  I.Rs1 = Rs1;
  I.Rs2 = Rs2;
  I.Imm = Imm;
  return I;
}

/// Hot configuration: promote after a handful of entries so short test
/// programs exercise compiled dispatch.
VMConfig jitConfig(bool Enable) {
  VMConfig C;
  C.EnableJit = Enable;
  C.JitThreshold = 4;
  return C;
}

std::unique_ptr<VM> rawVM(const std::vector<isa::Inst> &Prog,
                          VMConfig Config = VMConfig(),
                          uint64_t Base = CodeBase) {
  if (!Config.StdoutSink)
    Config.StdoutSink = [](const char *, size_t) {};
  auto M = std::make_unique<VM>(Config);
  M->mem().map(Base, GuestPageSize, PermRWX);
  for (size_t K = 0; K < Prog.size(); ++K) {
    uint64_t Word = isa::encode(Prog[K]);
    EXPECT_EQ(M->mem().poke(Base + K * isa::InstSize, &Word, 8),
              MemFault::None);
  }
  ThreadState T;
  T.PC = Base;
  M->spawnThread(T);
  return M;
}

TEST(Jit, HotLoopMatchesInterpreterAndPopulatesStats) {
  auto Run = [](bool EnableJit) {
    auto Out = std::make_shared<std::string>();
    auto M = makeVM(computeProgram(), Out, jitConfig(EnableJit));
    RunResult R = M->run();
    EXPECT_EQ(R.Reason, StopReason::AllExited);
#if defined(__x86_64__)
    if (EnableJit) {
      EXPECT_GT(R.Jit.Blocks, 0u);
      EXPECT_GT(R.Jit.Hits, 0u);
      EXPECT_GT(R.Jit.Dispatches, 0u);
      // The loop-heavy program retires the bulk of its instructions from
      // compiled code.
      EXPECT_GT(R.Jit.Hits, M->globalRetired() / 2);
    }
#endif
    if (!EnableJit) {
      EXPECT_EQ(R.Jit.Blocks, 0u);
      EXPECT_EQ(R.Jit.Hits, 0u);
    }
    return std::tuple(R.Reason, R.ExitCode, M->globalRetired(), *Out,
                      M->thread(0)->GPR[6]);
  };
  EXPECT_EQ(Run(true), Run(false));
}

TEST(Jit, MultiThreadedInterleavingIdentical) {
  for (uint64_t Seed : {0ull, 12345ull}) {
    auto Run = [&](bool EnableJit) {
      VMConfig C = jitConfig(EnableJit);
      C.ScheduleSeed = Seed;
      auto Out = std::make_shared<std::string>();
      auto M = makeVM(multiThreadProgram(4, 2, 300), Out, C);
      RunResult R = M->run();
      return std::tuple(R.Reason, M->globalRetired(), *Out);
    };
    EXPECT_EQ(Run(true), Run(false)) << "seed " << Seed;
  }
}

TEST(Jit, BudgetStopsAtExactInstructionBoundary) {
  // The dispatcher may only retire up to the budget even when a compiled
  // superblock chain could run further: both VMs must stop at exactly the
  // same (arbitrary) instruction with the same architectural state.
  const uint64_t Budget = 12345;
  auto MI = makeVM(computeProgram(), std::make_shared<std::string>(),
                   jitConfig(false));
  auto MJ = makeVM(computeProgram(), std::make_shared<std::string>(),
                   jitConfig(true));
  RunResult RI = MI->run(Budget);
  RunResult RJ = MJ->run(Budget);
  EXPECT_EQ(RI.Reason, StopReason::BudgetReached);
  EXPECT_EQ(RJ.Reason, StopReason::BudgetReached);
  EXPECT_EQ(MI->globalRetired(), Budget);
  EXPECT_EQ(MJ->globalRetired(), Budget);
  const ThreadState &TI = *MI->thread(0);
  const ThreadState &TJ = *MJ->thread(0);
  EXPECT_EQ(TI.PC, TJ.PC);
  for (unsigned K = 0; K < isa::NumGPRs; ++K)
    EXPECT_EQ(TI.GPR[K], TJ.GPR[K]) << "GPR " << K;
}

TEST(Jit, RunThreadBatchesMatchSingleStepping) {
  // runThread is the constrained replayer's batched hot path: driving a
  // thread in odd-sized batches must land on the same state as stepThread.
  auto MB = makeVM(computeProgram(), std::make_shared<std::string>(),
                   jitConfig(true));
  auto MS = makeVM(computeProgram(), std::make_shared<std::string>(),
                   jitConfig(false));
  uint64_t Stepped = 0;
  for (uint64_t Batch : {1ull, 7ull, 100ull, 999ull, 3000ull}) {
    VM::ThreadRunResult TR = MB->runThread(0, Batch);
    EXPECT_EQ(TR.Reason, StopReason::BudgetReached);
    EXPECT_EQ(TR.Executed, Batch);
    for (uint64_t K = 0; K < Batch; ++K)
      ASSERT_EQ(MS->stepThread(0), StopReason::BudgetReached);
    Stepped += Batch;
    const ThreadState &TB = *MB->thread(0);
    const ThreadState &TS = *MS->thread(0);
    EXPECT_EQ(TB.PC, TS.PC) << "after " << Stepped;
    EXPECT_EQ(TB.Retired, Stepped);
    for (unsigned K = 0; K < isa::NumGPRs; ++K)
      EXPECT_EQ(TB.GPR[K], TS.GPR[K]) << "GPR " << K << " after " << Stepped;
  }
}

TEST(Jit, FaultParityWithInterpreter) {
  // A compiled load that faults must bail with the instruction not retired
  // so the interpreter re-runs it and raises the *canonical* fault: same
  // PC, same address, same message, same retired count as interpretation.
  std::vector<isa::Inst> Prog = {
      I3(isa::Opcode::Ldi, 3, 0, 0, 50),
      I3(isa::Opcode::Ldi, 1, 0, 0, 0x500000), // unmapped
      I3(isa::Opcode::Addi, 3, 3, 0, -1),      // hot loop -> compiled
      I3(isa::Opcode::Bne, 0, 3, 0, -8),
      I3(isa::Opcode::Ld8, 2, 1, 0, 0), // faults
      I3(isa::Opcode::Halt, 0, 0, 0, 0),
  };
  auto Run = [&](bool EnableJit) {
    VMConfig C = jitConfig(EnableJit);
    C.JitThreshold = 1;
    auto M = rawVM(Prog, C);
    RunResult R = M->run();
    EXPECT_EQ(R.Reason, StopReason::Faulted);
    return std::tuple(R.FaultInfo.PC, R.FaultInfo.Addr, R.FaultInfo.Message,
                      M->globalRetired());
  };
  EXPECT_EQ(Run(true), Run(false));
}

TEST(Jit, SelfModifyingCodeDropsCompiledBlocks) {
  // Execute-modify-reexecute against a *hot* loop: six passes add 111 to
  // r5; on pass 4 the loop patches its own body to add 222. The loop block
  // is compiled by then, so the invalidation must drop real compiled code
  // and the remaining passes must execute the fresh bytes:
  // 4 * 111 + 2 * 222 == 888.
  uint64_t Target = CodeBase + 6 * isa::InstSize;
  uint64_t NewWord = isa::encode(I3(isa::Opcode::Addi, 5, 5, 0, 222));
  std::vector<isa::Inst> Prog = {
      I3(isa::Opcode::Ldi, 1, 0, 0, static_cast<int32_t>(Target)),
      I3(isa::Opcode::Ldi, 2, 0, 0,
         static_cast<int32_t>(NewWord & 0xffffffff)),
      I3(isa::Opcode::Ldih, 2, 0, 0, static_cast<int32_t>(NewWord >> 32)),
      I3(isa::Opcode::Ldi, 4, 0, 0, 4), // the pass that patches
      I3(isa::Opcode::Addi, 6, 6, 0, 1), // loop: pass counter
      I3(isa::Opcode::Nop, 0, 0, 0, 0),
      I3(isa::Opcode::Addi, 5, 5, 0, 111), // TARGET (becomes +222)
      I3(isa::Opcode::Seq, 8, 6, 4, 0),   // r8 = (pass == 4)
      I3(isa::Opcode::Beq, 0, 8, 0, 2 * 8), // skip the store unless pass 4
      I3(isa::Opcode::St8, 2, 1, 0, 0),     // the patch
      I3(isa::Opcode::Slti, 7, 6, 0, 6),
      I3(isa::Opcode::Bne, 0, 7, 0, -7 * 8), // back to loop
      I3(isa::Opcode::Halt, 0, 0, 0, 0),
  };
  auto Run = [&](bool EnableJit) {
    VMConfig C = jitConfig(EnableJit);
    C.JitThreshold = 1; // compile on the very first re-entry
    auto M = rawVM(Prog, C);
    RunResult R = M->run();
    EXPECT_EQ(R.Reason, StopReason::Halted);
    EXPECT_EQ(M->thread(0)->GPR[5], 888u)
        << (EnableJit ? "compiled code" : "the interpreter")
        << " executed stale bytes after self-modification";
#if defined(__x86_64__)
    if (EnableJit) {
      EXPECT_GT(R.Jit.Blocks, 0u);
      EXPECT_GE(R.Jit.Invalidations + R.Jit.Flushes, 1u);
    }
#endif
    return std::tuple(M->thread(0)->GPR[5], M->globalRetired());
  };
  EXPECT_EQ(Run(true), Run(false));
}

TEST(Jit, StoreInsideCompiledCodeBailsViaPending) {
  // A hot loop whose store targets a *different* executable page: every
  // compiled execution of the store must take the post-store Pending exit
  // (the stored-to page could hold compiled code), never run the rest of
  // the block natively, and still land the bytes.
  const uint64_t PageB = CodeBase + GuestPageSize;
  std::vector<isa::Inst> Prog = {
      I3(isa::Opcode::Ldi, 1, 0, 0, static_cast<int32_t>(PageB)),
      I3(isa::Opcode::Ldi, 3, 0, 0, 50),
      I3(isa::Opcode::Addi, 5, 5, 0, 1), // loop
      I3(isa::Opcode::St8, 5, 1, 0, 0),  // store into exec page B
      I3(isa::Opcode::Addi, 3, 3, 0, -1),
      I3(isa::Opcode::Bne, 0, 3, 0, -3 * 8),
      I3(isa::Opcode::Halt, 0, 0, 0, 0),
  };
  VMConfig C = jitConfig(true);
  C.JitThreshold = 1;
  auto M = rawVM(Prog, C);
  M->mem().map(PageB, GuestPageSize, PermRWX);
  RunResult R = M->run();
  EXPECT_EQ(R.Reason, StopReason::Halted);
  EXPECT_EQ(M->thread(0)->GPR[5], 50u);
  uint64_t Landed = 0;
  EXPECT_EQ(M->mem().peek(PageB, &Landed, 8), MemFault::None);
  EXPECT_EQ(Landed, 50u);
#if defined(__x86_64__)
  EXPECT_GT(R.Jit.Blocks, 0u);
  EXPECT_GE(R.Jit.Bailouts, 10u); // one Pending exit per compiled store
#endif
}

/// Satellite: multi-threaded SMC. Two threads execute the same worker loop
/// while a third patches the loop body mid-run. The scheduler is
/// deterministic, so the final counters are exactly reproducible — and
/// must be identical with the JIT on and off (compiled blocks on the
/// patched page are dropped synchronously with the store, like decoded
/// blocks).
TEST(Jit, MultiThreadedSelfModifyingCodeCoherent) {
  const uint64_t PokerBase = CodeBase + GuestPageSize;
  const uint64_t DataPage = CodeBase + 2 * GuestPageSize;
  const uint64_t Target = CodeBase; // the patched worker instruction
  const uint64_t NewWord = isa::encode(I3(isa::Opcode::Addi, 1, 1, 0, 2));
  std::vector<isa::Inst> Worker = {
      I3(isa::Opcode::Addi, 1, 1, 0, 1), // TARGET (patched to +2)
      I3(isa::Opcode::Addi, 2, 2, 0, 1),
      I3(isa::Opcode::Slt, 4, 2, 6, 0), // r6 = iteration bound (preset)
      I3(isa::Opcode::Bne, 0, 4, 0, -3 * 8),
      I3(isa::Opcode::St8, 1, 5, 0, 0), // r5 = result slot (preset)
      I3(isa::Opcode::Ldi, 7, 0, 0, 0), // exit(0)
      I3(isa::Opcode::Ldi, 1, 0, 0, 0),
      I3(isa::Opcode::Syscall, 0, 0, 0, 0),
  };
  std::vector<isa::Inst> Poker = {
      I3(isa::Opcode::Ldi, 1, 0, 0, static_cast<int32_t>(Target)),
      I3(isa::Opcode::Ldi, 2, 0, 0,
         static_cast<int32_t>(NewWord & 0xffffffff)),
      I3(isa::Opcode::Ldih, 2, 0, 0, static_cast<int32_t>(NewWord >> 32)),
      I3(isa::Opcode::Ldi, 3, 0, 0, 3000), // delay so workers get hot first
      I3(isa::Opcode::Addi, 3, 3, 0, -1),
      I3(isa::Opcode::Bne, 0, 3, 0, -8),
      I3(isa::Opcode::St8, 2, 1, 0, 0), // the poke
      I3(isa::Opcode::Ldi, 7, 0, 0, 0), // exit(0)
      I3(isa::Opcode::Ldi, 1, 0, 0, 0),
      I3(isa::Opcode::Syscall, 0, 0, 0, 0),
  };

  auto Run = [&](bool EnableJit) {
    VMConfig C = jitConfig(EnableJit);
    C.JitThreshold = 2;
    C.StdoutSink = [](const char *, size_t) {};
    auto M = std::make_unique<VM>(C);
    M->mem().map(CodeBase, 2 * GuestPageSize, PermRWX);
    M->mem().map(DataPage, GuestPageSize, PermRW);
    for (size_t K = 0; K < Worker.size(); ++K) {
      uint64_t W = isa::encode(Worker[K]);
      EXPECT_EQ(M->mem().poke(CodeBase + K * 8, &W, 8), MemFault::None);
    }
    for (size_t K = 0; K < Poker.size(); ++K) {
      uint64_t W = isa::encode(Poker[K]);
      EXPECT_EQ(M->mem().poke(PokerBase + K * 8, &W, 8), MemFault::None);
    }
    for (int W = 0; W < 2; ++W) {
      ThreadState T;
      T.PC = CodeBase;
      T.GPR[5] = DataPage + 8 * static_cast<uint64_t>(W);
      T.GPR[6] = 20000; // iterations
      M->spawnThread(T);
    }
    ThreadState P;
    P.PC = PokerBase;
    M->spawnThread(P);

    RunResult R = M->run();
    EXPECT_EQ(R.Reason, StopReason::AllExited);
    uint64_t Slot0 = 0, Slot1 = 0;
    EXPECT_EQ(M->mem().peek(DataPage, &Slot0, 8), MemFault::None);
    EXPECT_EQ(M->mem().peek(DataPage + 8, &Slot1, 8), MemFault::None);
    // The patch landed mid-run: some iterations counted 1, the rest 2.
    EXPECT_GT(Slot0, 20000u);
    EXPECT_LT(Slot0, 40000u);
#if defined(__x86_64__)
    if (EnableJit) {
      EXPECT_GT(R.Jit.Hits, 0u);
      EXPECT_GE(R.Jit.Invalidations + R.Jit.Flushes, 1u);
    }
#endif
    return std::tuple(Slot0, Slot1, M->globalRetired(),
                      M->thread(0)->Retired, M->thread(1)->Retired,
                      M->thread(2)->Retired);
  };
  EXPECT_EQ(Run(true), Run(false));
}

TEST(Jit, ObserverGatingFollowsWantsPerInstruction) {
  // Default observers demand per-instruction callbacks: the JIT must stand
  // down entirely. An observer that opts out re-enables compiled dispatch
  // but still sees syscalls (they bail to the interpreter).
  struct Counting : Observer {
    bool PerInst;
    uint64_t Insts = 0, Syscalls = 0;
    explicit Counting(bool PerInst) : PerInst(PerInst) {}
    bool wantsPerInstruction() const override { return PerInst; }
    void onInstruction(const ThreadState &, uint64_t,
                       const isa::Inst &) override {
      ++Insts;
    }
    void onSyscall(uint32_t, uint64_t, const uint64_t *, int64_t) override {
      ++Syscalls;
    }
  };

  {
    Counting Obs(/*PerInst=*/true);
    auto M = makeVM(computeProgram(), std::make_shared<std::string>(),
                    jitConfig(true));
    M->setObserver(&Obs);
    RunResult R = M->run();
    EXPECT_EQ(R.Reason, StopReason::AllExited);
    EXPECT_EQ(R.Jit.Dispatches, 0u); // JIT stood down
    EXPECT_EQ(Obs.Insts, M->globalRetired());
    EXPECT_EQ(Obs.Syscalls, 2u); // write + exit_group
  }
  {
    Counting Obs(/*PerInst=*/false);
    auto M = makeVM(computeProgram(), std::make_shared<std::string>(),
                    jitConfig(true));
    M->setObserver(&Obs);
    RunResult R = M->run();
    EXPECT_EQ(R.Reason, StopReason::AllExited);
    EXPECT_EQ(Obs.Syscalls, 2u); // syscalls still observed under JIT
#if defined(__x86_64__)
    EXPECT_GT(R.Jit.Dispatches, 0u);
    EXPECT_LT(Obs.Insts, M->globalRetired()); // blocks retired silently
#endif
  }
}

TEST(Jit, StatsZeroWhenDisabled) {
  auto M = makeVM(computeProgram(), std::make_shared<std::string>(),
                  jitConfig(false));
  RunResult R = M->run();
  EXPECT_EQ(R.Reason, StopReason::AllExited);
  EXPECT_EQ(R.Jit.Blocks, 0u);
  EXPECT_EQ(R.Jit.Hits, 0u);
  EXPECT_EQ(R.Jit.Dispatches, 0u);
  EXPECT_EQ(M->jitStats().Blocks, 0u);
}

} // namespace
