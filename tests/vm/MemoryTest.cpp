//===- tests/vm/MemoryTest.cpp - AddressSpace regression tests ------------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// Regressions for the address-space fixes: read must honour PermRead, and
/// map/unmap must terminate for ranges ending at the very top of the
/// 64-bit guest space instead of wrapping around forever.
///
//===----------------------------------------------------------------------===//

#include "vm/Memory.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace elfie;
using namespace elfie::vm;

namespace {

constexpr uint64_t Base = 0x40000;

TEST(AddressSpace, ReadRequiresPermRead) {
  AddressSpace AS;
  AS.map(Base, GuestPageSize, PermWrite);
  uint64_t V = 0;
  EXPECT_EQ(AS.read(Base, &V, 8), MemFault::NoPermission);
  // Privileged peek still works.
  EXPECT_EQ(AS.peek(Base, &V, 8), MemFault::None);

  AddressSpace AS2;
  AS2.map(Base, GuestPageSize, PermRead);
  EXPECT_EQ(AS2.read(Base, &V, 8), MemFault::None);
}

TEST(AddressSpace, ReadOfUnmappedStillFaultsUnmapped) {
  AddressSpace AS;
  uint64_t V = 0;
  EXPECT_EQ(AS.read(Base, &V, 8), MemFault::Unmapped);
}

TEST(AddressSpace, MapAtTopOfAddressSpaceTerminates) {
  AddressSpace AS;
  uint64_t LastPage = UINT64_MAX - GuestPageMask;
  AS.map(LastPage, GuestPageSize, PermRW);
  EXPECT_TRUE(AS.isMapped(UINT64_MAX));
  EXPECT_EQ(AS.pageCount(), 1u);
  // Round-trip through the page.
  uint64_t V = 0x1122334455667788ull, Got = 0;
  EXPECT_EQ(AS.write(LastPage, &V, 8), MemFault::None);
  EXPECT_EQ(AS.read(LastPage, &Got, 8), MemFault::None);
  EXPECT_EQ(Got, V);
}

TEST(AddressSpace, MapClampsWrappingRange) {
  AddressSpace AS;
  uint64_t LastPage = UINT64_MAX - GuestPageMask;
  // Size overshoots the top of the space; the range is clamped to the
  // last page instead of wrapping to page 0.
  AS.map(LastPage, 4 * GuestPageSize, PermRW);
  EXPECT_TRUE(AS.isMapped(LastPage));
  EXPECT_FALSE(AS.isMapped(0));
  EXPECT_EQ(AS.pageCount(), 1u);
}

TEST(AddressSpace, UnmapAtTopOfAddressSpaceTerminates) {
  AddressSpace AS;
  uint64_t LastPage = UINT64_MAX - GuestPageMask;
  AS.map(LastPage - GuestPageSize, 2 * GuestPageSize, PermRW);
  EXPECT_EQ(AS.pageCount(), 2u);
  AS.unmap(LastPage - GuestPageSize, 4 * GuestPageSize); // wrapping size
  EXPECT_FALSE(AS.isMapped(LastPage));
  EXPECT_FALSE(AS.isMapped(LastPage - GuestPageSize));
  EXPECT_EQ(AS.pageCount(), 0u);
}

TEST(AddressSpace, CodeInvalidateHookFiresOnExecPageWrite) {
  AddressSpace AS;
  std::vector<uint64_t> Invalidated;
  AS.setCodeInvalidateHook(
      [&](uint64_t Page) { Invalidated.push_back(Page); });
  AS.map(Base, GuestPageSize, PermRWX);
  AS.map(Base + GuestPageSize, GuestPageSize, PermRW);

  uint64_t V = 1;
  // Store into the executable page: hook fires with that page.
  EXPECT_EQ(AS.write(Base + 16, &V, 8), MemFault::None);
  ASSERT_EQ(Invalidated.size(), 1u);
  EXPECT_EQ(Invalidated[0], Base);
  // Store into the plain data page: no notification.
  EXPECT_EQ(AS.write(Base + GuestPageSize, &V, 8), MemFault::None);
  EXPECT_EQ(Invalidated.size(), 1u);
  // Privileged poke into the exec page (replayer page injection): fires.
  EXPECT_EQ(AS.poke(Base + 32, &V, 8), MemFault::None);
  EXPECT_EQ(Invalidated.size(), 2u);
  // Unmap of the exec page: fires.
  AS.unmap(Base, GuestPageSize);
  EXPECT_EQ(Invalidated.size(), 3u);
  // clearAccessTracking reports the AllPages sentinel.
  AS.clearAccessTracking();
  ASSERT_EQ(Invalidated.size(), 4u);
  EXPECT_EQ(Invalidated[3], AddressSpace::AllPages);
}

MemImage pageImage(const std::vector<uint8_t> &Bytes, uint64_t At,
                   uint8_t Perm) {
  MemImage Img;
  Img.addRun(At, Perm, Bytes.data(), Bytes.size());
  return Img;
}

TEST(AddressSpace, AttachImageBacksReadsWithoutDirtyPages) {
  std::vector<uint8_t> Backing(2 * GuestPageSize);
  for (size_t I = 0; I < Backing.size(); ++I)
    Backing[I] = static_cast<uint8_t>(I * 7);

  AddressSpace AS;
  AS.attachImage(pageImage(Backing, Base, PermRead));

  const MemStats &S = AS.memStats();
  EXPECT_EQ(S.ImageExtents, 1u);
  EXPECT_EQ(S.CowFaults, 0u);
  EXPECT_EQ(S.DirtyBytes, 0u);

  // Reads come straight off the backing bytes (no copy was made: the page
  // data pointer aims into the backing buffer itself).
  uint64_t V = 0;
  EXPECT_EQ(AS.read(Base + 8, &V, 8), MemFault::None);
  EXPECT_EQ(0, std::memcmp(&V, Backing.data() + 8, 8));
  EXPECT_EQ(AS.pageData(Base), Backing.data());
  EXPECT_EQ(AS.pageData(Base + GuestPageSize),
            Backing.data() + GuestPageSize);
  EXPECT_EQ(AS.pagePerm(Base), PermRead);
  EXPECT_EQ(AS.memStats().DirtyBytes, 0u); // reads never allocate
}

TEST(AddressSpace, WriteToImagePageCowFaultsOnce) {
  std::vector<uint8_t> Backing(GuestPageSize, 0xab);
  AddressSpace AS;
  AS.attachImage(pageImage(Backing, Base, PermRW));

  uint64_t V = 0x1122334455667788ull;
  EXPECT_EQ(AS.write(Base + 64, &V, 8), MemFault::None);
  EXPECT_EQ(AS.memStats().CowFaults, 1u);
  EXPECT_EQ(AS.memStats().DirtyBytes, GuestPageSize);

  // The backing bytes are untouched; the page's private copy has the store
  // plus the original image bytes around it.
  EXPECT_EQ(Backing[64], 0xab);
  uint64_t Got = 0;
  EXPECT_EQ(AS.read(Base + 64, &Got, 8), MemFault::None);
  EXPECT_EQ(Got, V);
  uint8_t Edge = 0;
  EXPECT_EQ(AS.read(Base + 63, &Edge, 1), MemFault::None);
  EXPECT_EQ(Edge, 0xab);

  // Second store to the same page: no new fault, no new dirty bytes.
  EXPECT_EQ(AS.write(Base + 128, &V, 8), MemFault::None);
  EXPECT_EQ(AS.memStats().CowFaults, 1u);
  EXPECT_EQ(AS.memStats().DirtyBytes, GuestPageSize);
}

TEST(AddressSpace, TwoSpacesSharingOneImageStayIsolated) {
  std::vector<uint8_t> Backing(GuestPageSize, 0x5a);
  MemImage Img;
  Img.addRun(Base, PermRW, Backing.data(), Backing.size());

  // Two replay VMs over the same pinball image: each attaches a copy of
  // the (cheap, buffer-sharing) image.
  AddressSpace A, B;
  A.attachImage(Img);
  B.attachImage(Img);

  uint64_t V = 0xdeadbeef;
  EXPECT_EQ(A.write(Base, &V, 8), MemFault::None);

  uint64_t FromA = 0, FromB = 0;
  EXPECT_EQ(A.read(Base, &FromA, 8), MemFault::None);
  EXPECT_EQ(B.read(Base, &FromB, 8), MemFault::None);
  EXPECT_EQ(FromA, V);
  EXPECT_EQ(0, std::memcmp(&FromB, Backing.data(), 8)); // B unaffected
  EXPECT_EQ(B.memStats().CowFaults, 0u);
  EXPECT_EQ(Backing[0], 0x5a); // and so is the shared backing
}

TEST(AddressSpace, AttachImageUnalignedRunMaterializesEdgePages) {
  // A run that starts mid-page cannot be borrowed page-wise; the edge page
  // gets a private copy with the covered range filled in.
  std::vector<uint8_t> Backing(GuestPageSize, 0x77);
  AddressSpace AS;
  MemImage Img;
  Img.addRun(Base + 16, PermRead, Backing.data(), 32);
  AS.attachImage(std::move(Img));

  uint8_t Out[32];
  EXPECT_EQ(AS.read(Base + 16, Out, 32), MemFault::None);
  EXPECT_EQ(0, std::memcmp(Out, Backing.data(), 32));
  // Bytes outside the run on the same page read as zero.
  uint8_t Z = 0xff;
  EXPECT_EQ(AS.read(Base, &Z, 1), MemFault::None);
  EXPECT_EQ(Z, 0);
  EXPECT_EQ(AS.memStats().DirtyBytes, GuestPageSize);
}

TEST(AddressSpace, AttachedExecImageInvalidatesCode) {
  std::vector<uint8_t> Backing(GuestPageSize, 0x90);
  AddressSpace AS;
  std::vector<uint64_t> Invalidated;
  AS.setCodeInvalidateHook(
      [&](uint64_t Page) { Invalidated.push_back(Page); });
  AS.attachImage(pageImage(Backing, Base, PermRX));
  ASSERT_FALSE(Invalidated.empty());
  EXPECT_EQ(Invalidated[0], Base);

  // Fetch executes straight from the borrowed image bytes.
  uint8_t Insn[4];
  EXPECT_EQ(AS.fetch(Base, Insn, 4), MemFault::None);
  EXPECT_EQ(Insn[0], 0x90);
}

} // namespace
