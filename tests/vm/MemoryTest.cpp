//===- tests/vm/MemoryTest.cpp - AddressSpace regression tests ------------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// Regressions for the address-space fixes: read must honour PermRead, and
/// map/unmap must terminate for ranges ending at the very top of the
/// 64-bit guest space instead of wrapping around forever.
///
//===----------------------------------------------------------------------===//

#include "vm/Memory.h"

#include <gtest/gtest.h>

using namespace elfie;
using namespace elfie::vm;

namespace {

constexpr uint64_t Base = 0x40000;

TEST(AddressSpace, ReadRequiresPermRead) {
  AddressSpace AS;
  AS.map(Base, GuestPageSize, PermWrite);
  uint64_t V = 0;
  EXPECT_EQ(AS.read(Base, &V, 8), MemFault::NoPermission);
  // Privileged peek still works.
  EXPECT_EQ(AS.peek(Base, &V, 8), MemFault::None);

  AddressSpace AS2;
  AS2.map(Base, GuestPageSize, PermRead);
  EXPECT_EQ(AS2.read(Base, &V, 8), MemFault::None);
}

TEST(AddressSpace, ReadOfUnmappedStillFaultsUnmapped) {
  AddressSpace AS;
  uint64_t V = 0;
  EXPECT_EQ(AS.read(Base, &V, 8), MemFault::Unmapped);
}

TEST(AddressSpace, MapAtTopOfAddressSpaceTerminates) {
  AddressSpace AS;
  uint64_t LastPage = UINT64_MAX - GuestPageMask;
  AS.map(LastPage, GuestPageSize, PermRW);
  EXPECT_TRUE(AS.isMapped(UINT64_MAX));
  EXPECT_EQ(AS.pageCount(), 1u);
  // Round-trip through the page.
  uint64_t V = 0x1122334455667788ull, Got = 0;
  EXPECT_EQ(AS.write(LastPage, &V, 8), MemFault::None);
  EXPECT_EQ(AS.read(LastPage, &Got, 8), MemFault::None);
  EXPECT_EQ(Got, V);
}

TEST(AddressSpace, MapClampsWrappingRange) {
  AddressSpace AS;
  uint64_t LastPage = UINT64_MAX - GuestPageMask;
  // Size overshoots the top of the space; the range is clamped to the
  // last page instead of wrapping to page 0.
  AS.map(LastPage, 4 * GuestPageSize, PermRW);
  EXPECT_TRUE(AS.isMapped(LastPage));
  EXPECT_FALSE(AS.isMapped(0));
  EXPECT_EQ(AS.pageCount(), 1u);
}

TEST(AddressSpace, UnmapAtTopOfAddressSpaceTerminates) {
  AddressSpace AS;
  uint64_t LastPage = UINT64_MAX - GuestPageMask;
  AS.map(LastPage - GuestPageSize, 2 * GuestPageSize, PermRW);
  EXPECT_EQ(AS.pageCount(), 2u);
  AS.unmap(LastPage - GuestPageSize, 4 * GuestPageSize); // wrapping size
  EXPECT_FALSE(AS.isMapped(LastPage));
  EXPECT_FALSE(AS.isMapped(LastPage - GuestPageSize));
  EXPECT_EQ(AS.pageCount(), 0u);
}

TEST(AddressSpace, CodeInvalidateHookFiresOnExecPageWrite) {
  AddressSpace AS;
  std::vector<uint64_t> Invalidated;
  AS.setCodeInvalidateHook(
      [&](uint64_t Page) { Invalidated.push_back(Page); });
  AS.map(Base, GuestPageSize, PermRWX);
  AS.map(Base + GuestPageSize, GuestPageSize, PermRW);

  uint64_t V = 1;
  // Store into the executable page: hook fires with that page.
  EXPECT_EQ(AS.write(Base + 16, &V, 8), MemFault::None);
  ASSERT_EQ(Invalidated.size(), 1u);
  EXPECT_EQ(Invalidated[0], Base);
  // Store into the plain data page: no notification.
  EXPECT_EQ(AS.write(Base + GuestPageSize, &V, 8), MemFault::None);
  EXPECT_EQ(Invalidated.size(), 1u);
  // Privileged poke into the exec page (replayer page injection): fires.
  EXPECT_EQ(AS.poke(Base + 32, &V, 8), MemFault::None);
  EXPECT_EQ(Invalidated.size(), 2u);
  // Unmap of the exec page: fires.
  AS.unmap(Base, GuestPageSize);
  EXPECT_EQ(Invalidated.size(), 3u);
  // clearAccessTracking reports the AllPages sentinel.
  AS.clearAccessTracking();
  ASSERT_EQ(Invalidated.size(), 4u);
  EXPECT_EQ(Invalidated[3], AddressSpace::AllPages);
}

} // namespace
