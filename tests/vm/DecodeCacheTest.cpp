//===- tests/vm/DecodeCacheTest.cpp - Decoded-block cache behaviour -------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// The decode cache is a pure interpreter optimization: with it on or off
/// the EVM must retire the identical instruction stream. These tests pin
/// the hit/miss accounting, the behavioural equivalence, and the
/// invalidation rules (stores into executable pages, self-modifying code).
///
//===----------------------------------------------------------------------===//

#include "vm/VM.h"

#include "../common/TestHelpers.h"
#include "isa/ISA.h"

#include <gtest/gtest.h>

using namespace elfie;
using namespace elfie::vm;
using test::computeProgram;
using test::makeVM;
using test::multiThreadProgram;

namespace {

/// Assembles tiny programs directly from isa::Inst lists into an RWX page,
/// bypassing the assembler/loader: the SMC tests need code in a *writable*
/// page, which the ELF loader never produces.
constexpr uint64_t CodeBase = 0x10000;

isa::Inst I3(isa::Opcode Op, uint8_t Rd, uint8_t Rs1, uint8_t Rs2,
             int32_t Imm) {
  isa::Inst I;
  I.Op = Op;
  I.Rd = Rd;
  I.Rs1 = Rs1;
  I.Rs2 = Rs2;
  I.Imm = Imm;
  return I;
}

std::unique_ptr<VM> rawVM(const std::vector<isa::Inst> &Prog,
                          VMConfig Config = VMConfig()) {
  if (!Config.StdoutSink)
    Config.StdoutSink = [](const char *, size_t) {};
  auto M = std::make_unique<VM>(Config);
  M->mem().map(CodeBase, GuestPageSize, PermRWX);
  for (size_t K = 0; K < Prog.size(); ++K) {
    uint64_t Word = isa::encode(Prog[K]);
    EXPECT_EQ(M->mem().poke(CodeBase + K * isa::InstSize, &Word, 8),
              MemFault::None);
  }
  ThreadState T;
  T.PC = CodeBase;
  M->spawnThread(T);
  return M;
}

TEST(DecodeCache, HitMissAccountingCoversEveryInstruction) {
  auto Out = std::make_shared<std::string>();
  auto M = makeVM(computeProgram(), Out);
  ASSERT_TRUE(M);
  RunResult R = M->run();
  EXPECT_EQ(R.Reason, StopReason::AllExited);
  // Every retired instruction is dispatched from the cache: exactly one
  // hit (cursor or lookup) or one miss (block build) each.
  EXPECT_EQ(R.CacheStats.Hits + R.CacheStats.Misses, M->globalRetired());
  EXPECT_GT(R.CacheStats.Misses, 0u);
  // The program is loop-heavy, so hits dominate by orders of magnitude.
  EXPECT_GT(R.CacheStats.Hits, R.CacheStats.Misses * 100);
  EXPECT_EQ(R.CacheStats.Invalidations, 0u);
  EXPECT_GT(M->decodeCache().blockCount(), 0u);
}

TEST(DecodeCache, DisabledCacheCountsNothing) {
  VMConfig C;
  C.EnableDecodeCache = false;
  auto M = makeVM(computeProgram(), std::make_shared<std::string>(), C);
  ASSERT_TRUE(M);
  RunResult R = M->run();
  EXPECT_EQ(R.Reason, StopReason::AllExited);
  EXPECT_EQ(R.CacheStats.Hits, 0u);
  EXPECT_EQ(R.CacheStats.Misses, 0u);
  EXPECT_EQ(M->decodeCache().blockCount(), 0u);
}

TEST(DecodeCache, OnOffBehaviourIdentical) {
  auto Run = [](bool Enable) {
    VMConfig C;
    C.EnableDecodeCache = Enable;
    auto Out = std::make_shared<std::string>();
    auto M = makeVM(computeProgram(), Out, C);
    RunResult R = M->run();
    return std::tuple(R.Reason, R.ExitCode, M->globalRetired(), *Out,
                      M->thread(0)->GPR[6]);
  };
  EXPECT_EQ(Run(true), Run(false));
}

TEST(DecodeCache, OnOffBehaviourIdenticalMultiThreaded) {
  auto Run = [](bool Enable) {
    VMConfig C;
    C.EnableDecodeCache = Enable;
    auto Out = std::make_shared<std::string>();
    auto M = makeVM(multiThreadProgram(4, 2, 300), Out, C);
    RunResult R = M->run();
    return std::tuple(R.Reason, M->globalRetired(), *Out);
  };
  EXPECT_EQ(Run(true), Run(false));
}

TEST(DecodeCache, StoreToExecutablePageInvalidates) {
  // St8 into the code page itself (past the code) must flush the cached
  // blocks of that page even though no executed instruction changed.
  std::vector<isa::Inst> Prog = {
      I3(isa::Opcode::Ldi, 1, 0, 0,
         static_cast<int32_t>(CodeBase + 2048)),
      I3(isa::Opcode::St8, 2, 1, 0, 0),
      I3(isa::Opcode::Halt, 0, 0, 0, 0),
  };
  auto M = rawVM(Prog);
  RunResult R = M->run();
  EXPECT_EQ(R.Reason, StopReason::Halted);
  EXPECT_GE(R.CacheStats.Invalidations, 1u);
}

TEST(DecodeCache, StoreToDataPageDoesNotInvalidate) {
  uint64_t DataPage = CodeBase + GuestPageSize;
  std::vector<isa::Inst> Prog = {
      I3(isa::Opcode::Ldi, 1, 0, 0, static_cast<int32_t>(DataPage)),
      I3(isa::Opcode::St8, 2, 1, 0, 0),
      I3(isa::Opcode::Halt, 0, 0, 0, 0),
  };
  auto M = rawVM(Prog);
  M->mem().map(DataPage, GuestPageSize, PermRW);
  RunResult R = M->run();
  EXPECT_EQ(R.Reason, StopReason::Halted);
  EXPECT_EQ(R.CacheStats.Invalidations, 0u);
}

/// Execute-modify-reexecute: the loop body adds 111 to r5, then patches
/// itself to add 222 and runs once more. A stale cached block would add
/// 111 twice (r5 == 222); precise invalidation yields 111 + 222 == 333.
std::vector<isa::Inst> smcProgram() {
  uint64_t Target = CodeBase + 6 * isa::InstSize; // the patched Addi
  uint64_t NewWord =
      isa::encode(I3(isa::Opcode::Addi, 5, 5, 0, 222));
  return {
      // r1 = &target, r2 = encoding of "addi r5, r5, 222"
      I3(isa::Opcode::Ldi, 1, 0, 0, static_cast<int32_t>(Target)),
      I3(isa::Opcode::Ldi, 2, 0, 0,
         static_cast<int32_t>(NewWord & 0xffffffff)),
      I3(isa::Opcode::Ldih, 2, 0, 0,
         static_cast<int32_t>(NewWord >> 32)),
      I3(isa::Opcode::Ldi, 6, 0, 0, 0), // pass counter
      // loop: (CodeBase + 4*8)
      I3(isa::Opcode::Addi, 6, 6, 0, 1),
      I3(isa::Opcode::Nop, 0, 0, 0, 0),
      I3(isa::Opcode::Addi, 5, 5, 0, 111), // TARGET (patched after pass 1)
      I3(isa::Opcode::Slti, 7, 6, 0, 2),   // r7 = (passes < 2)
      I3(isa::Opcode::Beq, 0, 7, 0, 3 * 8), // r7 == r0 -> done
      I3(isa::Opcode::St8, 2, 1, 0, 0),     // patch the target
      I3(isa::Opcode::Jmp, 0, 0, 0, -6 * 8), // back to loop
      I3(isa::Opcode::Halt, 0, 0, 0, 0),
  };
}

TEST(DecodeCache, SelfModifyingCodeReexecutesFreshBytes) {
  for (bool Enable : {true, false}) {
    VMConfig C;
    C.EnableDecodeCache = Enable;
    auto M = rawVM(smcProgram(), C);
    RunResult R = M->run();
    EXPECT_EQ(R.Reason, StopReason::Halted);
    EXPECT_EQ(M->thread(0)->GPR[5], 333u)
        << "cache " << (Enable ? "on" : "off")
        << " executed stale bytes after self-modification";
    if (Enable) {
      EXPECT_GE(R.CacheStats.Invalidations, 1u);
    }
  }
}

TEST(DecodeCache, StepThreadUsesCacheToo) {
  // The constrained replayer's hot path is stepThread; the per-thread
  // cursor must serve it from the cache just like run().
  auto M = makeVM(computeProgram(), std::make_shared<std::string>());
  ASSERT_TRUE(M);
  for (int K = 0; K < 1000; ++K)
    ASSERT_EQ(M->stepThread(0), StopReason::BudgetReached);
  const DecodeCacheStats &S = M->decodeCacheStats();
  EXPECT_EQ(S.Hits + S.Misses, 1000u);
  EXPECT_GT(S.Hits, S.Misses);
}

TEST(DecodeCache, RebuildAtLivePCBumpsGeneration) {
  // Regression: insert() replacing a resident block at the same start PC
  // frees the old block. A per-thread cursor still holding the old pointer
  // must fail its generation check — before the fix the generation stayed
  // put and the cursor dereferenced freed memory (and the direct-mapped
  // slot kept serving the dangling pointer).
  DecodeCache DC;
  auto B1 = std::make_unique<DecodedBlock>();
  B1->StartPC = 0x1000;
  B1->Insts = {I3(isa::Opcode::Nop, 0, 0, 0, 0)};
  const DecodedBlock *Stale = DC.insert(std::move(B1));
  ASSERT_EQ(DC.lookup(0x1000), Stale); // cursor holds Stale at generation G
  uint64_t Gen = DC.generation();

  auto B2 = std::make_unique<DecodedBlock>();
  B2->StartPC = 0x1000;
  B2->Insts = {I3(isa::Opcode::Addi, 1, 1, 0, 1),
               I3(isa::Opcode::Halt, 0, 0, 0, 0)};
  const DecodedBlock *Fresh = DC.insert(std::move(B2));

  // The stale cursor's generation check must now fail...
  EXPECT_NE(DC.generation(), Gen);
  // ...and both lookup paths (slot and map) must serve the fresh decode,
  // never the freed block.
  const DecodedBlock *L = DC.lookup(0x1000);
  EXPECT_EQ(L, Fresh);
  EXPECT_EQ(L->Insts.size(), 2u);
  EXPECT_EQ(DC.blockCount(), 1u);
}

TEST(DecodeCache, BlockCapForcesFullFlush) {
  // Unit level: the 5th distinct block crosses MaxBlocks=4 and triggers a
  // cap flush — residency stays bounded and the new block survives.
  DecodeCache DC(4);
  for (uint64_t K = 0; K < 5; ++K) {
    auto B = std::make_unique<DecodedBlock>();
    B->StartPC = 0x1000 + K * 64;
    B->Insts = {I3(isa::Opcode::Nop, 0, 0, 0, 0)};
    DC.insert(std::move(B));
  }
  EXPECT_EQ(DC.stats().CapFlushes, 1u);
  EXPECT_EQ(DC.blockCount(), 1u);
  EXPECT_NE(DC.lookup(0x1000 + 4 * 64), nullptr);
  EXPECT_EQ(DC.lookup(0x1000), nullptr); // flushed
}

TEST(DecodeCache, CappedCacheBehaviourIdentical) {
  // VM level: an absurdly small cap thrashes the cache constantly but must
  // not change the executed stream.
  auto Run = [](size_t Cap) {
    VMConfig C;
    C.DecodeCacheMaxBlocks = Cap;
    auto Out = std::make_shared<std::string>();
    auto M = makeVM(computeProgram(), Out, C);
    RunResult R = M->run();
    if (Cap && Cap < 8) {
      EXPECT_GE(R.CacheStats.CapFlushes, 1u) << "cap " << Cap;
    }
    return std::tuple(R.Reason, R.ExitCode, M->globalRetired(), *Out,
                      M->thread(0)->GPR[6]);
  };
  auto Reference = Run(0); // 0 = default (effectively unbounded here)
  EXPECT_EQ(Run(2), Reference);
  EXPECT_EQ(Run(7), Reference);
}

TEST(DecodeCache, UnmapOfExecutablePageInvalidates) {
  auto M = rawVM({I3(isa::Opcode::Halt, 0, 0, 0, 0)});
  RunResult R = M->run();
  EXPECT_EQ(R.Reason, StopReason::Halted);
  ASSERT_GT(M->decodeCache().blockCount(), 0u);
  M->mem().unmap(CodeBase, GuestPageSize);
  EXPECT_EQ(M->decodeCache().blockCount(), 0u);
  EXPECT_GE(M->decodeCacheStats().Invalidations, 1u);
}

} // namespace
