//===- tests/vm/VMTest.cpp - EVM interpreter behaviour --------------------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "vm/VM.h"

#include "easm/Assembler.h"
#include "elf/ELFReader.h"
#include "support/FileIO.h"

#include <gtest/gtest.h>

using namespace elfie;
using namespace elfie::vm;

namespace {

struct RunOutcome {
  RunResult Result;
  std::string Stdout;
  std::unique_ptr<VM> Machine;
};

/// Assembles, loads, and runs a guest program to completion.
RunOutcome runProgram(const std::string &Src, VMConfig Config = VMConfig(),
                      std::vector<std::string> Args = {},
                      uint64_t Budget = 10000000) {
  RunOutcome Out;
  auto Captured = std::make_shared<std::string>();
  Config.StdoutSink = [Captured](const char *P, size_t N) {
    Captured->append(P, N);
  };
  auto Image = easm::assembleToELF(Src, "test.s");
  EXPECT_TRUE(Image.hasValue()) << Image.message();
  if (!Image)
    return Out;
  auto Reader = elf::ELFReader::parse(*Image);
  EXPECT_TRUE(Reader.hasValue()) << Reader.message();
  Out.Machine = std::make_unique<VM>(Config);
  Error E = Out.Machine->loadELF(*Reader);
  EXPECT_FALSE(E.isError()) << E.message();
  E = Out.Machine->setupMainThread(Args);
  EXPECT_FALSE(E.isError()) << E.message();
  Out.Result = Out.Machine->run(Budget);
  Out.Stdout = *Captured;
  return Out;
}

/// exit_group with the value in r1 after running Body.
std::string exitWith(const std::string &Body) {
  // Switch back to .text in case the body ended inside a data section.
  return Body + "\n"
         "  .text\n"
         "  mov r1, r10\n"
         "  ldi r7, 1\n" // exit_group
         "  syscall\n";
}

TEST(VM, ArithmeticAndExitCode) {
  auto O = runProgram(exitWith("_start:\n"
                               "  ldi r1, 6\n"
                               "  ldi r2, 7\n"
                               "  mul r10, r1, r2\n"));
  EXPECT_EQ(O.Result.Reason, StopReason::AllExited);
  EXPECT_EQ(O.Result.ExitCode, 42);
}

TEST(VM, LoopComputesSum) {
  // sum 1..100 = 5050
  auto O = runProgram(exitWith("_start:\n"
                               "  ldi r1, 0\n"
                               "  ldi r2, 1\n"
                               "  ldi r3, 100\n"
                               "loop:\n"
                               "  add r1, r1, r2\n"
                               "  addi r2, r2, 1\n"
                               "  bge r3, r2, loop\n"
                               "  mov r10, r1\n"));
  EXPECT_EQ(O.Result.ExitCode, 5050);
}

TEST(VM, MemoryLoadsAndStores) {
  auto O = runProgram(exitWith("_start:\n"
                               "  la r1, buf\n"
                               "  ldi r2, 0x1122334455667788\n"
                               "  ldih r2, 0x11223344\n"
                               "  li r3, 0x1122334455667788\n"
                               "  st8 r3, 0(r1)\n"
                               "  ld4 r4, 0(r1)\n"   // 0x55667788
                               "  ld1 r5, 7(r1)\n"   // 0x11
                               "  ld2s r6, 0(r1)\n"  // sext(0x7788)
                               "  add r10, r4, r5\n"
                               "  add r10, r10, r6\n"
                               "  .data\n"
                               "  .align 8\n"
                               "buf: .space 16\n"));
  int64_t Expected = 0x55667788 + 0x11 + 0x7788;
  EXPECT_EQ(O.Result.ExitCode, Expected);
}

TEST(VM, SignExtendingLoads) {
  auto O = runProgram(exitWith("_start:\n"
                               "  la r1, v\n"
                               "  ld1s r10, 0(r1)\n"
                               "  .data\n"
                               "v: .byte 0xff\n"));
  EXPECT_EQ(O.Result.ExitCode, -1);
}

TEST(VM, DivisionSemantics) {
  // div by zero => all ones; rem by zero => dividend (RISC-V rules).
  auto O = runProgram(exitWith("_start:\n"
                               "  ldi r1, 17\n"
                               "  ldi r2, 0\n"
                               "  div r3, r1, r2\n"   // -1
                               "  rem r4, r1, r2\n"   // 17
                               "  add r10, r3, r4\n")); // 16
  EXPECT_EQ(O.Result.ExitCode, 16);
}

TEST(VM, FunctionCallAndReturn) {
  auto O = runProgram(exitWith("_start:\n"
                               "  ldi r1, 5\n"
                               "  call double_it\n"
                               "  mov r10, r1\n"
                               "  jmp end\n"
                               "double_it:\n"
                               "  add r1, r1, r1\n"
                               "  ret\n"
                               "end:\n"));
  EXPECT_EQ(O.Result.ExitCode, 10);
}

TEST(VM, FloatingPoint) {
  // (3.0 + 4.0) * 2.0 = 14.0 -> int
  auto O = runProgram(exitWith("_start:\n"
                               "  ldi r1, 3\n"
                               "  fcvtid f1, r1\n"
                               "  ldi r1, 4\n"
                               "  fcvtid f2, r1\n"
                               "  fadd f3, f1, f2\n"
                               "  fadd f3, f3, f3\n"
                               "  fcvtdi r10, f3\n"));
  EXPECT_EQ(O.Result.ExitCode, 14);
}

TEST(VM, FsqrtAndCompare) {
  auto O = runProgram(exitWith("_start:\n"
                               "  ldi r1, 16\n"
                               "  fcvtid f1, r1\n"
                               "  fsqrt f2, f1\n"
                               "  fcvtdi r10, f2\n"));
  EXPECT_EQ(O.Result.ExitCode, 4);
}

TEST(VM, WriteSyscallCapturesStdout) {
  auto O = runProgram("_start:\n"
                      "  ldi r7, 2\n" // write
                      "  ldi r1, 1\n"
                      "  la r2, msg\n"
                      "  ldi r3, 6\n"
                      "  syscall\n"
                      "  ldi r7, 1\n"
                      "  ldi r1, 0\n"
                      "  syscall\n"
                      "  .data\n"
                      "msg: .ascii \"hello\\n\"\n");
  EXPECT_EQ(O.Result.Reason, StopReason::AllExited);
  EXPECT_EQ(O.Stdout, "hello\n");
}

TEST(VM, ArgcArgvOnStack) {
  auto O = runProgram(exitWith("_start:\n"
                               "  ld8 r10, 0(sp)\n"), // argc
                      VMConfig(), {"prog", "a", "bc"});
  EXPECT_EQ(O.Result.ExitCode, 3);
}

TEST(VM, BrkGrowsHeap) {
  auto O = runProgram(exitWith("_start:\n"
                               "  ldi r7, 7\n" // brk(0) -> base
                               "  ldi r1, 0\n"
                               "  syscall\n"
                               "  mov r9, r1\n"
                               "  addi r1, r9, 8192\n" // grow
                               "  ldi r7, 7\n"
                               "  syscall\n"
                               "  st8 r9, 0(r9)\n"  // store into new heap
                               "  ld8 r10, 0(r9)\n"
                               "  sub r10, r10, r9\n")); // 0 if OK
  EXPECT_EQ(O.Result.ExitCode, 0);
}

TEST(VM, FileIO) {
  std::string Dir = testing::TempDir() + "/evm_fileio";
  createDirectories(Dir);
  writeFileText(Dir + "/in.txt", "ABCDEFGH");
  VMConfig C;
  C.FsRoot = Dir;
  auto O = runProgram(exitWith("_start:\n"
                               "  ldi r7, 4\n" // open
                               "  la r1, path\n"
                               "  ldi r2, 0\n" // O_RDONLY
                               "  ldi r3, 0\n"
                               "  syscall\n"
                               "  mov r9, r1\n" // fd
                               "  ldi r7, 6\n"  // lseek(fd, 4, SET)
                               "  mov r1, r9\n"
                               "  ldi r2, 4\n"
                               "  ldi r3, 0\n"
                               "  syscall\n"
                               "  ldi r7, 3\n" // read(fd, buf, 4)
                               "  mov r1, r9\n"
                               "  la r2, buf\n"
                               "  ldi r3, 4\n"
                               "  syscall\n"
                               "  ldi r7, 5\n" // close
                               "  mov r1, r9\n"
                               "  syscall\n"
                               "  la r2, buf\n"
                               "  ld1 r10, 0(r2)\n" // 'E'
                               "  .data\n"
                               "path: .asciz \"in.txt\"\n"
                               "buf: .space 8\n"),
                      C);
  EXPECT_EQ(O.Result.ExitCode, 'E');
  removeTree(Dir);
}

TEST(VM, OpenMissingFileReturnsNegativeErrno) {
  VMConfig C;
  C.FsRoot = testing::TempDir();
  auto O = runProgram(exitWith("_start:\n"
                               "  ldi r7, 4\n"
                               "  la r1, path\n"
                               "  ldi r2, 0\n"
                               "  ldi r3, 0\n"
                               "  syscall\n"
                               "  mov r10, r1\n"
                               "  .data\n"
                               "path: .asciz \"no_such_file_xyz\"\n"),
                      C);
  EXPECT_EQ(O.Result.ExitCode, -ENOENT);
}

TEST(VM, VirtualClockIsDeterministic) {
  std::string Src = exitWith("_start:\n"
                             "  ldi r7, 8\n"
                             "  syscall\n"
                             "  mov r10, r1\n");
  auto A = runProgram(Src);
  auto B = runProgram(Src);
  EXPECT_EQ(A.Result.ExitCode, B.Result.ExitCode);
  EXPECT_GT(A.Result.ExitCode, 0);
}

TEST(VM, CloneRunsChildThread) {
  // Parent spawns a child that stores 99 to a flag; parent spins on it.
  auto O = runProgram(exitWith("_start:\n"
                               "  ldi r7, 9\n" // clone
                               "  la r1, child\n"
                               "  la r2, childstack+4096\n"
                               "  ldi r3, 77\n" // arg
                               "  syscall\n"
                               "wait:\n"
                               "  la r4, flag\n"
                               "  ld8 r5, 0(r4)\n"
                               "  pause\n"
                               "  beqz r5, wait\n"
                               "  mov r10, r5\n"
                               "  jmp done\n"
                               "child:\n"
                               "  la r4, flag\n"
                               "  addi r2, r1, 22\n" // 77+22=99
                               "  st8 r2, 0(r4)\n"
                               "  ldi r7, 0\n" // exit
                               "  ldi r1, 0\n"
                               "  syscall\n"
                               "done:\n"
                               "  .bss\n"
                               "  .align 8\n"
                               "flag: .space 8\n"
                               "childstack: .space 4096\n"));
  EXPECT_EQ(O.Result.Reason, StopReason::AllExited);
  EXPECT_EQ(O.Result.ExitCode, 99);
}

TEST(VM, AtomicAmoAddAcrossThreads) {
  // 4 children each amoadd 1000x; parent waits for all.
  auto O = runProgram(exitWith(
      "_start:\n"
      "  ldi r9, 0\n" // spawned count
      "spawn:\n"
      "  ldi r7, 9\n"
      "  la r1, child\n"
      "  la r2, stacks\n"
      "  addi r3, r9, 1\n"
      "  muli r4, r3, 4096\n"
      "  add r2, r2, r4\n"
      "  ldi r3, 0\n"
      "  syscall\n"
      "  addi r9, r9, 1\n"
      "  slti r4, r9, 4\n"
      "  bnez r4, spawn\n"
      "waitall:\n"
      "  la r4, done_count\n"
      "  ld8 r5, 0(r4)\n"
      "  pause\n"
      "  slti r6, r5, 4\n"
      "  bnez r6, waitall\n"
      "  la r4, counter\n"
      "  ld8 r10, 0(r4)\n"
      "  jmp out\n"
      "child:\n"
      "  ldi r2, 0\n"
      "  la r3, counter\n"
      "cloop:\n"
      "  ldi r4, 1\n"
      "  amoadd r5, (r3), r4\n"
      "  addi r2, r2, 1\n"
      "  slti r6, r2, 1000\n"
      "  bnez r6, cloop\n"
      "  la r3, done_count\n"
      "  ldi r4, 1\n"
      "  amoadd r5, (r3), r4\n"
      "  ldi r7, 0\n"
      "  ldi r1, 0\n"
      "  syscall\n"
      "out:\n"
      "  .bss\n"
      "  .align 8\n"
      "counter: .space 8\n"
      "done_count: .space 8\n"
      "stacks: .space 20480\n"));
  EXPECT_EQ(O.Result.ExitCode, 4000);
}

TEST(VM, CasSemantics) {
  auto O = runProgram(exitWith("_start:\n"
                               "  la r1, v\n"
                               "  ldi r2, 10\n"
                               "  st8 r2, 0(r1)\n"
                               "  ldi r3, 10\n"  // expected (matches)
                               "  ldi r4, 20\n"  // new
                               "  cas r3, (r1), r4\n" // r3=old=10, v=20
                               "  ldi r5, 99\n"  // expected (mismatches)
                               "  ldi r6, 30\n"
                               "  cas r5, (r1), r6\n" // r5=old=20, v stays 20
                               "  ld8 r7, 0(r1)\n"
                               "  add r10, r3, r5\n"
                               "  add r10, r10, r7\n"
                               "  .bss\n"
                               "  .align 8\n"
                               "v: .space 8\n")); // 10+20+20=50
  EXPECT_EQ(O.Result.ExitCode, 50);
}

TEST(VM, FaultOnUnmappedLoad) {
  auto O = runProgram("_start:\n"
                      "  li r1, 0x5000000000\n"
                      "  ld8 r2, 0(r1)\n"
                      "  halt\n");
  EXPECT_EQ(O.Result.Reason, StopReason::Faulted);
  EXPECT_EQ(O.Result.FaultInfo.Addr, 0x5000000000ull);
  EXPECT_NE(O.Result.FaultInfo.Message.find("unmapped"), std::string::npos);
}

TEST(VM, FaultOnMisalignedJalr) {
  auto O = runProgram("_start:\n"
                      "  ldi r1, 0x10004\n"
                      "  jalr r2, r1, 0\n");
  EXPECT_EQ(O.Result.Reason, StopReason::Faulted);
  EXPECT_NE(O.Result.FaultInfo.Message.find("misaligned"),
            std::string::npos);
}

TEST(VM, FaultOnExecuteDataPage) {
  auto O = runProgram("_start:\n"
                      "  la r1, d\n"
                      "  jalr r2, r1, 0\n"
                      "  .data\n"
                      "  .align 8\n"
                      "d: .quad 0\n");
  EXPECT_EQ(O.Result.Reason, StopReason::Faulted);
}

TEST(VM, HaltStopsMachine) {
  auto O = runProgram("_start:\n  halt\n");
  EXPECT_EQ(O.Result.Reason, StopReason::Halted);
}

TEST(VM, BudgetStopsRun) {
  auto O = runProgram("_start:\n"
                      "loop: jmp loop\n",
                      VMConfig(), {}, /*Budget=*/1000);
  EXPECT_EQ(O.Result.Reason, StopReason::BudgetReached);
  EXPECT_EQ(O.Machine->globalRetired(), 1000u);
}

TEST(VM, RetiredCountsPerThread) {
  auto O = runProgram(exitWith("_start:\n"
                               "  nop\n"
                               "  nop\n"
                               "  ldi r10, 0\n"));
  // nop,nop,ldi,mov,ldi,syscall = 6
  EXPECT_EQ(O.Machine->thread(0)->Retired, 6u);
  EXPECT_EQ(O.Machine->globalRetired(), 6u);
}

// ---- Observer hooks ----

class CountingObserver : public Observer {
public:
  uint64_t Insts = 0, MemOps = 0, Transfers = 0, Syscalls = 0, Markers = 0;
  uint64_t Creates = 0, Exits = 0;
  int32_t LastMarkerTag = 0;
  void onInstruction(const ThreadState &, uint64_t, const isa::Inst &)
      override {
    ++Insts;
  }
  void onMemoryAccess(uint32_t, uint64_t, uint32_t, bool) override {
    ++MemOps;
  }
  void onControlTransfer(uint32_t, uint64_t, uint64_t, bool) override {
    ++Transfers;
  }
  void onSyscall(uint32_t, uint64_t, const uint64_t *, int64_t) override {
    ++Syscalls;
  }
  void onMarker(uint32_t, isa::MarkerKind, int32_t Tag) override {
    ++Markers;
    LastMarkerTag = Tag;
  }
  void onThreadCreate(uint32_t, uint32_t) override { ++Creates; }
  void onThreadExit(uint32_t, int64_t) override { ++Exits; }
};

TEST(VM, ObserverSeesEvents) {
  auto Image = easm::assembleToELF("_start:\n"
                                   "  marker 0, 1\n"
                                   "  la r1, d\n"
                                   "  ld8 r2, 0(r1)\n"
                                   "  st8 r2, 0(r1)\n"
                                   "  jmp next\n"
                                   "next:\n"
                                   "  ldi r7, 1\n"
                                   "  ldi r1, 0\n"
                                   "  syscall\n"
                                   "  .data\n"
                                   "  .align 8\n"
                                   "d: .quad 5\n",
                                   "obs.s");
  ASSERT_TRUE(Image.hasValue()) << Image.message();
  auto Reader = elf::ELFReader::parse(*Image);
  VM M;
  ASSERT_FALSE(M.loadELF(*Reader).isError());
  ASSERT_FALSE(M.setupMainThread().isError());
  CountingObserver Obs;
  M.setObserver(&Obs);
  auto R = M.run();
  EXPECT_EQ(R.Reason, StopReason::AllExited);
  EXPECT_EQ(Obs.Insts, M.globalRetired());
  EXPECT_EQ(Obs.MemOps, 2u);
  EXPECT_EQ(Obs.Transfers, 1u);
  EXPECT_EQ(Obs.Syscalls, 1u);
  EXPECT_EQ(Obs.Markers, 1u);
  EXPECT_EQ(Obs.LastMarkerTag, 1);
  EXPECT_EQ(Obs.Exits, 1u);
}

TEST(VM, ObserverStopRequestHonored) {
  class Stopper : public Observer {
  public:
    VM *M = nullptr;
    uint64_t Seen = 0;
    void onInstruction(const ThreadState &, uint64_t,
                       const isa::Inst &) override {
      if (++Seen == 5)
        M->requestStop();
    }
  };
  auto Image = easm::assembleToELF("_start:\nloop: jmp loop\n", "s.s");
  auto Reader = elf::ELFReader::parse(*Image);
  VM M;
  ASSERT_FALSE(M.loadELF(*Reader).isError());
  ASSERT_FALSE(M.setupMainThread().isError());
  Stopper S;
  S.M = &M;
  M.setObserver(&S);
  auto R = M.run();
  EXPECT_EQ(R.Reason, StopReason::Stopped);
  EXPECT_EQ(M.globalRetired(), 5u);
}

// ---- Determinism ----

TEST(VM, SameSeedSameSchedule) {
  std::string Src = exitWith(
      "_start:\n"
      "  ldi r7, 9\n"
      "  la r1, child\n"
      "  la r2, cstack+4096\n"
      "  ldi r3, 0\n"
      "  syscall\n"
      "  ldi r2, 0\n"
      "ploop:\n"
      "  la r3, shared\n"
      "  ldi r4, 1\n"
      "  amoadd r5, (r3), r4\n"
      "  addi r2, r2, 1\n"
      "  slti r6, r2, 500\n"
      "  bnez r6, ploop\n"
      "  la r3, shared\n"
      "  ld8 r10, 0(r3)\n"
      "  jmp out\n"
      "child:\n"
      "  ldi r2, 0\n"
      "cloop:\n"
      "  la r3, shared\n"
      "  ldi r4, 3\n"
      "  amoadd r5, (r3), r4\n"
      "  addi r2, r2, 1\n"
      "  slti r6, r2, 500\n"
      "  bnez r6, cloop\n"
      "  ldi r7, 0\n"
      "  ldi r1, 0\n"
      "  syscall\n"
      "out:\n"
      "  .bss\n"
      "  .align 8\n"
      "shared: .space 8\n"
      "cstack: .space 4096\n");
  VMConfig C1;
  C1.ScheduleSeed = 42;
  VMConfig C2;
  C2.ScheduleSeed = 42;
  auto A = runProgram(Src, C1);
  auto B = runProgram(Src, C2);
  // Same seed: identical final state including the parent's observed value.
  EXPECT_EQ(A.Result.ExitCode, B.Result.ExitCode);
  EXPECT_EQ(A.Machine->globalRetired(), B.Machine->globalRetired());
}

TEST(VM, StepThreadGivesExactControl) {
  auto Image = easm::assembleToELF("_start:\n"
                                   "  addi r1, r1, 1\n"
                                   "  addi r1, r1, 1\n"
                                   "  halt\n",
                                   "s.s");
  auto Reader = elf::ELFReader::parse(*Image);
  VM M;
  ASSERT_FALSE(M.loadELF(*Reader).isError());
  ASSERT_FALSE(M.setupMainThread().isError());
  EXPECT_EQ(M.stepThread(0), StopReason::BudgetReached);
  EXPECT_EQ(M.thread(0)->GPR[1], 1u);
  EXPECT_EQ(M.stepThread(0), StopReason::BudgetReached);
  EXPECT_EQ(M.thread(0)->GPR[1], 2u);
  EXPECT_EQ(M.stepThread(0), StopReason::Halted);
}

// ---- Memory subsystem unit tests ----

TEST(AddressSpace, MapReadWrite) {
  AddressSpace AS;
  AS.map(0x1000, 0x2000, PermRW);
  uint64_t V = 0xdead;
  EXPECT_EQ(AS.write(0x1ff8, &V, 8), MemFault::None); // page-crossing
  uint64_t Out = 0;
  EXPECT_EQ(AS.read(0x1ff8, &Out, 8), MemFault::None);
  EXPECT_EQ(Out, 0xdeadull);
}

TEST(AddressSpace, UnmappedFaults) {
  AddressSpace AS;
  uint64_t V;
  EXPECT_EQ(AS.read(0x5000, &V, 8), MemFault::Unmapped);
  AS.map(0x5000, 0x1000, PermRead);
  EXPECT_EQ(AS.read(0x5000, &V, 8), MemFault::None);
  EXPECT_EQ(AS.write(0x5000, &V, 8), MemFault::NoPermission);
  EXPECT_EQ(AS.fetch(0x5000, &V, 8), MemFault::NoPermission);
}

TEST(AddressSpace, FirstTouchHookFiresOncePerPage) {
  AddressSpace AS;
  AS.map(0x1000, 0x3000, PermRW);
  std::vector<uint64_t> Touched;
  AS.clearAccessTracking();
  AS.setFirstTouchHook(
      [&](uint64_t Addr, const uint8_t *) { Touched.push_back(Addr); });
  uint64_t V = 1;
  AS.write(0x1100, &V, 8);
  AS.write(0x1200, &V, 8); // same page: no second event
  AS.read(0x2f00, &V, 8);  // third page
  ASSERT_EQ(Touched.size(), 2u);
  EXPECT_EQ(Touched[0], 0x1000u);
  EXPECT_EQ(Touched[1], 0x2000u);
  // Hook sees pre-access contents.
  AS.clearAccessTracking();
  std::vector<uint8_t> Snapshot;
  AS.setFirstTouchHook([&](uint64_t, const uint8_t *Bytes) {
    Snapshot.assign(Bytes, Bytes + GuestPageSize);
  });
  uint64_t W = 0x42;
  AS.write(0x1100, &W, 8);
  uint64_t Prev;
  memcpy(&Prev, Snapshot.data() + 0x100, 8);
  EXPECT_EQ(Prev, 1u) << "hook must observe the value before the write";
}

TEST(AddressSpace, UnmapRemovesPages) {
  AddressSpace AS;
  AS.map(0x1000, 0x2000, PermRW);
  AS.unmap(0x1000, 0x1000);
  EXPECT_FALSE(AS.isMapped(0x1000));
  EXPECT_TRUE(AS.isMapped(0x2000));
}

TEST(AddressSpace, ReadCString) {
  AddressSpace AS;
  AS.map(0x1000, 0x1000, PermRW);
  AS.write(0x1000, "hi", 3);
  auto S = AS.readCString(0x1000);
  ASSERT_TRUE(S.hasValue());
  EXPECT_EQ(*S, "hi");
  EXPECT_FALSE(AS.readCString(0x9000).hasValue());
}

} // namespace
