//===- tests/vm/VMEdgeCasesTest.cpp - syscall & scheduler edge cases ------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "vm/VM.h"

#include "../common/TestHelpers.h"

#include <gtest/gtest.h>

using namespace elfie;
using namespace elfie::vm;

namespace {

RunResult runSrc(const std::string &Src, vm::VM *&Out,
                 std::unique_ptr<vm::VM> &Holder,
                 vm::VMConfig Config = vm::VMConfig()) {
  Holder = test::makeVM(Src, nullptr, Config);
  Out = Holder.get();
  return Holder->run(10000000);
}

TEST(VMEdge, BrkIsGrowOnly) {
  std::unique_ptr<VM> H;
  VM *M;
  auto R = runSrc(R"(
_start:
  ldi r7, 7
  ldi r1, 0
  syscall            # query
  mov r9, r1
  addi r1, r9, 8192  # grow
  ldi r7, 7
  syscall
  mov r10, r1
  mov r1, r9         # attempt shrink back: refused, returns current top
  ldi r7, 7
  syscall
  sub r1, r1, r10    # 0 if the shrink was refused
  ldi r7, 1
  syscall
)",
                  M, H);
  EXPECT_EQ(R.Reason, StopReason::AllExited);
  EXPECT_EQ(R.ExitCode, 0);
}

TEST(VMEdge, UnknownSyscallFaults) {
  std::unique_ptr<VM> H;
  VM *M;
  auto R = runSrc("_start:\n  ldi r7, 999\n  syscall\n", M, H);
  EXPECT_EQ(R.Reason, StopReason::Faulted);
  EXPECT_NE(R.FaultInfo.Message.find("unknown system call"),
            std::string::npos);
}

TEST(VMEdge, WriteToBadFdReturnsEBADF) {
  std::unique_ptr<VM> H;
  VM *M;
  auto R = runSrc(R"(
_start:
  ldi r7, 2
  ldi r1, 42          # never-opened fd
  la  r2, b
  ldi r3, 1
  syscall
  ldi r7, 1
  syscall             # exit_group(result)
  .data
b: .byte 0
)",
                  M, H);
  EXPECT_EQ(R.ExitCode & 0xff, (-EBADF) & 0xff);
}

TEST(VMEdge, MmapAnonFixedAndBump) {
  std::unique_ptr<VM> H;
  VM *M;
  auto R = runSrc(R"(
_start:
  ldi r7, 12           # mmap_anon(0, 8192): bump allocator
  ldi r1, 0
  ldi r2, 8192
  syscall
  mov r9, r1
  st8 r9, 0(r9)        # must be mapped + writable
  ldi r7, 12           # mmap_anon(fixed hint)
  li  r1, 0x30000000
  ldi r2, 4096
  syscall
  li  r2, 0x30000000
  sub r10, r1, r2      # 0 when honored
  ldi r7, 13           # munmap the fixed one
  syscall
  mov r1, r10
  ldi r7, 1
  syscall
)",
                  M, H);
  EXPECT_EQ(R.Reason, StopReason::AllExited);
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_FALSE(M->mem().isMapped(0x30000000));
}

TEST(VMEdge, LseekWhenceVariants) {
  std::string Dir = testing::TempDir() + "/evm_lseek";
  removeTree(Dir);
  createDirectories(Dir);
  writeFileText(Dir + "/f", "0123456789");
  vm::VMConfig C;
  C.FsRoot = Dir;
  std::unique_ptr<VM> H;
  VM *M;
  auto R = runSrc(R"(
_start:
  ldi r7, 4
  la  r1, p
  ldi r2, 0
  ldi r3, 0
  syscall
  mov r9, r1
  ldi r7, 6           # SEEK_END -2 -> offset 8
  mov r1, r9
  ldi r2, -2
  ldi r3, 2
  syscall
  mov r10, r1         # 8
  ldi r7, 6           # SEEK_CUR -3 -> offset 5
  mov r1, r9
  ldi r2, -3
  ldi r3, 1
  syscall
  add r10, r10, r1    # 8 + 5 = 13
  ldi r7, 3
  mov r1, r9
  la  r2, b
  ldi r3, 1
  syscall             # reads '5'
  la  r2, b
  ld1 r2, 0(r2)
  add r1, r10, r2     # 13 + '5'(53) = 66
  ldi r7, 1
  syscall
  .data
p: .asciz "f"
b: .byte 0
)",
                  M, H, C);
  EXPECT_EQ(R.ExitCode, 66);
  removeTree(Dir);
}

TEST(VMEdge, ExitLeavesOtherThreadsRunning) {
  std::unique_ptr<VM> H;
  VM *M;
  auto R = runSrc(R"(
_start:
  ldi r7, 9
  la  r1, child
  la  r2, stk+1024
  ldi r3, 0
  syscall
  ldi r7, 0           # main thread exits; child continues
  ldi r1, 0
  syscall
child:
  ldi r2, 0
cl:
  addi r2, r2, 1
  slti r3, r2, 100
  bnez r3, cl
  ldi r7, 1           # exit_group(7)
  ldi r1, 7
  syscall
  .bss
  .align 8
stk: .space 1024
)",
                  M, H);
  EXPECT_EQ(R.Reason, StopReason::AllExited);
  EXPECT_EQ(R.ExitCode, 7);
}

TEST(VMEdge, GetTidAndYield) {
  std::unique_ptr<VM> H;
  VM *M;
  auto R = runSrc(R"(
_start:
  ldi r7, 10
  syscall
  mov r9, r1          # tid 0
  ldi r7, 11
  syscall             # yield returns 0
  add r1, r9, r1
  ldi r7, 1
  syscall
)",
                  M, H);
  EXPECT_EQ(R.ExitCode, 0);
}

// Property: for any schedule seed, the MT program's atomic total is the
// same (atomics are race-free by construction); per-thread splits differ.
class SchedulerSeeds : public testing::TestWithParam<uint64_t> {};

TEST_P(SchedulerSeeds, AtomicTotalsSeedIndependent) {
  vm::VMConfig C;
  C.ScheduleSeed = GetParam();
  auto Out = std::make_shared<std::string>();
  auto M = test::makeVM(test::multiThreadProgram(4, 2, 500), Out, C);
  ASSERT_NE(M, nullptr);
  auto R = M->run(50000000);
  ASSERT_EQ(R.Reason, StopReason::AllExited)
      << (R.Reason == StopReason::Faulted ? R.FaultInfo.Message : "");
  ASSERT_EQ(Out->size(), 8u);
  uint64_t Total;
  memcpy(&Total, Out->data(), 8);
  EXPECT_EQ(Total, 4u * 2 * 500);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerSeeds,
                         testing::Values(0ull, 1ull, 42ull, 1234567ull));

} // namespace
