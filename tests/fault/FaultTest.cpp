//===- tests/fault/FaultTest.cpp - fault injection + fail-closed loop -----===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// The robustness backbone: seeded I/O fault plans, deterministic artifact
/// mutators, the 200-seed fail-closed sweep through Pinball::load and the
/// replayer, and the crash-safety proof for the staged pinball save (a
/// process killed mid-write leaves the complete old artifact or nothing).
///
//===----------------------------------------------------------------------===//

#include "fault/FaultPlan.h"
#include "fault/Mutator.h"

#include "../common/TestHelpers.h"
#include "replay/Replayer.h"

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace elfie;
using namespace elfie::fault;
using pinball::LoggerOptions;
using pinball::Pinball;
using test::capture;
using test::computeProgram;

namespace {

std::string tempDir(const std::string &Name) {
  std::string D = testing::TempDir() + "/elfie_fault_" + Name;
  removeTree(D);
  createDirectories(D);
  return D;
}

TEST(FaultSpecParse, AcceptsTheGrammar) {
  auto S = parseFaultSpec("write:3:kill");
  ASSERT_TRUE(S.hasValue()) << S.message();
  EXPECT_EQ(S->O, FaultSpec::Op::Write);
  EXPECT_EQ(S->Nth, 3u);
  EXPECT_EQ(S->K, FaultSpec::Kind::Kill);

  S = parseFaultSpec("read:12:flip");
  ASSERT_TRUE(S.hasValue());
  EXPECT_EQ(S->O, FaultSpec::Op::Read);
  EXPECT_EQ(S->Nth, 12u);
  EXPECT_EQ(S->K, FaultSpec::Kind::Flip);
}

TEST(FaultSpecParse, RejectsWithStableCodes) {
  struct Case {
    const char *Text;
    const char *Code;
  } Cases[] = {
      {"write:1", "EFAULT.SPEC.SYNTAX"},
      {"nonsense", "EFAULT.SPEC.SYNTAX"},
      {"fsync:1:eio", "EFAULT.SPEC.OP"},
      {"write:0:eio", "EFAULT.SPEC.NTH"},
      {"write:x:eio", "EFAULT.SPEC.NTH"},
      {"write:1:melt", "EFAULT.SPEC.KIND"},
  };
  for (const Case &C : Cases) {
    auto S = parseFaultSpec(C.Text);
    ASSERT_FALSE(S.hasValue()) << C.Text;
    EXPECT_EQ(S.error().code(), C.Code) << C.Text;
  }
}

TEST(FaultPlanHook, FiresOnTheNthWriteOnly) {
  FaultPlan Plan(1);
  Plan.add({FaultSpec::Op::Write, 2, FaultSpec::Kind::Enospc});
  setIOFaultHook(&Plan);
  std::string Dir = tempDir("nth");
  uint8_t Byte = 0x5a;
  Error E1 = writeFile(Dir + "/a", &Byte, 1);
  EXPECT_FALSE(E1.isError()) << E1.str();
  Error E2 = writeFile(Dir + "/b", &Byte, 1);
  EXPECT_TRUE(E2.isError());
  EXPECT_EQ(E2.code(), "EFAULT.IO.WRITE");
  Error E3 = writeFile(Dir + "/c", &Byte, 1);
  EXPECT_FALSE(E3.isError());
  setIOFaultHook(nullptr);
  EXPECT_EQ(Plan.writesSeen(), 3u);
  removeTree(Dir);
}

TEST(FaultPlanHook, MutationsAreSeedDeterministic) {
  std::vector<uint8_t> Orig(256);
  for (size_t I = 0; I < Orig.size(); ++I)
    Orig[I] = static_cast<uint8_t>(I * 7);
  for (auto Kind : {FaultSpec::Kind::Flip, FaultSpec::Kind::Short}) {
    std::vector<uint8_t> A = Orig, B = Orig;
    FaultPlan P1(42), P2(42);
    P1.add({FaultSpec::Op::Write, 1, Kind});
    P2.add({FaultSpec::Op::Write, 1, Kind});
    EXPECT_FALSE(P1.onWrite("x", A).isError());
    EXPECT_FALSE(P2.onWrite("x", B).isError());
    EXPECT_EQ(A, B) << "same seed must mutate identically";
    EXPECT_NE(A, Orig) << "the mutation must actually change the data";
  }
}

TEST(Mutator, PinballMutationIsSeedDeterministic) {
  std::string Dir = tempDir("mutdet");
  auto PB = capture(Dir + "/cap", computeProgram(), 3000, 20000,
                    LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();
  ASSERT_FALSE(PB->save(Dir + "/base").isError());

  for (std::string Copy : {Dir + "/m1", Dir + "/m2"}) {
    ASSERT_FALSE(copyTree(Dir + "/base", Copy).isError());
    auto What = mutatePinballDir(Copy, 1234);
    ASSERT_TRUE(What.hasValue()) << What.message();
  }
  auto Files = listDirectory(Dir + "/m1");
  ASSERT_TRUE(Files.hasValue());
  for (const std::string &Name : *Files) {
    auto A = readFileBytes(Dir + "/m1/" + Name);
    auto B = readFileBytes(Dir + "/m2/" + Name);
    if (!A.hasValue()) { // a directory entry (e.g. nothing here) — skip
      continue;
    }
    ASSERT_TRUE(B.hasValue()) << Name;
    EXPECT_EQ(*A, *B) << Name;
  }
  removeTree(Dir);
}

/// The acceptance sweep: 200 seeded corruptions of one pinball, each
/// driven through Pinball::load and (when it still loads) the constrained
/// replayer. Fail-closed means: never crash (the test process would die),
/// never hang (the replay is budget-bounded), and every rejection carries
/// a stable EFAULT.* code.
TEST(FailClosed, TwoHundredSeededPinballCorruptions) {
  std::string Dir = tempDir("sweep");
  auto PB = capture(Dir + "/cap", computeProgram(), 3000, 20000,
                    LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();
  ASSERT_FALSE(PB->save(Dir + "/base").isError());

  unsigned Rejected = 0, Loaded = 0;
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    std::string Mut = Dir + "/mut";
    removeTree(Mut);
    ASSERT_FALSE(copyTree(Dir + "/base", Mut).isError());
    auto What = mutatePinballDir(Mut, Seed);
    ASSERT_TRUE(What.hasValue()) << What.message();

    auto MPB = Pinball::load(Mut);
    if (!MPB.hasValue()) {
      ++Rejected;
      EXPECT_EQ(MPB.error().code().rfind("EFAULT.", 0), 0u)
          << "seed " << Seed << " (" << *What
          << "): uncoded rejection: " << MPB.message();
      continue;
    }
    ++Loaded;
    replay::ReplayOptions Opts;
    Opts.MaxInstructions = 100000; // bounded: corrupted logs cannot hang
    auto R = replay::replayPinball(*MPB, Opts);
    if (!R.hasValue())
      EXPECT_EQ(R.error().code().rfind("EFAULT.", 0), 0u)
          << "seed " << Seed << " (" << *What
          << "): uncoded replay error: " << R.message();
    // A successful replay of a mutated pinball is fine: either the
    // mutation was benign or the replayer recorded a divergence.
  }
  // The mutator must actually exercise both outcomes.
  EXPECT_GT(Rejected, 20u);
  EXPECT_GT(Loaded, 20u);
  removeTree(Dir);
}

/// Crash-safety for the staged save: kill the process at every write
/// ordinal and require the destination to hold the complete old pinball
/// (or, when the kill lands after publication, the complete new one) —
/// never a partial directory.
TEST(FailClosed, KilledMidSaveLeavesOldArtifactOrNothing) {
  std::string Dir = tempDir("atomic");
  auto PB = capture(Dir + "/cap", computeProgram(), 3000, 20000,
                    LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();
  std::string Dest = Dir + "/r.pb";
  ASSERT_FALSE(PB->save(Dest).isError());
  const uint64_t OldStart = PB->Meta.RegionStart;

  for (uint64_t Nth = 1; Nth <= 10; ++Nth) {
    pid_t Pid = fork();
    ASSERT_GE(Pid, 0);
    if (Pid == 0) {
      // Child: re-save with a changed header and die on the Nth write.
      FaultPlan Plan;
      Plan.add({FaultSpec::Op::Write, Nth, FaultSpec::Kind::Kill});
      setIOFaultHook(&Plan);
      Pinball Copy = *PB;
      Copy.Meta.RegionStart = OldStart + 1;
      Error E = Copy.save(Dest);
      setIOFaultHook(nullptr);
      ::_exit(E.isError() ? 1 : 0);
    }
    int Status = 0;
    ASSERT_EQ(::waitpid(Pid, &Status, 0), Pid);
    ASSERT_TRUE(WIFEXITED(Status));
    int Code = WEXITSTATUS(Status);
    ASSERT_TRUE(Code == 97 || Code == 0) << "nth=" << Nth;

    auto After = Pinball::load(Dest);
    ASSERT_TRUE(After.hasValue())
        << "nth=" << Nth << ": destination must stay loadable: "
        << After.message();
    if (Code == 97)
      EXPECT_EQ(After->Meta.RegionStart, OldStart)
          << "nth=" << Nth << ": a killed save must not alter the old "
                              "artifact";
    else
      EXPECT_EQ(After->Meta.RegionStart, OldStart + 1)
          << "nth=" << Nth << ": past the last write the save completed";
  }
  removeTree(Dir);
}

} // namespace
