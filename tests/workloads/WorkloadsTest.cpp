//===- tests/workloads/WorkloadsTest.cpp - suite sanity -------------------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "../common/TestHelpers.h"
#include "elf/ELFReader.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

using namespace elfie;
using namespace elfie::workloads;

namespace {

TEST(Workloads, RegistryShape) {
  const auto &R = registry();
  EXPECT_GE(R.size(), 19u) << "the suite stands in for 19+ benchmarks";
  EXPECT_GE(suite(Suite::IntRate).size(), 10u);
  EXPECT_GE(suite(Suite::FpRate).size(), 5u);
  EXPECT_GE(suite(Suite::OmpSpeed).size(), 4u);
  ASSERT_NE(find("gcc_like"), nullptr);
  ASSERT_NE(find("xz_s"), nullptr);
  EXPECT_FALSE(find("xz_s")->MultiThreaded)
      << "xz_s.1 is the single-threaded speed benchmark (paper §IV-B)";
  EXPECT_EQ(find("nonexistent"), nullptr);
}

TEST(Workloads, UnknownNameFails) {
  EXPECT_FALSE(generateSource("bogus", InputSet::Train).hasValue());
}

/// Every workload must assemble and run to completion at test scale.
class WorkloadRuns : public testing::TestWithParam<std::string> {};

TEST_P(WorkloadRuns, BuildsAndRunsAtTestScale) {
  auto Image = buildWorkload(GetParam(), InputSet::Test);
  ASSERT_TRUE(Image.hasValue()) << Image.message();
  auto Reader = elf::ELFReader::parse(*Image);
  ASSERT_TRUE(Reader.hasValue()) << Reader.message();

  vm::VMConfig Config;
  Config.StdoutSink = [](const char *, size_t) {};
  vm::VM M(Config);
  ASSERT_FALSE(M.loadELF(*Reader).isError());
  ASSERT_FALSE(M.setupMainThread({GetParam()}).isError());
  auto R = M.run(100000000);
  EXPECT_EQ(R.Reason, vm::StopReason::AllExited)
      << (R.Reason == vm::StopReason::Faulted ? R.FaultInfo.Message
                                              : "did not finish");
  EXPECT_GT(M.globalRetired(), 100000u)
      << "test input should still run a meaningful number of instructions";
  const WorkloadInfo *Info = find(GetParam());
  EXPECT_EQ(M.threadIds().size(), Info->MultiThreaded ? 8u : 1u);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadRuns, [] {
  std::vector<std::string> Names;
  for (const WorkloadInfo &W : registry())
    Names.push_back(W.Name);
  return testing::ValuesIn(Names);
}());

TEST(Workloads, InputSetsScaleRunLength) {
  auto RunLen = [](InputSet I) -> uint64_t {
    auto Image = buildWorkload("leela_like", I);
    EXPECT_TRUE(Image.hasValue());
    auto Reader = elf::ELFReader::parse(*Image);
    vm::VMConfig Config;
    Config.StdoutSink = [](const char *, size_t) {};
    vm::VM M(Config);
    EXPECT_FALSE(M.loadELF(*Reader).isError());
    EXPECT_FALSE(M.setupMainThread().isError());
    M.run(1000000000ull);
    return M.globalRetired();
  };
  uint64_t T = RunLen(InputSet::Test);
  uint64_t Tr = RunLen(InputSet::Train);
  uint64_t R = RunLen(InputSet::Ref);
  EXPECT_LT(T, Tr);
  EXPECT_LT(Tr * 3, R) << "ref must be much longer than train";
}

TEST(Workloads, DeterministicAcrossRuns) {
  auto Run = [](uint64_t &Retired) {
    auto Image = buildWorkload("perlbench_like", InputSet::Test);
    auto Reader = elf::ELFReader::parse(*Image);
    std::string Out;
    vm::VMConfig Config;
    Config.StdoutSink = [&Out](const char *P, size_t N) {
      Out.append(P, N);
    };
    vm::VM M(Config);
    (void)M.loadELF(*Reader);
    (void)M.setupMainThread();
    M.run(1000000000ull);
    Retired = M.globalRetired();
    return Out;
  };
  uint64_t RA, RB;
  std::string A = Run(RA), B = Run(RB);
  EXPECT_EQ(RA, RB);
  EXPECT_EQ(A, B);
}

} // namespace
