//===- tests/store/StoreE2ETest.cpp - estore end-to-end tests -------------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// Drives the store the way an operator would, as subprocesses: store-backed
/// pinball2elf emission byte-identical with direct emission, cross-region
/// dedup measured over two regions of one workload, a kill-mid-GC sweep
/// (ELFIE_FAULT_SPEC=write:K:kill over `estore gc` — a live chunk is never
/// lost, garbage never survives the follow-up sweep), the efault
/// chunk-corruption campaign (every consumer fails closed with a typed
/// EFAULT.STORE.* code — zero crashes, hangs, or uncoded rejections), and
/// the everify STORE.* pass.
///
/// The efault sweep runs 20 mutations by default; -DELFIE_SLOW_TESTS=ON
/// raises it to 200 (the ISSUE acceptance bar).
///
//===----------------------------------------------------------------------===//

#include "store/Artifact.h"
#include "store/ChunkStore.h"
#include "support/FileIO.h"
#include "support/Format.h"

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <set>
#include <string>

using namespace elfie;
using namespace elfie::store;

#ifndef ELFIE_BIN_DIR
#define ELFIE_BIN_DIR ""
#endif

#ifdef ELFIE_SLOW_TESTS
static constexpr int FaultRuns = 200;
#else
static constexpr int FaultRuns = 20;
#endif

namespace {

struct CmdResult {
  int ExitCode = -1;
  std::string Output; // stdout + stderr
};

CmdResult runCmd(const std::string &Env, const std::string &CmdLine) {
  std::string Full = Env + (Env.empty() ? "" : " ") + CmdLine + " 2>&1";
  FILE *P = popen(Full.c_str(), "r");
  CmdResult R;
  if (!P)
    return R;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
    R.Output.append(Buf, N);
  int Status = pclose(P);
  R.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  return R;
}

std::string binPath(const std::string &Tool) {
  return std::string(ELFIE_BIN_DIR) + "/" + Tool;
}

/// Extracts the integer after "\"Key\":" from a one-line JSON blob.
uint64_t jsonInt(const std::string &JSON, const std::string &Key) {
  size_t At = JSON.find("\"" + Key + "\":");
  if (At == std::string::npos)
    return ~0ull;
  return strtoull(JSON.c_str() + At + Key.size() + 3, nullptr, 10);
}

/// Shared fixture: one small workload, two recorded regions (same binary,
/// different instruction windows), built once per process.
class StoreE2E : public testing::Test {
protected:
  static void SetUpTestSuite() {
    Root = testing::TempDir() + "/elfie_store_e2e." +
           std::to_string(getpid());
    removeTree(Root);
    ASSERT_FALSE(createDirectories(Root).isError());

    std::string Src = R"(
_start:
  ldi r9, 0
loop:
  muli r2, r2, 13
  addi r2, r2, 7
  ldi r7, 10
  syscall
  addi r9, r9, 1
  slti r3, r9, 80000
  bnez r3, loop
  ldi r7, 1
  ldi r1, 0
  syscall
)";
    ASSERT_FALSE(writeFileText(Root + "/p.s", Src).isError());
    auto R = runCmd("", formatString("%s -o %s/p.elf %s/p.s",
                                     binPath("easm").c_str(), Root.c_str(),
                                     Root.c_str()));
    ASSERT_EQ(R.ExitCode, 0) << R.Output;
    // Two regions of the same workload: the shape cross-region dedup is
    // built for (shared code/data pages, per-region restoration tables).
    R = runCmd("", formatString("%s -region:start 50000 -region:length "
                                "100000 -log:fat 1 -o %s/ra.pb %s/p.elf",
                                binPath("elogger").c_str(), Root.c_str(),
                                Root.c_str()));
    ASSERT_EQ(R.ExitCode, 0) << R.Output;
    R = runCmd("", formatString("%s -region:start 150000 -region:length "
                                "100000 -log:fat 1 -o %s/rb.pb %s/p.elf",
                                binPath("elogger").c_str(), Root.c_str(),
                                Root.c_str()));
    ASSERT_EQ(R.ExitCode, 0) << R.Output;
  }

  static void TearDownTestSuite() { removeTree(Root); }

  void SetUp() override {
    Dir = Root + "/" +
          testing::UnitTest::GetInstance()->current_test_info()->name();
    removeTree(Dir);
    ASSERT_FALSE(createDirectories(Dir).isError());
  }

  static std::string Root;
  std::string Dir;
};

std::string StoreE2E::Root;

} // namespace

/// Store-backed emission must be byte-identical with direct emission: the
/// pool is a storage detail, never a semantic one.
TEST_F(StoreE2E, StoreBackedEmissionIsByteIdentical) {
  auto R = runCmd("", formatString("%s -o %s/a.direct %s/ra.pb",
                                   binPath("pinball2elf").c_str(),
                                   Dir.c_str(), Root.c_str()));
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  R = runCmd("", formatString("%s -store %s/pool -store-name ra.elfie "
                              "-o %s/a.store %s/ra.pb",
                              binPath("pinball2elf").c_str(), Dir.c_str(),
                              Dir.c_str(), Root.c_str()));
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("via estore"), std::string::npos) << R.Output;

  auto Direct = readFileBytes(Dir + "/a.direct");
  auto Stored = readFileBytes(Dir + "/a.store");
  ASSERT_TRUE(Direct.hasValue());
  ASSERT_TRUE(Stored.hasValue());
  EXPECT_EQ(*Direct, *Stored);

  // And a later `estore get` reproduces the same bytes from chunks alone.
  R = runCmd("", formatString("%s get %s/pool ra.elfie -o %s/a.get",
                              binPath("estore").c_str(), Dir.c_str(),
                              Dir.c_str()));
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  auto Got = readFileBytes(Dir + "/a.get");
  ASSERT_TRUE(Got.hasValue());
  EXPECT_EQ(*Got, *Direct);
}

/// Two regions of one workload into one pool: the pool must be measurably
/// smaller than the artifacts stored naively (the ISSUE acceptance bar for
/// cross-region dedup).
TEST_F(StoreE2E, CrossRegionEmissionDedups) {
  for (const char *PB : {"ra.pb", "rb.pb"}) {
    auto R = runCmd(
        "", formatString("%s -store %s/pool -o %s/%s.elfie %s/%s",
                         binPath("pinball2elf").c_str(), Dir.c_str(),
                         Dir.c_str(), PB, Root.c_str(), PB));
    ASSERT_EQ(R.ExitCode, 0) << R.Output;
  }
  auto R = runCmd("", formatString("%s stats %s/pool -json",
                                   binPath("estore").c_str(), Dir.c_str()));
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  uint64_t ChunkBytes = jsonInt(R.Output, "chunk_bytes");
  uint64_t ArtifactBytes = jsonInt(R.Output, "artifact_bytes");
  ASSERT_NE(ChunkBytes, ~0ull) << R.Output;
  ASSERT_NE(ArtifactBytes, ~0ull) << R.Output;
  EXPECT_GT(ArtifactBytes, 0u);
  // Measurable dedup: the pool holds strictly less than two full copies.
  EXPECT_LT(ChunkBytes, ArtifactBytes) << R.Output;
}

/// SIGKILL `estore gc` at every early journal write (the fault harness's
/// kill op lands on the pool's own fsync'd gc.journal appends). Invariants
/// after every kill point: reopening recovers; every surviving manifest
/// still loads byte-identical (a live chunk is NEVER lost); the next gc
/// sweeps the garbage fully (a dead chunk never survives recovery + one
/// sweep).
TEST_F(StoreE2E, KillMidGcNeverLosesLiveNeverLeaksDead) {
  // Pool with two live artifacts and garbage: an unreferenced orphan chunk
  // plus a whole retired artifact.
  std::string PoolDir = Dir + "/pool";
  auto Keep1 = readFileBytes(Root + "/p.elf");
  auto Keep2 = readFileBytes(Root + "/ra.pb/image.text");
  ASSERT_TRUE(Keep1.hasValue());
  ASSERT_TRUE(Keep2.hasValue());
  {
    auto S = ChunkStore::open(PoolDir);
    ASSERT_TRUE(S.hasValue()) << S.message();
    ASSERT_TRUE(putArtifact(*S, "keep1", *Keep1).hasValue());
    ASSERT_TRUE(putArtifact(*S, "keep2", *Keep2).hasValue());
    ASSERT_TRUE(putArtifact(*S, "dead", *Keep2).hasValue());
    // Retiring "dead" strands only chunks keep2 does not share — which is
    // none (same bytes), so add distinct orphans too.
    ASSERT_FALSE(S->removeManifest("dead").isError());
    std::vector<uint8_t> Orphan(8192, 0x5a);
    for (size_t I = 0; I < Orphan.size(); ++I)
      Orphan[I] ^= static_cast<uint8_t>(I);
    ASSERT_TRUE(S->put(Orphan).hasValue());
  }

  std::set<std::string> LiveHex;
  {
    auto S = ChunkStore::open(PoolDir, /*Create=*/false);
    ASSERT_TRUE(S.hasValue());
    for (const char *Name : {"keep1", "keep2"}) {
      auto M = S->getManifest(Name);
      ASSERT_TRUE(M.hasValue()) << M.message();
      for (const ChunkRef &C : M->Chunks)
        LiveHex.insert(C.Digest.hex());
    }
  }
  ASSERT_FALSE(LiveHex.empty());

  bool SawKill = false;
  for (int KillAt = 1; KillAt <= 12; ++KillAt) {
    std::string Copy = Dir + formatString("/pool.k%d", KillAt);
    auto R = runCmd("", formatString("cp -r %s %s", PoolDir.c_str(),
                                     Copy.c_str()));
    ASSERT_EQ(R.ExitCode, 0) << R.Output;

    R = runCmd(formatString("ELFIE_FAULT_SPEC=write:%d:kill", KillAt),
               formatString("%s gc %s", binPath("estore").c_str(),
                            Copy.c_str()));
    // Either the kill landed (97) or the sweep finished under it.
    ASSERT_TRUE(R.ExitCode == 97 || R.ExitCode == 0)
        << "kill point " << KillAt << ": " << R.Output;
    SawKill |= R.ExitCode == 97;

    // Reopen (runs crash recovery) and check both invariants.
    auto S = ChunkStore::open(Copy, /*Create=*/false);
    ASSERT_TRUE(S.hasValue()) << "kill " << KillAt << ": " << S.message();
    auto L1 = loadArtifact(*S, "keep1");
    auto L2 = loadArtifact(*S, "keep2");
    ASSERT_TRUE(L1.hasValue()) << "kill " << KillAt << ": " << L1.message();
    ASSERT_TRUE(L2.hasValue()) << "kill " << KillAt << ": " << L2.message();
    EXPECT_EQ(*L1, *Keep1) << "kill " << KillAt;
    EXPECT_EQ(*L2, *Keep2) << "kill " << KillAt;

    // A clean follow-up sweep leaves exactly the live set — no orphaned
    // garbage, no trash litter.
    auto G = S->gc();
    ASSERT_TRUE(G.hasValue()) << "kill " << KillAt << ": " << G.message();
    auto Chunks = S->listChunks();
    ASSERT_TRUE(Chunks.hasValue());
    std::set<std::string> AfterHex;
    for (const Sha256Digest &D : *Chunks)
      AfterHex.insert(D.hex());
    EXPECT_EQ(AfterHex, LiveHex) << "kill " << KillAt;
    auto Trash = listDirectory(Copy + "/trash");
    ASSERT_TRUE(Trash.hasValue());
    EXPECT_TRUE(Trash->empty()) << "kill " << KillAt;

    removeTree(Copy);
  }
  EXPECT_TRUE(SawKill) << "no kill point landed — sweep tested nothing";
}

/// The seeded chunk-corruption campaign: every mutation of the pool must be
/// rejected by every consumer with a typed EFAULT.STORE.* code — zero
/// crashes, zero hangs, zero uncoded failures (the fail-closed acceptance
/// bar). Runs 200 seeds under ELFIE_SLOW_TESTS, 20 by default.
TEST_F(StoreE2E, EfaultChunkCorruptionSweepFailsClosed) {
  std::string PoolDir = Dir + "/pool";
  for (const char *PB : {"ra.pb", "rb.pb"}) {
    auto R = runCmd(
        "", formatString("%s -store %s -o %s/%s.elfie %s/%s",
                         binPath("pinball2elf").c_str(), PoolDir.c_str(),
                         Dir.c_str(), PB, Root.c_str(), PB));
    ASSERT_EQ(R.ExitCode, 0) << R.Output;
  }

  auto R = runCmd("",
                  formatString("%s -runs %d -seed 1 -json -scratch "
                               "%s/scratch %s",
                               binPath("efault").c_str(), FaultRuns,
                               Dir.c_str(), PoolDir.c_str()));
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("\"kind\":\"store\""), std::string::npos)
      << R.Output;
  EXPECT_EQ(jsonInt(R.Output, "failures"), 0u) << R.Output;
  EXPECT_EQ(jsonInt(R.Output, "crashes"), 0u) << R.Output;
  EXPECT_EQ(jsonInt(R.Output, "hangs"), 0u) << R.Output;
  // The rejections actually exercised the store taxonomy: most seeds flip
  // a chunk byte (DIGEST), a minority a manifest byte (SEAL path).
  EXPECT_GT(jsonInt(R.Output, "digest"), 0u) << R.Output;
}

/// The everify STORE.* pass: green on a healthy pool, typed STORE.DIGEST
/// finding (exit 1) once a chunk is corrupted behind the pool's back.
TEST_F(StoreE2E, EverifyStorePassDetectsPoolCorruption) {
  std::string PoolDir = Dir + "/pool";
  auto R = runCmd("", formatString("%s -store %s -store-name r.elfie "
                                   "-o %s/r.elfie %s/ra.pb",
                                   binPath("pinball2elf").c_str(),
                                   PoolDir.c_str(), Dir.c_str(),
                                   Root.c_str()));
  ASSERT_EQ(R.ExitCode, 0) << R.Output;

  R = runCmd("", formatString("%s -store %s -store-name r.elfie "
                              "-pinball %s/ra.pb %s/r.elfie",
                              binPath("everify").c_str(), PoolDir.c_str(),
                              Root.c_str(), Dir.c_str()));
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("STORE.SUMMARY"), std::string::npos) << R.Output;

  // Flip one byte of one chunk behind the pool's back.
  {
    auto S = ChunkStore::open(PoolDir, /*Create=*/false);
    ASSERT_TRUE(S.hasValue());
    auto Chunks = S->listChunks();
    ASSERT_TRUE(Chunks.hasValue());
    ASSERT_FALSE(Chunks->empty());
    std::string Path = S->chunkPath((*Chunks)[Chunks->size() / 2]);
    auto Bytes = readFileBytes(Path);
    ASSERT_TRUE(Bytes.hasValue());
    (*Bytes)[Bytes->size() / 2] ^= 0x10;
    ASSERT_FALSE(writeFile(Path, Bytes->data(), Bytes->size()).isError());
  }

  R = runCmd("", formatString("%s -store %s -store-name r.elfie "
                              "-pinball %s/ra.pb %s/r.elfie",
                              binPath("everify").c_str(), PoolDir.c_str(),
                              Root.c_str(), Dir.c_str()));
  EXPECT_EQ(R.ExitCode, 1) << R.Output;
  EXPECT_NE(R.Output.find("STORE.DIGEST"), std::string::npos) << R.Output;
}
