//===- tests/store/StoreTest.cpp - estore unit tests ----------------------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// The in-process store suite: SHA-256 known-answer vectors (FIPS 180-4),
/// manifest grammar and seal, chunk pool put/dedup/verify semantics, pins
/// and mark-and-sweep GC, scrub/quarantine/repair, ELF-aware chunk
/// boundaries, and the multi-process concurrent-put race. The crash (kill
/// mid-GC) and tool-level sweeps live in StoreE2ETest.cpp.
///
//===----------------------------------------------------------------------===//

#include "store/Artifact.h"
#include "store/ChunkStore.h"
#include "support/FileIO.h"
#include "support/RNG.h"
#include "support/Sha256.h"

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

using namespace elfie;
using namespace elfie::store;

namespace {

std::string tempDir(const std::string &Tag) {
  std::string Dir = testing::TempDir() + "/elfie_store_" + Tag + "." +
                    std::to_string(getpid());
  removeTree(Dir);
  EXPECT_FALSE(createDirectories(Dir).isError());
  return Dir;
}

std::vector<uint8_t> randomBytes(uint64_t Seed, size_t N) {
  RNG Rand(Seed);
  std::vector<uint8_t> Out(N);
  for (size_t I = 0; I < N; ++I)
    Out[I] = static_cast<uint8_t>(Rand.next());
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// SHA-256 known-answer tests (FIPS 180-4 / NIST CAVP vectors)
//===----------------------------------------------------------------------===//

TEST(Sha256, KnownAnswerVectors) {
  // Empty message.
  EXPECT_EQ(sha256Hex(nullptr, 0),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b78"
            "52b855");
  // "abc" (FIPS 180-4 Appendix B.1).
  EXPECT_EQ(sha256Hex("abc", 3),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f2"
            "0015ad");
  // 448-bit two-round message (Appendix B.2).
  std::string M2 = "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnop"
                   "nopq";
  EXPECT_EQ(sha256Hex(M2.data(), M2.size()),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419"
            "db06c1");
  // 896-bit message (NIST CAVP long-message vector).
  std::string M3 = "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghij"
                   "klmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrst"
                   "nopqrstu";
  EXPECT_EQ(sha256Hex(M3.data(), M3.size()),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037"
            "afee9d1");
  // One million 'a' (Appendix B.3) — exercises many compression rounds
  // and the 64-bit length padding path.
  std::string M4(1000000, 'a');
  EXPECT_EQ(sha256Hex(M4.data(), M4.size()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7"
            "112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  std::vector<uint8_t> Data = randomBytes(42, 10000);
  Sha256Digest OneShot = Sha256::digest(Data.data(), Data.size());
  // Feed in awkward piece sizes crossing every block boundary alignment.
  for (size_t Piece : {1u, 7u, 63u, 64u, 65u, 1000u}) {
    Sha256 H;
    for (size_t Off = 0; Off < Data.size(); Off += Piece)
      H.update(Data.data() + Off, std::min(Piece, Data.size() - Off));
    EXPECT_EQ(H.final().hex(), OneShot.hex()) << "piece " << Piece;
  }
}

TEST(Sha256, HexRoundTripAndErrors) {
  Sha256Digest D = Sha256::digest("abc", 3);
  auto Parsed = Sha256Digest::fromHex(D.hex());
  ASSERT_TRUE(Parsed.hasValue());
  EXPECT_EQ(*Parsed, D);

  EXPECT_FALSE(Sha256Digest::fromHex("abc").hasValue());
  EXPECT_FALSE(Sha256Digest::fromHex(std::string(64, 'g')).hasValue());
  auto Bad = Sha256Digest::fromHex(std::string(63, 'a'));
  ASSERT_FALSE(Bad.hasValue());
  EXPECT_NE(Bad.error().str().find("EFAULT.STORE.DIGEST"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Manifest
//===----------------------------------------------------------------------===//

namespace {

Manifest sampleManifest(const std::vector<uint8_t> &Bytes) {
  Manifest M;
  M.Name = "sample.elfie";
  M.Kind = "raw";
  M.Source = "/some/dir/sample.elfie";
  M.Size = Bytes.size();
  M.Total = Sha256::digest(Bytes.data(), Bytes.size());
  uint64_t Off = 0;
  while (Off < Bytes.size()) {
    uint64_t Len = std::min<uint64_t>(4096, Bytes.size() - Off);
    M.Chunks.push_back(
        {Off, Len, Sha256::digest(Bytes.data() + Off, Len)});
    Off += Len;
  }
  return M;
}

} // namespace

TEST(Manifest, RenderParseRoundTrip) {
  auto Bytes = randomBytes(7, 10000);
  Manifest M = sampleManifest(Bytes);
  auto P = Manifest::parse(M.render());
  ASSERT_TRUE(P.hasValue()) << P.message();
  EXPECT_EQ(P->Name, M.Name);
  EXPECT_EQ(P->Kind, M.Kind);
  EXPECT_EQ(P->Source, M.Source);
  EXPECT_EQ(P->Size, M.Size);
  EXPECT_EQ(P->Total, M.Total);
  ASSERT_EQ(P->Chunks.size(), M.Chunks.size());
  for (size_t I = 0; I < M.Chunks.size(); ++I) {
    EXPECT_EQ(P->Chunks[I].Offset, M.Chunks[I].Offset);
    EXPECT_EQ(P->Chunks[I].Size, M.Chunks[I].Size);
    EXPECT_EQ(P->Chunks[I].Digest, M.Chunks[I].Digest);
  }
}

TEST(Manifest, SealCatchesAnyBodyFlip) {
  auto Bytes = randomBytes(8, 5000);
  std::string Text = sampleManifest(Bytes).render();
  // Flip one character in the body (not the seal line) — must be caught.
  std::string Tampered = Text;
  size_t At = Text.find("size 5000");
  ASSERT_NE(At, std::string::npos);
  Tampered[At + 5] = '9'; // size 5000 -> size 9000
  auto P = Manifest::parse(Tampered);
  ASSERT_FALSE(P.hasValue());
  EXPECT_NE(P.error().str().find("EFAULT.STORE.SEAL"), std::string::npos);

  // Truncation loses the seal line entirely.
  auto T2 = Manifest::parse(Text.substr(0, Text.size() / 2));
  ASSERT_FALSE(T2.hasValue());
  EXPECT_NE(T2.error().str().find("EFAULT.STORE"), std::string::npos);
}

TEST(Manifest, TilingValidation) {
  auto Bytes = randomBytes(9, 9000);
  // A helper that re-seals after structural tampering, so the tiling
  // checks (not the seal) do the rejecting.
  auto Reseal = [](Manifest M) {
    std::string T = M.render();
    return Manifest::parse(T);
  };

  Manifest Gap = sampleManifest(Bytes);
  Gap.Chunks.erase(Gap.Chunks.begin() + 1);
  auto P = Reseal(Gap);
  ASSERT_FALSE(P.hasValue());
  EXPECT_NE(P.error().str().find("EFAULT.STORE.MANIFEST"), std::string::npos);

  Manifest Overlap = sampleManifest(Bytes);
  Overlap.Chunks[1].Offset = 100;
  P = Reseal(Overlap);
  ASSERT_FALSE(P.hasValue());

  Manifest Short = sampleManifest(Bytes);
  Short.Chunks.pop_back();
  P = Reseal(Short);
  ASSERT_FALSE(P.hasValue());

  Manifest Overrun = sampleManifest(Bytes);
  Overrun.Chunks.back().Size += 4096;
  P = Reseal(Overrun);
  ASSERT_FALSE(P.hasValue());
}

TEST(Manifest, NameValidation) {
  EXPECT_TRUE(Manifest::validName("region-7.elfie"));
  EXPECT_TRUE(Manifest::validName("a_b.c-d"));
  EXPECT_FALSE(Manifest::validName(""));
  EXPECT_FALSE(Manifest::validName(".hidden"));
  EXPECT_FALSE(Manifest::validName("a/b"));
  EXPECT_FALSE(Manifest::validName("a b"));
  EXPECT_FALSE(Manifest::validName(std::string(256, 'a')));
}

//===----------------------------------------------------------------------===//
// ChunkStore
//===----------------------------------------------------------------------===//

TEST(ChunkStore, PutDedupAndVerify) {
  std::string Dir = tempDir("put");
  auto S = ChunkStore::open(Dir + "/pool");
  ASSERT_TRUE(S.hasValue()) << S.message();

  auto Bytes = randomBytes(1, 4096);
  bool WasNew = false;
  auto D = S->put(Bytes, &WasNew);
  ASSERT_TRUE(D.hasValue()) << D.message();
  EXPECT_TRUE(WasNew);
  EXPECT_TRUE(S->hasChunk(*D));

  // Second put of identical bytes dedups.
  auto D2 = S->put(Bytes, &WasNew);
  ASSERT_TRUE(D2.hasValue());
  EXPECT_EQ(*D, *D2);
  EXPECT_FALSE(WasNew);

  // Verified open returns the bytes.
  auto V = S->openChunk(*D);
  ASSERT_TRUE(V.hasValue()) << V.message();
  ASSERT_EQ(V->File.size(), Bytes.size());
  EXPECT_EQ(0, std::memcmp(V->File.data(), Bytes.data(), Bytes.size()));

  removeTree(Dir);
}

TEST(ChunkStore, OpenChunkFailsClosedOnCorruption) {
  std::string Dir = tempDir("corrupt");
  auto S = ChunkStore::open(Dir + "/pool");
  ASSERT_TRUE(S.hasValue());
  auto Bytes = randomBytes(2, 8192);
  auto D = S->put(Bytes);
  ASSERT_TRUE(D.hasValue());

  // Flip one byte of the chunk file behind the pool's back.
  auto OnDisk = readFileBytes(S->chunkPath(*D));
  ASSERT_TRUE(OnDisk.hasValue());
  (*OnDisk)[100] ^= 0x01;
  ASSERT_FALSE(
      writeFile(S->chunkPath(*D), OnDisk->data(), OnDisk->size())
          .isError());

  auto V = S->openChunk(*D);
  ASSERT_FALSE(V.hasValue());
  EXPECT_NE(V.error().str().find("EFAULT.STORE.DIGEST"), std::string::npos);

  // Absent chunk: typed MISSING.
  auto Other = Sha256::digest("nope", 4);
  auto V2 = S->openChunk(Other);
  ASSERT_FALSE(V2.hasValue());
  EXPECT_NE(V2.error().str().find("EFAULT.STORE.MISSING"), std::string::npos);

  removeTree(Dir);
}

TEST(ChunkStore, ManifestRefusesDanglingChunks) {
  std::string Dir = tempDir("dangling");
  auto S = ChunkStore::open(Dir + "/pool");
  ASSERT_TRUE(S.hasValue());

  auto Bytes = randomBytes(3, 4096);
  Manifest M;
  M.Name = "dangling";
  M.Kind = "raw";
  M.Size = Bytes.size();
  M.Total = Sha256::digest(Bytes.data(), Bytes.size());
  M.Chunks.push_back({0, Bytes.size(), M.Total});

  Error E = S->putManifest(M); // chunk was never put
  ASSERT_TRUE(E.isError());
  EXPECT_NE(E.str().find("EFAULT.STORE.MISSING"), std::string::npos);

  ASSERT_TRUE(S->put(Bytes).hasValue());
  EXPECT_FALSE(S->putManifest(M).isError());
  auto Back = S->getManifest("dangling");
  ASSERT_TRUE(Back.hasValue()) << Back.message();
  EXPECT_EQ(Back->Total, M.Total);

  removeTree(Dir);
}

TEST(ChunkStore, GcSweepsGarbageKeepsReferencedAndPinned) {
  std::string Dir = tempDir("gc");
  auto S = ChunkStore::open(Dir + "/pool");
  ASSERT_TRUE(S.hasValue());

  // One manifested artifact, one pinned orphan chunk, one plain orphan.
  auto A = randomBytes(10, 6000);
  auto M = putArtifact(*S, "kept", A);
  ASSERT_TRUE(M.hasValue()) << M.message();

  auto Pinned = randomBytes(11, 4096);
  auto PD = S->put(Pinned);
  ASSERT_TRUE(PD.hasValue());
  ASSERT_FALSE(S->pin("inflight", *PD).isError());

  auto Orphan = randomBytes(12, 4096);
  auto OD = S->put(Orphan);
  ASSERT_TRUE(OD.hasValue());

  auto G = S->gc();
  ASSERT_TRUE(G.hasValue()) << G.message();
  EXPECT_EQ(G->Swept, 1u); // only the unpinned orphan
  EXPECT_TRUE(S->hasChunk(*PD));
  EXPECT_FALSE(S->hasChunk(*OD));
  auto Loaded = loadArtifact(*S, "kept");
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.message();
  EXPECT_EQ(*Loaded, A);

  // Sealing the pin releases the orphan to the next sweep.
  ASSERT_FALSE(S->sealPins("inflight").isError());
  G = S->gc();
  ASSERT_TRUE(G.hasValue());
  EXPECT_EQ(G->Swept, 1u);
  EXPECT_FALSE(S->hasChunk(*PD));

  // Removing the manifest releases the artifact's chunks.
  ASSERT_FALSE(S->removeManifest("kept").isError());
  G = S->gc();
  ASSERT_TRUE(G.hasValue());
  EXPECT_EQ(G->Swept, M->Chunks.size());
  auto St = S->stats();
  ASSERT_TRUE(St.hasValue());
  EXPECT_EQ(St->Chunks, 0u);

  removeTree(Dir);
}

TEST(ChunkStore, ScrubQuarantinesExactlyTheCorruptChunkWithEvidence) {
  std::string Dir = tempDir("scrub");
  auto S = ChunkStore::open(Dir + "/pool");
  ASSERT_TRUE(S.hasValue());

  auto A = randomBytes(20, 20000);
  auto M = putArtifact(*S, "art", A);
  ASSERT_TRUE(M.hasValue());
  ASSERT_GE(M->Chunks.size(), 3u);

  // Corrupt exactly one chunk.
  Sha256Digest Bad = M->Chunks[1].Digest;
  auto OnDisk = readFileBytes(S->chunkPath(Bad));
  ASSERT_TRUE(OnDisk.hasValue());
  (*OnDisk)[0] ^= 0x80;
  ASSERT_FALSE(writeFile(S->chunkPath(Bad), OnDisk->data(),
                         OnDisk->size())
                   .isError());

  auto R = S->scrub();
  ASSERT_TRUE(R.hasValue()) << R.message();
  ASSERT_EQ(R->Corrupt.size(), 1u);
  EXPECT_EQ(R->Corrupt[0].Expected, Bad);
  EXPECT_TRUE(R->Corrupt[0].Quarantined);
  ASSERT_EQ(R->Corrupt[0].ReferencingManifests.size(), 1u);
  EXPECT_EQ(R->Corrupt[0].ReferencingManifests[0], "art");
  ASSERT_EQ(R->MissingRefs.size(), 1u);
  EXPECT_EQ(R->MissingRefs[0], Bad.hex());

  // Quarantine holds the bytes + evidence; the pool no longer serves it.
  EXPECT_FALSE(S->hasChunk(Bad));
  EXPECT_TRUE(fileExists(Dir + "/pool/quarantine/" + Bad.hex()));
  auto Evidence =
      readFileText(Dir + "/pool/quarantine/" + Bad.hex() + ".evidence.txt");
  ASSERT_TRUE(Evidence.hasValue());
  EXPECT_NE(Evidence->find("expected " + Bad.hex()), std::string::npos);
  EXPECT_NE(Evidence->find("art"), std::string::npos);

  // loadArtifact fails closed with the typed code.
  auto L = loadArtifact(*S, "art");
  ASSERT_FALSE(L.hasValue());
  EXPECT_NE(L.error().str().find("EFAULT.STORE.MISSING"), std::string::npos);

  // A second scrub is clean apart from the still-missing reference.
  auto R2 = S->scrub();
  ASSERT_TRUE(R2.hasValue());
  EXPECT_TRUE(R2->Corrupt.empty());
  EXPECT_EQ(R2->MissingRefs.size(), 1u);

  removeTree(Dir);
}

TEST(ChunkStore, RepairRestoresFromReplicaAndVerifies) {
  std::string Dir = tempDir("repair");
  auto S = ChunkStore::open(Dir + "/pool");
  auto Replica = ChunkStore::open(Dir + "/replica");
  ASSERT_TRUE(S.hasValue());
  ASSERT_TRUE(Replica.hasValue());

  auto A = randomBytes(30, 16000);
  auto M = putArtifact(*S, "art", A);
  ASSERT_TRUE(M.hasValue());
  ASSERT_TRUE(putArtifact(*Replica, "art", A).hasValue());

  // Corrupt one chunk in place (no scrub first: repair must also find
  // present-but-corrupt chunks) and delete another outright.
  Sha256Digest C0 = M->Chunks[0].Digest;
  Sha256Digest C1 = M->Chunks[1].Digest;
  auto OnDisk = readFileBytes(S->chunkPath(C0));
  ASSERT_TRUE(OnDisk.hasValue());
  (*OnDisk)[1] ^= 0x40;
  ASSERT_FALSE(writeFile(S->chunkPath(C0), OnDisk->data(),
                         OnDisk->size())
                   .isError());
  removeFile(S->chunkPath(C1));

  auto R = S->repair({Dir + "/replica"});
  ASSERT_TRUE(R.hasValue()) << R.message();
  EXPECT_EQ(R->Restored, 2u);
  EXPECT_EQ(R->Unrepairable, 0u);

  auto L = loadArtifact(*S, "art");
  ASSERT_TRUE(L.hasValue()) << L.message();
  EXPECT_EQ(*L, A);

  // A corrupt replica can never propagate: poison the replica's copy of
  // C0, corrupt ours again, and repair must report unrepairable rather
  // than admit bad bytes.
  auto RepBytes = readFileBytes(Replica->chunkPath(C0));
  ASSERT_TRUE(RepBytes.hasValue());
  (*RepBytes)[2] ^= 0x20;
  ASSERT_FALSE(writeFile(Replica->chunkPath(C0), RepBytes->data(),
                         RepBytes->size())
                   .isError());
  removeFile(S->chunkPath(C0));
  removeFile(Dir + "/pool/quarantine/" + C0.hex());
  removeFile(Dir + "/pool/quarantine/" + C0.hex() + ".evidence.txt");

  R = S->repair({Dir + "/replica"});
  ASSERT_TRUE(R.hasValue());
  EXPECT_EQ(R->Restored, 0u);
  EXPECT_EQ(R->Unrepairable, 1u);
  ASSERT_EQ(R->UnrepairableDigests.size(), 1u);
  EXPECT_EQ(R->UnrepairableDigests[0], C0.hex());

  removeTree(Dir);
}

TEST(ChunkStore, ConcurrentPutFromTwoProcessesRaceBenignly) {
  // The satellite guarantee: two processes putting the same bytes at the
  // same instant both succeed and leave exactly one chunk file. Forked
  // children maximize overlap by spinning until a shared start file
  // appears.
  std::string Dir = tempDir("race");
  std::string PoolDir = Dir + "/pool";
  {
    auto S = ChunkStore::open(PoolDir);
    ASSERT_TRUE(S.hasValue());
  }
  auto Bytes = randomBytes(50, 64 * 1024);
  std::string Go = Dir + "/go";

  std::vector<pid_t> Kids;
  for (int I = 0; I < 4; ++I) {
    pid_t Pid = fork();
    ASSERT_GE(Pid, 0);
    if (Pid == 0) {
      while (!fileExists(Go))
        ; // spin: all children start the put as close together as possible
      auto S = ChunkStore::open(PoolDir, /*Create=*/false);
      if (!S.hasValue())
        _exit(2);
      for (int Round = 0; Round < 20; ++Round) {
        auto D = S->put(Bytes);
        if (!D.hasValue())
          _exit(3);
        auto V = S->openChunk(*D);
        if (!V.hasValue())
          _exit(4);
      }
      _exit(0);
    }
    Kids.push_back(Pid);
  }
  ASSERT_FALSE(writeFileText(Go, "go").isError());
  for (pid_t Pid : Kids) {
    int Status = 0;
    ASSERT_EQ(waitpid(Pid, &Status, 0), Pid);
    ASSERT_TRUE(WIFEXITED(Status));
    EXPECT_EQ(WEXITSTATUS(Status), 0);
  }

  auto S = ChunkStore::open(PoolDir, /*Create=*/false);
  ASSERT_TRUE(S.hasValue());
  auto Chunks = S->listChunks();
  ASSERT_TRUE(Chunks.hasValue());
  EXPECT_EQ(Chunks->size(), 1u); // exactly one chunk file, no temp litter
  auto V = S->openChunk(Sha256::digest(Bytes.data(), Bytes.size()));
  EXPECT_TRUE(V.hasValue()) << V.message();

  removeTree(Dir);
}

//===----------------------------------------------------------------------===//
// Artifact chunking and reassembly
//===----------------------------------------------------------------------===//

TEST(Artifact, BoundariesTileExactly) {
  for (size_t N : {0u, 1u, 4095u, 4096u, 4097u, 100000u}) {
    auto Bytes = randomBytes(N + 1, N);
    auto B = chunkBoundaries(Bytes, "raw");
    uint64_t Next = 0;
    for (auto [Off, Len] : B) {
      EXPECT_EQ(Off, Next);
      EXPECT_GT(Len, 0u);
      Next = Off + Len;
    }
    EXPECT_EQ(Next, N);
  }
}

TEST(Artifact, PutLoadRoundTripAndEmpty) {
  std::string Dir = tempDir("artifact");
  auto S = ChunkStore::open(Dir + "/pool");
  ASSERT_TRUE(S.hasValue());

  auto A = randomBytes(60, 33333);
  auto M = putArtifact(*S, "a.bin", A, "/src/a.bin");
  ASSERT_TRUE(M.hasValue()) << M.message();
  EXPECT_EQ(M->Kind, "raw");
  EXPECT_EQ(M->Source, "/src/a.bin");
  auto L = loadArtifact(*S, "a.bin");
  ASSERT_TRUE(L.hasValue());
  EXPECT_EQ(*L, A);

  // Ingestion pins are retired once the manifest is the GC root.
  auto Pins = S->activePins();
  ASSERT_TRUE(Pins.hasValue());
  EXPECT_TRUE(Pins->empty());

  // Zero-byte artifact round-trips (no chunks, manifest only).
  std::vector<uint8_t> Empty;
  auto ME = putArtifact(*S, "empty", Empty);
  ASSERT_TRUE(ME.hasValue()) << ME.message();
  auto LE = loadArtifact(*S, "empty");
  ASSERT_TRUE(LE.hasValue()) << LE.message();
  EXPECT_TRUE(LE->empty());

  removeTree(Dir);
}

TEST(Artifact, MaterializeIsByteIdentical) {
  std::string Dir = tempDir("materialize");
  auto S = ChunkStore::open(Dir + "/pool");
  ASSERT_TRUE(S.hasValue());
  auto A = randomBytes(70, 12345);
  ASSERT_TRUE(putArtifact(*S, "a", A).hasValue());
  ASSERT_FALSE(materializeArtifact(*S, "a", Dir + "/out").isError());
  auto Back = readFileBytes(Dir + "/out");
  ASSERT_TRUE(Back.hasValue());
  EXPECT_EQ(*Back, A);
  removeTree(Dir);
}

TEST(Artifact, CrossArtifactDedupSharesIdenticalPages) {
  std::string Dir = tempDir("dedup");
  auto S = ChunkStore::open(Dir + "/pool");
  ASSERT_TRUE(S.hasValue());

  // Two artifacts sharing 12 of 16 pages (aligned), differing in the rest
  // — the shape of two region ELFies of one workload.
  auto Shared = randomBytes(80, 12 * 4096);
  auto A = Shared, B = Shared;
  auto TailA = randomBytes(81, 4 * 4096);
  auto TailB = randomBytes(82, 4 * 4096);
  A.insert(A.end(), TailA.begin(), TailA.end());
  B.insert(B.end(), TailB.begin(), TailB.end());

  ASSERT_TRUE(putArtifact(*S, "a", A).hasValue());
  ASSERT_TRUE(putArtifact(*S, "b", B).hasValue());
  auto St = S->stats();
  ASSERT_TRUE(St.hasValue());
  EXPECT_EQ(St->ArtifactBytes, A.size() + B.size());
  // Pool carries one copy of the shared pages: 12 + 4 + 4 = 20 chunks,
  // not 32.
  EXPECT_EQ(St->ChunkBytes, (12 + 4 + 4) * 4096u);
  EXPECT_GT(St->ArtifactBytes, St->ChunkBytes);

  removeTree(Dir);
}
