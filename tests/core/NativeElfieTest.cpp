//===- tests/core/NativeElfieTest.cpp - run real ELFies -------------------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// The headline differential tests: pinball2elf emits a native x86-64
/// executable, the test runs it as a subprocess, and the observable
/// behaviour (stdout bytes, exit status, perfle instruction counts) must
/// match the EVM execution of the same region.
///
//===----------------------------------------------------------------------===//

#include "core/Pinball2Elf.h"

#include "../common/Subprocess.h"
#include "../common/TestHelpers.h"
#include "support/Format.h"

#include <gtest/gtest.h>

using namespace elfie;
using namespace elfie::core;
using pinball::LoggerOptions;
using test::capture;
using test::computeProgram;
using test::runProcess;

namespace {

std::string tempDir(const std::string &Name) {
  std::string D = testing::TempDir() + "/elfie_native_" + Name;
  removeTree(D);
  createDirectories(D);
  return D;
}

/// Extracts "elfie-perf: thread T retired N cycles C" lines.
struct PerfLine {
  uint64_t Thread, Retired, Cycles;
};
std::vector<PerfLine> parsePerf(const std::string &Stderr) {
  std::vector<PerfLine> Out;
  for (const std::string &Line : splitString(Stderr, '\n')) {
    if (!startsWith(Line, "elfie-perf: thread "))
      continue;
    PerfLine P{};
    if (sscanf(Line.c_str(),
               "elfie-perf: thread %llu retired %llu cycles %llu",
               reinterpret_cast<unsigned long long *>(&P.Thread),
               reinterpret_cast<unsigned long long *>(&P.Retired),
               reinterpret_cast<unsigned long long *>(&P.Cycles)) == 3)
      Out.push_back(P);
  }
  return Out;
}

TEST(NativeElfie, RunsRegionToCompletionAndMatchesOutput) {
  std::string Dir = tempDir("basic");
  // Region from mid-program through program exit: the ELFie re-executes
  // the remainder natively, so its stdout and exit code must match the
  // recorded region exactly.
  auto PB = capture(Dir, computeProgram(), 5000, 100000000,
                    LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();
  ASSERT_FALSE(PB->OutputLog.empty()) << "region should cover the output";

  Pinball2ElfOptions Opts;
  Opts.Perfle = true;
  std::string Exe = Dir + "/region.elfie";
  Error E = pinballToElfFile(*PB, Opts, Exe);
  ASSERT_FALSE(E.isError()) << E.message();

  auto R = runProcess(Exe);
  ASSERT_TRUE(R.Started) << R.Error;
  ASSERT_TRUE(R.Exited) << "killed by signal " << R.TermSignal
                        << " stderr: " << R.Stderr;
  EXPECT_EQ(R.ExitCode, 0) << R.Stderr;
  EXPECT_EQ(R.Stdout, PB->OutputLog)
      << "native re-execution must reproduce the recorded region output";

  // perfle: thread 0 retired exactly the pinball's budget.
  auto Perf = parsePerf(R.Stderr);
  ASSERT_EQ(Perf.size(), 1u) << R.Stderr;
  EXPECT_EQ(Perf[0].Thread, 0u);
  EXPECT_EQ(Perf[0].Retired, PB->Threads[0].RegionIcount);
  EXPECT_GT(Perf[0].Cycles, 0u);
  removeTree(Dir);
}

TEST(NativeElfie, GracefulExitAtInstructionBudget) {
  std::string Dir = tempDir("budget");
  // Mid-program region: the countdown must stop the thread after exactly
  // the captured number of instructions (paper §II-C1).
  const uint64_t Len = 12345;
  auto PB = capture(Dir, computeProgram(), 3000, Len, LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();
  ASSERT_EQ(PB->Threads[0].RegionIcount, Len);

  Pinball2ElfOptions Opts;
  Opts.Perfle = true;
  std::string Exe = Dir + "/region.elfie";
  ASSERT_FALSE(pinballToElfFile(*PB, Opts, Exe).isError());

  auto R = runProcess(Exe);
  ASSERT_TRUE(R.Started) << R.Error;
  ASSERT_TRUE(R.Exited) << "signal " << R.TermSignal << " " << R.Stderr;
  EXPECT_EQ(R.ExitCode, 0);
  auto Perf = parsePerf(R.Stderr);
  ASSERT_EQ(Perf.size(), 1u) << R.Stderr;
  EXPECT_EQ(Perf[0].Retired, Len)
      << "software retired-instruction counter must stop at the budget";
  removeTree(Dir);
}

TEST(NativeElfie, VerboseBannerAndSymbols) {
  std::string Dir = tempDir("banner");
  auto PB = capture(Dir, computeProgram(), 1000, 2000, LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue());
  PB->Meta.ProgramName = "compute";

  Pinball2ElfOptions Opts;
  Opts.Verbose = true;
  auto Image = pinballToElf(*PB, Opts);
  ASSERT_TRUE(Image.hasValue()) << Image.message();

  // Inspectable with our own ELF reader: sections and symbols per §II-B5.
  auto Reader = elf::ELFReader::parse(*Image);
  ASSERT_TRUE(Reader.hasValue()) << Reader.message();
  EXPECT_EQ(Reader->machine(), elf::EM_X86_64);
  EXPECT_NE(Reader->findSymbol("elfie_on_start"), nullptr);
  EXPECT_NE(Reader->findSymbol("elfie_on_thread_start"), nullptr);
  EXPECT_NE(Reader->findSymbol("elfie_on_exit"), nullptr);
  EXPECT_NE(Reader->findSymbol(".t0.ctx"), nullptr);
  EXPECT_NE(Reader->findSymbol(".t0.r7"), nullptr);
  const auto *ICount = Reader->findSymbol(".t0.icount");
  ASSERT_NE(ICount, nullptr);
  EXPECT_EQ(ICount->Value, 2000u);
  EXPECT_NE(Reader->findSection(".elfie.text"), nullptr);
  EXPECT_NE(Reader->findSection(".elfie.data"), nullptr);

  std::string Exe = Dir + "/region.elfie";
  ASSERT_FALSE(pinballToElfFile(*PB, Opts, Exe).isError());
  auto R = runProcess(Exe);
  ASSERT_TRUE(R.Started);
  ASSERT_TRUE(R.Exited) << "signal " << R.TermSignal;
  EXPECT_NE(R.Stderr.find("elfie: compute region @1000 len 2000"),
            std::string::npos)
      << R.Stderr;
  removeTree(Dir);
}

TEST(NativeElfie, StackPagesAreStashedAndRemapped) {
  std::string Dir = tempDir("stack");
  // Program that actively uses its stack in the region.
  std::string Src = R"(
_start:
  ldi  r9, 0
  ldi  r8, 200
outer:
  addi sp, sp, -64
  ldi  r2, 0
  ldi  r3, 8
fill:
  shli r4, r2, 3
  add  r4, r4, sp
  add  r5, r2, r9
  st8  r5, 0(r4)
  addi r2, r2, 1
  blt  r2, r3, fill
  ld8  r6, 0(sp)
  ld8  r7, 56(sp)
  add  r9, r9, r6
  add  r9, r9, r7
  addi sp, sp, 64
  addi r8, r8, -1
  bnez r8, outer
  la   r2, out
  st8  r9, 0(r2)
  ldi  r7, 2
  ldi  r1, 1
  ldi  r3, 8
  syscall
  ldi  r7, 1
  ldi  r1, 0
  syscall
  .data
  .align 8
out: .space 8
)";
  auto PB = capture(Dir, Src, 500, 100000000, LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();
  ASSERT_EQ(PB->OutputLog.size(), 8u);

  // The emitted image must have a stash section and no PT_LOAD covering
  // the guest stack range (the loader must not map it: §II-B3).
  Pinball2ElfOptions Opts;
  auto Image = pinballToElf(*PB, Opts);
  ASSERT_TRUE(Image.hasValue()) << Image.message();
  auto Reader = elf::ELFReader::parse(*Image);
  ASSERT_TRUE(Reader.hasValue());
  ASSERT_NE(Reader->findSection(".elfie.stash"), nullptr);
  for (const auto &Seg : Reader->segments()) {
    if (Seg.Type != elf::PT_LOAD)
      continue;
    bool InGuestStack = Seg.VAddr >= PB->Meta.StackBase &&
                        Seg.VAddr < PB->Meta.StackTop;
    EXPECT_FALSE(InGuestStack)
        << "checkpointed stack pages must not be loader-mapped";
  }

  std::string Exe = Dir + "/region.elfie";
  ASSERT_FALSE(pinballToElfFile(*PB, Opts, Exe).isError());
  auto R = runProcess(Exe);
  ASSERT_TRUE(R.Started);
  ASSERT_TRUE(R.Exited) << "signal " << R.TermSignal << " " << R.Stderr;
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_EQ(R.Stdout, PB->OutputLog)
      << "stack contents must survive the stash+remap";
  removeTree(Dir);
}

TEST(NativeElfie, WriteSyscallReexecutesNatively) {
  std::string Dir = tempDir("write");
  // Region fully covers a stdout write: the ELFie re-executes it for real.
  std::string Src = R"(
_start:
  ldi r9, 3000
pad:
  addi r9, r9, -1
  bnez r9, pad
  ldi r7, 2
  ldi r1, 1
  la  r2, msg
  ldi r3, 14
  syscall
  ldi r7, 1
  ldi r1, 0
  syscall
  .data
msg: .ascii "hello, native\n"
)";
  auto PB = capture(Dir, Src, 100, 100000000, LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();
  std::string Exe = Dir + "/region.elfie";
  ASSERT_FALSE(pinballToElfFile(*PB, Pinball2ElfOptions(), Exe).isError());
  auto R = runProcess(Exe);
  ASSERT_TRUE(R.Exited) << "signal " << R.TermSignal << " " << R.Stderr;
  EXPECT_EQ(R.Stdout, "hello, native\n");
  removeTree(Dir);
}

TEST(NativeElfie, MultiThreadedElfieRunsToCompletion) {
  std::string Dir = tempDir("mt");
  // Capture mid-parallel-phase; disable the budget so the program runs to
  // its natural end: all 8 threads are recreated natively and the spin
  // barriers must work under real concurrency.
  auto PB = capture(Dir, test::multiThreadProgram(8, 4, 2000), 40000,
                    100000000, LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();
  ASSERT_EQ(PB->Threads.size(), 8u);

  Pinball2ElfOptions Opts;
  Opts.EmitICountChecks = false; // run the remainder of the program
  std::string Exe = Dir + "/region.elfie";
  ASSERT_FALSE(pinballToElfFile(*PB, Opts, Exe).isError());
  auto R = runProcess(Exe);
  ASSERT_TRUE(R.Started);
  ASSERT_TRUE(R.Exited) << "signal " << R.TermSignal << " " << R.Stderr;
  // The program writes the final counter (8 threads * 4 rounds * 2000) as
  // 8 little-endian bytes before exiting.
  ASSERT_EQ(R.Stdout.size(), 8u) << R.Stderr;
  uint64_t Total;
  memcpy(&Total, R.Stdout.data(), 8);
  EXPECT_EQ(Total, 8u * 4 * 2000);
  EXPECT_EQ(R.ExitCode, static_cast<int>((8 * 4 * 2000) & 0xff));
  removeTree(Dir);
}

TEST(NativeElfie, MultiThreadedGracefulExitWithBudgets) {
  std::string Dir = tempDir("mtbudget");
  auto PB = capture(Dir, test::multiThreadProgram(8, 4, 2000), 40000, 24000,
                    LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();
  ASSERT_EQ(PB->Threads.size(), 8u);

  Pinball2ElfOptions Opts;
  Opts.Perfle = true;
  std::string Exe = Dir + "/region.elfie";
  ASSERT_FALSE(pinballToElfFile(*PB, Opts, Exe).isError());
  auto R = runProcess(Exe);
  ASSERT_TRUE(R.Started);
  ASSERT_TRUE(R.Exited) << "signal " << R.TermSignal << " " << R.Stderr;
  EXPECT_EQ(R.ExitCode, 0);
  // Every thread reports; each retired exactly its budget (spin loops may
  // place the *cut* differently than the log, but the budget mechanism
  // stops each thread at its recorded count).
  auto Perf = parsePerf(R.Stderr);
  ASSERT_EQ(Perf.size(), 8u) << R.Stderr;
  uint64_t Sum = 0;
  for (const auto &P : Perf)
    Sum += P.Retired;
  EXPECT_EQ(Sum, 24000u);
  removeTree(Dir);
}

TEST(NativeElfie, SysstateDescriptorPreopen) {
  std::string Dir = tempDir("sysstate");
  std::string Data(256, '\0');
  for (size_t I = 0; I < Data.size(); ++I)
    Data[I] = static_cast<char>(7 * I + 1);
  writeFileText(Dir + "/data.bin", Data);
  vm::VMConfig Config;
  Config.FsRoot = Dir;
  // Region covers reads through a descriptor opened before the region,
  // plus the program end (sum is exit code & output).
  std::string Src = R"(
_start:
  ldi  r7, 4
  la   r1, path
  ldi  r2, 0
  ldi  r3, 0
  syscall
  mov  r9, r1
  ldi  r2, 0
pad:
  addi r2, r2, 1
  slti r3, r2, 4000
  bnez r3, pad
rloop:
  ldi  r7, 3
  mov  r1, r9
  la   r2, buf
  ldi  r3, 4
  syscall
  beqz r1, done
  la   r2, buf
  ld1  r3, 0(r2)
  add  r10, r10, r3
  addi r11, r11, 1
  slti r3, r11, 32
  bnez r3, rloop
done:
  la   r2, out
  st8  r10, 0(r2)
  ldi  r7, 2
  ldi  r1, 1
  ldi  r3, 8
  syscall
  ldi  r7, 1
  mov  r1, r10
  syscall
  .data
path: .asciz "data.bin"
  .align 8
buf:  .space 8
out:  .space 8
)";
  auto PB = capture(Dir, Src, 12200, 100000000, LoggerOptions::fat(),
                    Config);
  ASSERT_TRUE(PB.hasValue()) << PB.message();
  ASSERT_EQ(PB->OutputLog.size(), 8u);

  // Produce the sysstate directory and embed the preopen table.
  auto State = sysstate::analyze(*PB);
  ASSERT_EQ(State.Files.size(), 1u);
  EXPECT_TRUE(State.Files[0].OpenedBeforeRegion);
  EXPECT_EQ(State.Files[0].ProxyName, "FD_3");
  std::string SSDir = Dir + "/region.pb.sysstate";
  ASSERT_FALSE(sysstate::writeSysstateDir(State, SSDir).isError());

  Pinball2ElfOptions Opts;
  Opts.EmbedSysstate = true;
  std::string Exe = Dir + "/region.elfie";
  ASSERT_FALSE(pinballToElfFile(*PB, Opts, Exe).isError());

  // Run in the sysstate workdir: FD_3 must be preopened and dup()ed so
  // the re-executed reads return the recorded data (paper §II-C2).
  auto R = runProcess(Exe, SSDir + "/workdir");
  ASSERT_TRUE(R.Started);
  ASSERT_TRUE(R.Exited) << "signal " << R.TermSignal << " " << R.Stderr;
  EXPECT_EQ(R.Stdout, PB->OutputLog)
      << "reads through the preopened descriptor must reproduce the data";

  // Negative control: without the workdir the reads fail and the output
  // diverges.
  auto R2 = runProcess(Exe, Dir);
  if (R2.Exited)
    EXPECT_NE(R2.Stdout, PB->OutputLog);
  removeTree(Dir);
}

TEST(NativeElfie, DivergenceHitsAbortStub) {
  std::string Dir = tempDir("abort");
  // After the region, the program jumps through a pointer into a data
  // page. With the budget disabled, the native ELFie runs past the region
  // end and must die in the abort stub (ungraceful exit, §II-C1).
  std::string Src = R"(
_start:
  ldi  r9, 5000
loop:
  addi r9, r9, -1
  bnez r9, loop
  la   r1, not_code
  jalr r0, r1, 0
  halt
  .data
  .align 8
not_code: .quad 0
)";
  auto PB = capture(Dir, Src, 100, 9000, LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();

  Pinball2ElfOptions Opts;
  Opts.EmitICountChecks = false;
  std::string Exe = Dir + "/region.elfie";
  ASSERT_FALSE(pinballToElfFile(*PB, Opts, Exe).isError());
  auto R = runProcess(Exe);
  ASSERT_TRUE(R.Started);
  ASSERT_TRUE(R.Exited) << "signal " << R.TermSignal;
  EXPECT_EQ(R.ExitCode, 127);
  EXPECT_NE(R.Stderr.find("diverged"), std::string::npos) << R.Stderr;
  removeTree(Dir);
}

TEST(NativeElfie, MissingPageIsUngracefulExit) {
  std::string Dir = tempDir("segv");
  auto PB = capture(Dir, computeProgram(), 5000, 100000000,
                    LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();
  // Failure injection: drop the data page holding `table` from the image.
  uint64_t TableAddr = 0;
  for (const auto &P : PB->Image)
    if (!(P.Perm & vm::PermExec) && P.Addr >= 0x10000 &&
        P.Addr < PB->Meta.StackBase) {
      TableAddr = P.Addr;
      break;
    }
  ASSERT_NE(TableAddr, 0u);
  PB->Image.erase(std::remove_if(PB->Image.begin(), PB->Image.end(),
                                 [&](const pinball::PageRecord &P) {
                                   return P.Addr == TableAddr;
                                 }),
                  PB->Image.end());

  std::string Exe = Dir + "/region.elfie";
  ASSERT_FALSE(
      pinballToElfFile(*PB, Pinball2ElfOptions(), Exe).isError());
  auto R = runProcess(Exe);
  ASSERT_TRUE(R.Started);
  // Accessing the missing page is an ungraceful exit — but a *contained*
  // one: the runtime's SIGSEGV handler turns the raw signal into the
  // documented exit code and a structured elfie-fault report on stderr.
  EXPECT_TRUE(R.Exited);
  EXPECT_EQ(R.ExitCode, 126);
  EXPECT_NE(R.Stderr.find("elfie-fault: signal 11"), std::string::npos)
      << R.Stderr;
  EXPECT_NE(R.Stderr.find(" addr "), std::string::npos) << R.Stderr;
  EXPECT_NE(R.Stderr.find(" slot "), std::string::npos) << R.Stderr;
  removeTree(Dir);
}

TEST(NativeElfie, WatchdogContainsRunawayRegion) {
  std::string Dir = tempDir("watchdog");
  // A region that spins forever once the graceful-exit countdown is
  // disabled: only the alarm(2) watchdog can end it.
  std::string Src = R"(
_start:
  ldi  r9, 0
spin:
  addi r9, r9, 1
  jmp  spin
)";
  auto PB = capture(Dir, Src, 100, 9000, LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();

  Pinball2ElfOptions Opts;
  Opts.EmitICountChecks = false; // nothing ends the region gracefully
  Opts.WatchdogSecs = 1;
  std::string Exe = Dir + "/region.elfie";
  ASSERT_FALSE(pinballToElfFile(*PB, Opts, Exe).isError());
  auto R = runProcess(Exe);
  ASSERT_TRUE(R.Started);
  ASSERT_TRUE(R.Exited) << "signal " << R.TermSignal;
  EXPECT_EQ(R.ExitCode, 125);
  EXPECT_NE(R.Stderr.find("elfie-fault: signal 14"), std::string::npos)
      << R.Stderr;
  removeTree(Dir);
}

TEST(NativeElfie, RejectsRegularPinball) {
  std::string Dir = tempDir("reject");
  auto PB = capture(Dir, computeProgram(), 1000, 1000, LoggerOptions());
  ASSERT_TRUE(PB.hasValue());
  auto Image = pinballToElf(*PB, Pinball2ElfOptions());
  ASSERT_FALSE(Image.hasValue());
  EXPECT_NE(Image.message().find("fat pinball"), std::string::npos);
  removeTree(Dir);
}

TEST(NativeElfie, LayoutDescription) {
  std::string Dir = tempDir("layout");
  auto PB = capture(Dir, computeProgram(), 1000, 1000, LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue());
  std::string Script = describeLayout(*PB, Pinball2ElfOptions());
  EXPECT_NE(Script.find("SECTIONS"), std::string::npos);
  EXPECT_NE(Script.find(".text.0x10000"), std::string::npos);
  EXPECT_NE(Script.find("stashed + remapped"), std::string::npos);
  EXPECT_NE(Script.find(".elfie.text"), std::string::npos);
  removeTree(Dir);
}

} // namespace
