//===- tests/core/GuestElfieTest.cpp - guest-target ELFies ----------------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// Guest-target ELFies are EG64 executables that binary-driven tools run
/// unmodified. The tests load them into a fresh EVM (no Pin-style setup,
/// no replay machinery — exactly how a simulator would consume them) and
/// check that execution continues from the captured state.
///
//===----------------------------------------------------------------------===//

#include "core/Pinball2Elf.h"

#include "../common/TestHelpers.h"

#include <gtest/gtest.h>

using namespace elfie;
using namespace elfie::core;
using pinball::LoggerOptions;
using test::capture;
using test::computeProgram;

namespace {

std::string tempDir(const std::string &Name) {
  std::string D = testing::TempDir() + "/elfie_guest_" + Name;
  removeTree(D);
  createDirectories(D);
  return D;
}

/// Loads a guest ELFie into a fresh VM and starts its entry thread (an
/// ELFie brings its own state; no argv/stack setup).
std::unique_ptr<vm::VM> loadElfie(const std::vector<uint8_t> &Image,
                                  std::shared_ptr<std::string> Out) {
  auto Reader = elf::ELFReader::parse(Image);
  EXPECT_TRUE(Reader.hasValue()) << Reader.message();
  vm::VMConfig Config;
  if (Out)
    Config.StdoutSink = [Out](const char *P, size_t N) {
      Out->append(P, N);
    };
  auto M = std::make_unique<vm::VM>(Config);
  Error E = M->loadELF(*Reader);
  EXPECT_FALSE(E.isError()) << E.message();
  vm::ThreadState T;
  T.PC = M->entry();
  M->spawnThread(T);
  return M;
}

TEST(GuestElfie, ResumesAndMatchesRecordedOutput) {
  std::string Dir = tempDir("resume");
  auto PB = capture(Dir, computeProgram(), 5000, 100000000,
                    LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();
  Pinball2ElfOptions Opts;
  Opts.TargetKind = Pinball2ElfOptions::Target::Guest;
  auto Image = pinballToElf(*PB, Opts);
  ASSERT_TRUE(Image.hasValue()) << Image.message();

  auto Reader = elf::ELFReader::parse(*Image);
  ASSERT_TRUE(Reader.hasValue());
  EXPECT_EQ(Reader->machine(), elf::EM_EG64);

  auto Out = std::make_shared<std::string>();
  auto M = loadElfie(*Image, Out);
  auto R = M->run(10000000);
  EXPECT_EQ(R.Reason, vm::StopReason::AllExited)
      << (R.Reason == vm::StopReason::Faulted ? R.FaultInfo.Message : "");
  EXPECT_EQ(*Out, PB->OutputLog);
  EXPECT_EQ(R.ExitCode, 0);
  removeTree(Dir);
}

TEST(GuestElfie, StartupRestoresFullRegisterState) {
  std::string Dir = tempDir("regs");
  const uint64_t Start = 7000;
  // Include FP state in the region by running the FP-heavy program first.
  std::string Src = R"(
_start:
  ldi  r9, 1000
  ldi  r1, 3
  fcvtid f1, r1
  ldi  r1, 7
  fcvtid f2, r1
loop:
  fadd f3, f1, f2
  fdiv f4, f3, f2
  fmul f1, f4, f1
  fsqrt f1, f1
  addi r9, r9, -1
  addi r2, r2, 3
  addi r3, r3, 5
  bnez r9, loop
  fcvtdi r1, f1
  ldi  r7, 1
  syscall
)";
  auto PB = capture(Dir, Src, Start, 100, LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();

  Pinball2ElfOptions Opts;
  Opts.TargetKind = Pinball2ElfOptions::Target::Guest;
  Opts.EmitMarkers = false;
  auto Image = pinballToElf(*PB, Opts);
  ASSERT_TRUE(Image.hasValue()) << Image.message();

  // Run only the startup: stop at the captured pc, then compare the whole
  // register file against the pinball.
  auto M = loadElfie(*Image, nullptr);
  // Snapshot the register file the moment control first reaches the
  // captured pc (onInstruction fires before execution).
  class StopAtPC : public vm::Observer {
  public:
    vm::VM *M = nullptr;
    uint64_t Target = 0;
    bool Hit = false;
    vm::ThreadState Snapshot;
    void onInstruction(const vm::ThreadState &T, uint64_t PC,
                       const isa::Inst &) override {
      if (PC == Target && !Hit) {
        Hit = true;
        Snapshot = T;
        M->requestStop();
      }
    }
  } Obs;
  Obs.M = M.get();
  Obs.Target = PB->Threads[0].PC;
  M->setObserver(&Obs);
  auto R = M->run(100000);
  ASSERT_EQ(R.Reason, vm::StopReason::Stopped);
  ASSERT_TRUE(Obs.Hit);
  EXPECT_EQ(Obs.Snapshot.PC, PB->Threads[0].PC);
  for (unsigned I = 1; I < isa::NumGPRs; ++I)
    EXPECT_EQ(Obs.Snapshot.GPR[I], PB->Threads[0].GPR[I]) << "GPR " << I;
  for (unsigned I = 0; I < isa::NumFPRs; ++I)
    EXPECT_EQ(Obs.Snapshot.FPR[I], PB->Threads[0].FPR[I]) << "FPR " << I;
  removeTree(Dir);
}

TEST(GuestElfie, MarkerVisibleToTools) {
  std::string Dir = tempDir("marker");
  auto PB = capture(Dir, computeProgram(), 2000, 1000, LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue());
  Pinball2ElfOptions Opts;
  Opts.TargetKind = Pinball2ElfOptions::Target::Guest;
  Opts.MarkerType = isa::MarkerKind::Sniper;
  Opts.MarkerTag = 42;
  auto Image = pinballToElf(*PB, Opts);
  ASSERT_TRUE(Image.hasValue()) << Image.message();

  auto M = loadElfie(*Image, nullptr);
  class MarkerWatch : public vm::Observer {
  public:
    std::vector<std::pair<isa::MarkerKind, int32_t>> Seen;
    void onMarker(uint32_t, isa::MarkerKind K, int32_t Tag) override {
      Seen.push_back({K, Tag});
    }
  } Obs;
  M->setObserver(&Obs);
  M->run(100000);
  ASSERT_EQ(Obs.Seen.size(), 1u);
  EXPECT_EQ(Obs.Seen[0].first, isa::MarkerKind::Sniper);
  EXPECT_EQ(Obs.Seen[0].second, 42);
  removeTree(Dir);
}

TEST(GuestElfie, MultiThreadedStartupRecreatesThreads) {
  std::string Dir = tempDir("mt");
  auto PB = capture(Dir, test::multiThreadProgram(8, 4, 2000), 40000,
                    100000000, LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();
  ASSERT_EQ(PB->Threads.size(), 8u);

  Pinball2ElfOptions Opts;
  Opts.TargetKind = Pinball2ElfOptions::Target::Guest;
  auto Image = pinballToElf(*PB, Opts);
  ASSERT_TRUE(Image.hasValue()) << Image.message();

  auto Out = std::make_shared<std::string>();
  auto M = loadElfie(*Image, Out);
  auto R = M->run(50000000);
  EXPECT_EQ(R.Reason, vm::StopReason::AllExited)
      << (R.Reason == vm::StopReason::Faulted ? R.FaultInfo.Message : "");
  // The unconstrained rerun still produces the correct total (the atomics
  // and barriers are position-independent).
  ASSERT_EQ(Out->size(), 8u);
  uint64_t Total;
  memcpy(&Total, Out->data(), 8);
  EXPECT_EQ(Total, 8u * 4 * 2000);
  EXPECT_EQ(M->threadIds().size(), 8u);
  removeTree(Dir);
}

TEST(GuestElfie, SymbolsCarryBudgets) {
  std::string Dir = tempDir("syms");
  auto PB = capture(Dir, computeProgram(), 2000, 4000, LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue());
  Pinball2ElfOptions Opts;
  Opts.TargetKind = Pinball2ElfOptions::Target::Guest;
  auto Image = pinballToElf(*PB, Opts);
  ASSERT_TRUE(Image.hasValue());
  auto Reader = elf::ELFReader::parse(*Image);
  ASSERT_TRUE(Reader.hasValue());
  const auto *Sym = Reader->findSymbol(".t0.icount");
  ASSERT_NE(Sym, nullptr);
  EXPECT_EQ(Sym->Value, 4000u);
  const auto *Len = Reader->findSymbol("elfie_region_length");
  ASSERT_NE(Len, nullptr);
  EXPECT_EQ(Len->Value, 4000u);
  EXPECT_NE(Reader->findSymbol("elfie_t0_start"), nullptr);
  removeTree(Dir);
}

// ---- SysState unit tests (shared dir with core) ----

TEST(SysState, AnalyzeFileReads) {
  std::string Dir = tempDir("ss");
  std::string Data(128, '\0');
  for (size_t I = 0; I < Data.size(); ++I)
    Data[I] = static_cast<char>(I ^ 0x5a);
  writeFileText(Dir + "/data.bin", Data);
  vm::VMConfig Config;
  Config.FsRoot = Dir;
  auto PB = capture(Dir, test::fileReaderProgram(), 15200, 800,
                    LoggerOptions::fat(), Config);
  ASSERT_TRUE(PB.hasValue()) << PB.message();

  auto State = sysstate::analyze(*PB);
  ASSERT_EQ(State.Files.size(), 1u);
  const auto &F = State.Files[0];
  EXPECT_EQ(F.Fd, 3);
  EXPECT_TRUE(F.OpenedBeforeRegion);
  EXPECT_FALSE(F.Written);
  EXPECT_GT(F.Contents.size(), 0u);
  // The proxy is populated solely from the region's read() records
  // (paper Fig. 8): its contents are a contiguous chunk of the original
  // file data, relocated to offset 0.
  std::string Chunk(F.Contents.begin(), F.Contents.end());
  EXPECT_NE(Data.find(Chunk), std::string::npos);
  EXPECT_NE(State.report().find("FD_3"), std::string::npos);
  EXPECT_NE(State.report().find("BRK.log"), std::string::npos);
  removeTree(Dir);
}

TEST(SysState, WriteDirectoryLayout) {
  sysstate::SysState S;
  sysstate::FileProxy F;
  F.Fd = 3;
  F.ProxyName = "FD_3";
  F.OpenedBeforeRegion = true;
  F.Contents = {1, 2, 3};
  S.Files.push_back(F);
  S.BrkStart = 0x10000000;
  S.BrkEnd = 0x10002000;
  std::string Dir = tempDir("ssdir");
  ASSERT_FALSE(sysstate::writeSysstateDir(S, Dir + "/x.sysstate").isError());
  EXPECT_TRUE(fileExists(Dir + "/x.sysstate/workdir/FD_3"));
  EXPECT_TRUE(fileExists(Dir + "/x.sysstate/BRK.log"));
  auto Brk = readFileText(Dir + "/x.sysstate/BRK.log");
  ASSERT_TRUE(Brk.hasValue());
  EXPECT_NE(Brk->find("0x10000000"), std::string::npos);
  removeTree(Dir);
}

} // namespace
