//===- tests/core/ObjectElfieTest.cpp - ET_REL emission (§II-B5) ----------===//
//
// Part of the ELFies reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/Pinball2Elf.h"

#include "../common/TestHelpers.h"
#include "support/Format.h"

#include <gtest/gtest.h>

using namespace elfie;
using namespace elfie::core;

namespace {

TEST(ObjectElfie, EmitsRelocatableWithContextsAndSymbols) {
  std::string Dir = testing::TempDir() + "/elfie_obj";
  removeTree(Dir);
  createDirectories(Dir);
  auto PB = test::capture(Dir, test::computeProgram(), 4000, 6000,
                          pinball::LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();

  Pinball2ElfOptions Opts;
  Opts.TargetKind = Pinball2ElfOptions::Target::Object;
  auto Image = pinballToElf(*PB, Opts);
  ASSERT_TRUE(Image.hasValue()) << Image.message();

  auto R = elf::ELFReader::parse(*Image);
  ASSERT_TRUE(R.hasValue()) << R.message();
  // Relocatable: no program headers, no entry point.
  EXPECT_EQ(R->fileType(), elf::ET_REL);
  EXPECT_EQ(R->entry(), 0u);
  EXPECT_TRUE(R->segments().empty());

  // Pinball pages present as sections at their original addresses.
  bool FoundText = false;
  for (const auto &S : R->sections())
    if (startsWith(S.Name, ".text.0x"))
      FoundText = true;
  EXPECT_TRUE(FoundText);

  // Packed contexts + the .t<N>.<reg> symbols of §II-B5.
  const auto *Ctx = R->findSection(".data.contexts");
  ASSERT_NE(Ctx, nullptr);
  size_t PerThread = (isa::NumGPRs + isa::NumFPRs + 2) * 8;
  EXPECT_EQ(Ctx->Data.size(), PB->Threads.size() * PerThread);
  const auto *R7 = R->findSymbol(".t0.r7");
  ASSERT_NE(R7, nullptr);
  uint64_t Value;
  memcpy(&Value, Ctx->Data.data() + R7->Value, 8);
  EXPECT_EQ(Value, PB->Threads[0].GPR[7])
      << "the context bytes must be the captured register values";
  const auto *PC = R->findSymbol(".t0.pc");
  ASSERT_NE(PC, nullptr);
  memcpy(&Value, Ctx->Data.data() + PC->Value, 8);
  EXPECT_EQ(Value, PB->Threads[0].PC);
  const auto *IC = R->findSymbol(".t0.icount");
  ASSERT_NE(IC, nullptr);
  EXPECT_EQ(IC->Value, 6000u);
  removeTree(Dir);
}

TEST(ObjectElfie, EmissionByteIdenticalAcrossSaveAndMmapLoad) {
  // The zero-copy substrate must not change a single emitted byte: an
  // ELFie emitted from the freshly captured (heap-backed) pinball and one
  // emitted from the same pinball after save + mmap-backed load must match
  // bit for bit, for every target kind.
  std::string Dir = testing::TempDir() + "/elfie_obj_ident";
  removeTree(Dir);
  createDirectories(Dir);
  auto PB = test::capture(Dir, test::computeProgram(), 4000, 6000,
                          pinball::LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue()) << PB.message();

  ASSERT_FALSE(PB->save(Dir + "/pb").isError());
  auto Loaded = pinball::Pinball::load(Dir + "/pb");
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.message();

  for (auto Target : {Pinball2ElfOptions::Target::Object,
                      Pinball2ElfOptions::Target::Guest}) {
    Pinball2ElfOptions Opts;
    Opts.TargetKind = Target;
    auto FromCapture = pinballToElf(*PB, Opts);
    ASSERT_TRUE(FromCapture.hasValue()) << FromCapture.message();
    auto FromLoad = pinballToElf(*Loaded, Opts);
    ASSERT_TRUE(FromLoad.hasValue()) << FromLoad.message();
    EXPECT_EQ(*FromCapture, *FromLoad)
        << "emitted bytes differ for target "
        << static_cast<int>(Target);
  }
  removeTree(Dir);
}

TEST(ObjectElfie, ToolAcceptsObjectTarget) {
  // Covered end-to-end in tests/tools; here just the library dispatch.
  std::string Dir = testing::TempDir() + "/elfie_obj2";
  removeTree(Dir);
  createDirectories(Dir);
  auto PB = test::capture(Dir, test::computeProgram(), 1000, 1000,
                          pinball::LoggerOptions::fat());
  ASSERT_TRUE(PB.hasValue());
  Pinball2ElfOptions Opts;
  Opts.TargetKind = Pinball2ElfOptions::Target::Object;
  std::string Path = Dir + "/r.o";
  ASSERT_FALSE(pinballToElfFile(*PB, Opts, Path).isError());
  EXPECT_TRUE(fileExists(Path));
  removeTree(Dir);
}

} // namespace
