file(REMOVE_RECURSE
  "CMakeFiles/elfie_core.dir/GuestElfie.cpp.o"
  "CMakeFiles/elfie_core.dir/GuestElfie.cpp.o.d"
  "CMakeFiles/elfie_core.dir/NativeElfie.cpp.o"
  "CMakeFiles/elfie_core.dir/NativeElfie.cpp.o.d"
  "CMakeFiles/elfie_core.dir/Pinball2Elf.cpp.o"
  "CMakeFiles/elfie_core.dir/Pinball2Elf.cpp.o.d"
  "libelfie_core.a"
  "libelfie_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elfie_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
