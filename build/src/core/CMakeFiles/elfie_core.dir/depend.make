# Empty dependencies file for elfie_core.
# This may be replaced when dependencies are built.
