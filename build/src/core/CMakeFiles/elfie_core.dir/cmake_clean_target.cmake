file(REMOVE_RECURSE
  "libelfie_core.a"
)
