file(REMOVE_RECURSE
  "CMakeFiles/elfie_asm.dir/Assembler.cpp.o"
  "CMakeFiles/elfie_asm.dir/Assembler.cpp.o.d"
  "libelfie_asm.a"
  "libelfie_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elfie_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
