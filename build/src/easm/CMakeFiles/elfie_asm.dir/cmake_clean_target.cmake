file(REMOVE_RECURSE
  "libelfie_asm.a"
)
