# Empty dependencies file for elfie_asm.
# This may be replaced when dependencies are built.
