file(REMOVE_RECURSE
  "CMakeFiles/elfie_simpoint.dir/BBV.cpp.o"
  "CMakeFiles/elfie_simpoint.dir/BBV.cpp.o.d"
  "CMakeFiles/elfie_simpoint.dir/KMeans.cpp.o"
  "CMakeFiles/elfie_simpoint.dir/KMeans.cpp.o.d"
  "CMakeFiles/elfie_simpoint.dir/PinPoints.cpp.o"
  "CMakeFiles/elfie_simpoint.dir/PinPoints.cpp.o.d"
  "libelfie_simpoint.a"
  "libelfie_simpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elfie_simpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
