file(REMOVE_RECURSE
  "libelfie_simpoint.a"
)
