# Empty dependencies file for elfie_simpoint.
# This may be replaced when dependencies are built.
