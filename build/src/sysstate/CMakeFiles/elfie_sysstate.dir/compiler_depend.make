# Empty compiler generated dependencies file for elfie_sysstate.
# This may be replaced when dependencies are built.
