file(REMOVE_RECURSE
  "libelfie_sysstate.a"
)
