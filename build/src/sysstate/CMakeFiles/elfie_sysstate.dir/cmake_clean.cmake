file(REMOVE_RECURSE
  "CMakeFiles/elfie_sysstate.dir/SysState.cpp.o"
  "CMakeFiles/elfie_sysstate.dir/SysState.cpp.o.d"
  "libelfie_sysstate.a"
  "libelfie_sysstate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elfie_sysstate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
