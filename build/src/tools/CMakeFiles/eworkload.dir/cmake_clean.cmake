file(REMOVE_RECURSE
  "../../bin/eworkload"
  "../../bin/eworkload.pdb"
  "CMakeFiles/eworkload.dir/eworkload_main.cpp.o"
  "CMakeFiles/eworkload.dir/eworkload_main.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eworkload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
