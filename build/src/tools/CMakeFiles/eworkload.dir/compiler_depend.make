# Empty compiler generated dependencies file for eworkload.
# This may be replaced when dependencies are built.
