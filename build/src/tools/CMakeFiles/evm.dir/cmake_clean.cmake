file(REMOVE_RECURSE
  "../../bin/evm"
  "../../bin/evm.pdb"
  "CMakeFiles/evm.dir/evm_main.cpp.o"
  "CMakeFiles/evm.dir/evm_main.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
