# Empty dependencies file for evm.
# This may be replaced when dependencies are built.
