# Empty compiler generated dependencies file for evm.
# This may be replaced when dependencies are built.
