file(REMOVE_RECURSE
  "../../bin/pinball2elf"
  "../../bin/pinball2elf.pdb"
  "CMakeFiles/pinball2elf.dir/pinball2elf_main.cpp.o"
  "CMakeFiles/pinball2elf.dir/pinball2elf_main.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pinball2elf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
