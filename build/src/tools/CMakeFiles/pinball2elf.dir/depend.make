# Empty dependencies file for pinball2elf.
# This may be replaced when dependencies are built.
