# Empty dependencies file for edisasm.
# This may be replaced when dependencies are built.
