# Empty compiler generated dependencies file for edisasm.
# This may be replaced when dependencies are built.
