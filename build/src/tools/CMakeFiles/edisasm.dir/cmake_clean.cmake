file(REMOVE_RECURSE
  "../../bin/edisasm"
  "../../bin/edisasm.pdb"
  "CMakeFiles/edisasm.dir/edisasm_main.cpp.o"
  "CMakeFiles/edisasm.dir/edisasm_main.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edisasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
