file(REMOVE_RECURSE
  "../../bin/ereplay"
  "../../bin/ereplay.pdb"
  "CMakeFiles/ereplay.dir/ereplay_main.cpp.o"
  "CMakeFiles/ereplay.dir/ereplay_main.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ereplay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
