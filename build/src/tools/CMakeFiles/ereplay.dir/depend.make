# Empty dependencies file for ereplay.
# This may be replaced when dependencies are built.
