# Empty compiler generated dependencies file for easm.
# This may be replaced when dependencies are built.
