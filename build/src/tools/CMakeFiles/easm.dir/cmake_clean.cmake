file(REMOVE_RECURSE
  "../../bin/easm"
  "../../bin/easm.pdb"
  "CMakeFiles/easm.dir/easm_main.cpp.o"
  "CMakeFiles/easm.dir/easm_main.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
