# Empty dependencies file for elogger.
# This may be replaced when dependencies are built.
