file(REMOVE_RECURSE
  "../../bin/elogger"
  "../../bin/elogger.pdb"
  "CMakeFiles/elogger.dir/elogger_main.cpp.o"
  "CMakeFiles/elogger.dir/elogger_main.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elogger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
