# Empty compiler generated dependencies file for elogger.
# This may be replaced when dependencies are built.
