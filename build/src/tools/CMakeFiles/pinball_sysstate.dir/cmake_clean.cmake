file(REMOVE_RECURSE
  "../../bin/pinball_sysstate"
  "../../bin/pinball_sysstate.pdb"
  "CMakeFiles/pinball_sysstate.dir/pinball_sysstate_main.cpp.o"
  "CMakeFiles/pinball_sysstate.dir/pinball_sysstate_main.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pinball_sysstate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
