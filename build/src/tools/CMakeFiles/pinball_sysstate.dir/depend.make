# Empty dependencies file for pinball_sysstate.
# This may be replaced when dependencies are built.
