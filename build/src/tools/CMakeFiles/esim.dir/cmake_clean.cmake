file(REMOVE_RECURSE
  "../../bin/esim"
  "../../bin/esim.pdb"
  "CMakeFiles/esim.dir/esim_main.cpp.o"
  "CMakeFiles/esim.dir/esim_main.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
