file(REMOVE_RECURSE
  "../../bin/esimpoint"
  "../../bin/esimpoint.pdb"
  "CMakeFiles/esimpoint.dir/esimpoint_main.cpp.o"
  "CMakeFiles/esimpoint.dir/esimpoint_main.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esimpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
