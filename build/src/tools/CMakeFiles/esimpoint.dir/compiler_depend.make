# Empty compiler generated dependencies file for esimpoint.
# This may be replaced when dependencies are built.
