
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/elf/ELFReader.cpp" "src/elf/CMakeFiles/elfie_elf.dir/ELFReader.cpp.o" "gcc" "src/elf/CMakeFiles/elfie_elf.dir/ELFReader.cpp.o.d"
  "/root/repo/src/elf/ELFWriter.cpp" "src/elf/CMakeFiles/elfie_elf.dir/ELFWriter.cpp.o" "gcc" "src/elf/CMakeFiles/elfie_elf.dir/ELFWriter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/elfie_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
