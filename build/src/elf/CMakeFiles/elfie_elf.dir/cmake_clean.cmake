file(REMOVE_RECURSE
  "CMakeFiles/elfie_elf.dir/ELFReader.cpp.o"
  "CMakeFiles/elfie_elf.dir/ELFReader.cpp.o.d"
  "CMakeFiles/elfie_elf.dir/ELFWriter.cpp.o"
  "CMakeFiles/elfie_elf.dir/ELFWriter.cpp.o.d"
  "libelfie_elf.a"
  "libelfie_elf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elfie_elf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
