# Empty compiler generated dependencies file for elfie_elf.
# This may be replaced when dependencies are built.
