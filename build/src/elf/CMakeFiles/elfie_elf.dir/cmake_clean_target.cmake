file(REMOVE_RECURSE
  "libelfie_elf.a"
)
