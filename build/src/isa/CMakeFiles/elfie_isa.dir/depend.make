# Empty dependencies file for elfie_isa.
# This may be replaced when dependencies are built.
