file(REMOVE_RECURSE
  "libelfie_isa.a"
)
