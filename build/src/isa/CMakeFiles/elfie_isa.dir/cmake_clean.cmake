file(REMOVE_RECURSE
  "CMakeFiles/elfie_isa.dir/ISA.cpp.o"
  "CMakeFiles/elfie_isa.dir/ISA.cpp.o.d"
  "libelfie_isa.a"
  "libelfie_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elfie_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
