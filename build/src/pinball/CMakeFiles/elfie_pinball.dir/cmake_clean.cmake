file(REMOVE_RECURSE
  "CMakeFiles/elfie_pinball.dir/Logger.cpp.o"
  "CMakeFiles/elfie_pinball.dir/Logger.cpp.o.d"
  "CMakeFiles/elfie_pinball.dir/Pinball.cpp.o"
  "CMakeFiles/elfie_pinball.dir/Pinball.cpp.o.d"
  "libelfie_pinball.a"
  "libelfie_pinball.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elfie_pinball.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
