file(REMOVE_RECURSE
  "libelfie_pinball.a"
)
