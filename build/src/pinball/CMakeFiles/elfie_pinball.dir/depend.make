# Empty dependencies file for elfie_pinball.
# This may be replaced when dependencies are built.
