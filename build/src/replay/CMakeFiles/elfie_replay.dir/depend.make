# Empty dependencies file for elfie_replay.
# This may be replaced when dependencies are built.
