file(REMOVE_RECURSE
  "CMakeFiles/elfie_replay.dir/Replayer.cpp.o"
  "CMakeFiles/elfie_replay.dir/Replayer.cpp.o.d"
  "libelfie_replay.a"
  "libelfie_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elfie_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
