file(REMOVE_RECURSE
  "libelfie_replay.a"
)
