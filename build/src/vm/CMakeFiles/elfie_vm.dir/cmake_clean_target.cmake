file(REMOVE_RECURSE
  "libelfie_vm.a"
)
