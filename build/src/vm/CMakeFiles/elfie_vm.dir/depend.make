# Empty dependencies file for elfie_vm.
# This may be replaced when dependencies are built.
