file(REMOVE_RECURSE
  "CMakeFiles/elfie_vm.dir/Memory.cpp.o"
  "CMakeFiles/elfie_vm.dir/Memory.cpp.o.d"
  "CMakeFiles/elfie_vm.dir/VM.cpp.o"
  "CMakeFiles/elfie_vm.dir/VM.cpp.o.d"
  "libelfie_vm.a"
  "libelfie_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elfie_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
