# Empty compiler generated dependencies file for elfie_sim.
# This may be replaced when dependencies are built.
