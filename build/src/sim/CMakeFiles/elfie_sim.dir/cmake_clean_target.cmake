file(REMOVE_RECURSE
  "libelfie_sim.a"
)
