file(REMOVE_RECURSE
  "CMakeFiles/elfie_sim.dir/BranchPredictor.cpp.o"
  "CMakeFiles/elfie_sim.dir/BranchPredictor.cpp.o.d"
  "CMakeFiles/elfie_sim.dir/Cache.cpp.o"
  "CMakeFiles/elfie_sim.dir/Cache.cpp.o.d"
  "CMakeFiles/elfie_sim.dir/Config.cpp.o"
  "CMakeFiles/elfie_sim.dir/Config.cpp.o.d"
  "CMakeFiles/elfie_sim.dir/Frontend.cpp.o"
  "CMakeFiles/elfie_sim.dir/Frontend.cpp.o.d"
  "CMakeFiles/elfie_sim.dir/TimingModel.cpp.o"
  "CMakeFiles/elfie_sim.dir/TimingModel.cpp.o.d"
  "libelfie_sim.a"
  "libelfie_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elfie_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
