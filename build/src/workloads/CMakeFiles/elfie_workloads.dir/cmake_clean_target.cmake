file(REMOVE_RECURSE
  "libelfie_workloads.a"
)
