# Empty compiler generated dependencies file for elfie_workloads.
# This may be replaced when dependencies are built.
