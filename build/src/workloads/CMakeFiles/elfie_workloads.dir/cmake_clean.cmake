file(REMOVE_RECURSE
  "CMakeFiles/elfie_workloads.dir/Workloads.cpp.o"
  "CMakeFiles/elfie_workloads.dir/Workloads.cpp.o.d"
  "libelfie_workloads.a"
  "libelfie_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elfie_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
