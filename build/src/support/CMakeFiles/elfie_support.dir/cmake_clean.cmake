file(REMOVE_RECURSE
  "CMakeFiles/elfie_support.dir/CommandLine.cpp.o"
  "CMakeFiles/elfie_support.dir/CommandLine.cpp.o.d"
  "CMakeFiles/elfie_support.dir/Error.cpp.o"
  "CMakeFiles/elfie_support.dir/Error.cpp.o.d"
  "CMakeFiles/elfie_support.dir/FileIO.cpp.o"
  "CMakeFiles/elfie_support.dir/FileIO.cpp.o.d"
  "CMakeFiles/elfie_support.dir/Format.cpp.o"
  "CMakeFiles/elfie_support.dir/Format.cpp.o.d"
  "CMakeFiles/elfie_support.dir/RNG.cpp.o"
  "CMakeFiles/elfie_support.dir/RNG.cpp.o.d"
  "libelfie_support.a"
  "libelfie_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elfie_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
