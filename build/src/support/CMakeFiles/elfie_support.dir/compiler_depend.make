# Empty compiler generated dependencies file for elfie_support.
# This may be replaced when dependencies are built.
