file(REMOVE_RECURSE
  "libelfie_support.a"
)
