file(REMOVE_RECURSE
  "libelfie_x86.a"
)
