file(REMOVE_RECURSE
  "CMakeFiles/elfie_x86.dir/Encoder.cpp.o"
  "CMakeFiles/elfie_x86.dir/Encoder.cpp.o.d"
  "CMakeFiles/elfie_x86.dir/Translator.cpp.o"
  "CMakeFiles/elfie_x86.dir/Translator.cpp.o.d"
  "libelfie_x86.a"
  "libelfie_x86.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elfie_x86.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
