# Empty compiler generated dependencies file for elfie_x86.
# This may be replaced when dependencies are built.
