# Empty compiler generated dependencies file for fig11_mt_sniper.
# This may be replaced when dependencies are built.
