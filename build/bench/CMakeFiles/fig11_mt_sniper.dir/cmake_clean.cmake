file(REMOVE_RECURSE
  "CMakeFiles/fig11_mt_sniper.dir/fig11_mt_sniper.cpp.o"
  "CMakeFiles/fig11_mt_sniper.dir/fig11_mt_sniper.cpp.o.d"
  "fig11_mt_sniper"
  "fig11_mt_sniper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_mt_sniper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
