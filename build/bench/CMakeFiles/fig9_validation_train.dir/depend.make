# Empty dependencies file for fig9_validation_train.
# This may be replaced when dependencies are built.
