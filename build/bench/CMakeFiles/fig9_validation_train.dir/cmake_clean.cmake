file(REMOVE_RECURSE
  "CMakeFiles/fig9_validation_train.dir/fig9_validation_train.cpp.o"
  "CMakeFiles/fig9_validation_train.dir/fig9_validation_train.cpp.o.d"
  "fig9_validation_train"
  "fig9_validation_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_validation_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
