file(REMOVE_RECURSE
  "CMakeFiles/table5_gem5_ipc.dir/table5_gem5_ipc.cpp.o"
  "CMakeFiles/table5_gem5_ipc.dir/table5_gem5_ipc.cpp.o.d"
  "table5_gem5_ipc"
  "table5_gem5_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_gem5_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
