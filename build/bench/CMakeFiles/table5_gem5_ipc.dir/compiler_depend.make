# Empty compiler generated dependencies file for table5_gem5_ipc.
# This may be replaced when dependencies are built.
