# Empty dependencies file for table2_gcc_warmup.
# This may be replaced when dependencies are built.
