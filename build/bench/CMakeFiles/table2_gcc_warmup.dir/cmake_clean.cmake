file(REMOVE_RECURSE
  "CMakeFiles/table2_gcc_warmup.dir/table2_gcc_warmup.cpp.o"
  "CMakeFiles/table2_gcc_warmup.dir/table2_gcc_warmup.cpp.o.d"
  "table2_gcc_warmup"
  "table2_gcc_warmup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_gcc_warmup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
