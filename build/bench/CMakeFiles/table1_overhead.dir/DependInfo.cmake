
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_overhead.cpp" "bench/CMakeFiles/table1_overhead.dir/table1_overhead.cpp.o" "gcc" "bench/CMakeFiles/table1_overhead.dir/table1_overhead.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/elfie_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/elfie_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/simpoint/CMakeFiles/elfie_simpoint.dir/DependInfo.cmake"
  "/root/repo/build/src/replay/CMakeFiles/elfie_replay.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/elfie_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/x86/CMakeFiles/elfie_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/sysstate/CMakeFiles/elfie_sysstate.dir/DependInfo.cmake"
  "/root/repo/build/src/pinball/CMakeFiles/elfie_pinball.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/elfie_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/easm/CMakeFiles/elfie_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/elf/CMakeFiles/elfie_elf.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/elfie_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/elfie_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
