file(REMOVE_RECURSE
  "CMakeFiles/fig10_validation_ref.dir/fig10_validation_ref.cpp.o"
  "CMakeFiles/fig10_validation_ref.dir/fig10_validation_ref.cpp.o.d"
  "fig10_validation_ref"
  "fig10_validation_ref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_validation_ref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
