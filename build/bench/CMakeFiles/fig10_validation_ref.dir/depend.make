# Empty dependencies file for fig10_validation_ref.
# This may be replaced when dependencies are built.
