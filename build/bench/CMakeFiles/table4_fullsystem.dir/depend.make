# Empty dependencies file for table4_fullsystem.
# This may be replaced when dependencies are built.
