file(REMOVE_RECURSE
  "CMakeFiles/table4_fullsystem.dir/table4_fullsystem.cpp.o"
  "CMakeFiles/table4_fullsystem.dir/table4_fullsystem.cpp.o.d"
  "table4_fullsystem"
  "table4_fullsystem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_fullsystem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
