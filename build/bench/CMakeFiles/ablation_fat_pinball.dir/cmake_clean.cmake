file(REMOVE_RECURSE
  "CMakeFiles/ablation_fat_pinball.dir/ablation_fat_pinball.cpp.o"
  "CMakeFiles/ablation_fat_pinball.dir/ablation_fat_pinball.cpp.o.d"
  "ablation_fat_pinball"
  "ablation_fat_pinball.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fat_pinball.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
