# Empty compiler generated dependencies file for ablation_fat_pinball.
# This may be replaced when dependencies are built.
