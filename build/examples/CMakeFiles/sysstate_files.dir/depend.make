# Empty dependencies file for sysstate_files.
# This may be replaced when dependencies are built.
