file(REMOVE_RECURSE
  "CMakeFiles/sysstate_files.dir/sysstate_files.cpp.o"
  "CMakeFiles/sysstate_files.dir/sysstate_files.cpp.o.d"
  "sysstate_files"
  "sysstate_files.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sysstate_files.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
