# Empty dependencies file for mt_simulation.
# This may be replaced when dependencies are built.
