file(REMOVE_RECURSE
  "CMakeFiles/mt_simulation.dir/mt_simulation.cpp.o"
  "CMakeFiles/mt_simulation.dir/mt_simulation.cpp.o.d"
  "mt_simulation"
  "mt_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mt_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
