file(REMOVE_RECURSE
  "CMakeFiles/region_validation.dir/region_validation.cpp.o"
  "CMakeFiles/region_validation.dir/region_validation.cpp.o.d"
  "region_validation"
  "region_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
