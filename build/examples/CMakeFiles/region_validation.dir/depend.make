# Empty dependencies file for region_validation.
# This may be replaced when dependencies are built.
