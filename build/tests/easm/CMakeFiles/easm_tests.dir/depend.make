# Empty dependencies file for easm_tests.
# This may be replaced when dependencies are built.
