file(REMOVE_RECURSE
  "CMakeFiles/easm_tests.dir/AssemblerTest.cpp.o"
  "CMakeFiles/easm_tests.dir/AssemblerTest.cpp.o.d"
  "easm_tests"
  "easm_tests.pdb"
  "easm_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easm_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
