
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/support/CommandLineTest.cpp" "tests/support/CMakeFiles/support_tests.dir/CommandLineTest.cpp.o" "gcc" "tests/support/CMakeFiles/support_tests.dir/CommandLineTest.cpp.o.d"
  "/root/repo/tests/support/ErrorTest.cpp" "tests/support/CMakeFiles/support_tests.dir/ErrorTest.cpp.o" "gcc" "tests/support/CMakeFiles/support_tests.dir/ErrorTest.cpp.o.d"
  "/root/repo/tests/support/FileIOTest.cpp" "tests/support/CMakeFiles/support_tests.dir/FileIOTest.cpp.o" "gcc" "tests/support/CMakeFiles/support_tests.dir/FileIOTest.cpp.o.d"
  "/root/repo/tests/support/FormatTest.cpp" "tests/support/CMakeFiles/support_tests.dir/FormatTest.cpp.o" "gcc" "tests/support/CMakeFiles/support_tests.dir/FormatTest.cpp.o.d"
  "/root/repo/tests/support/RNGTest.cpp" "tests/support/CMakeFiles/support_tests.dir/RNGTest.cpp.o" "gcc" "tests/support/CMakeFiles/support_tests.dir/RNGTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/elfie_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
