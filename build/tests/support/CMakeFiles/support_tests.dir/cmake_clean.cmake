file(REMOVE_RECURSE
  "CMakeFiles/support_tests.dir/CommandLineTest.cpp.o"
  "CMakeFiles/support_tests.dir/CommandLineTest.cpp.o.d"
  "CMakeFiles/support_tests.dir/ErrorTest.cpp.o"
  "CMakeFiles/support_tests.dir/ErrorTest.cpp.o.d"
  "CMakeFiles/support_tests.dir/FileIOTest.cpp.o"
  "CMakeFiles/support_tests.dir/FileIOTest.cpp.o.d"
  "CMakeFiles/support_tests.dir/FormatTest.cpp.o"
  "CMakeFiles/support_tests.dir/FormatTest.cpp.o.d"
  "CMakeFiles/support_tests.dir/RNGTest.cpp.o"
  "CMakeFiles/support_tests.dir/RNGTest.cpp.o.d"
  "support_tests"
  "support_tests.pdb"
  "support_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
