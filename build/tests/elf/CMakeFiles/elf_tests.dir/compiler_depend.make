# Empty compiler generated dependencies file for elf_tests.
# This may be replaced when dependencies are built.
