file(REMOVE_RECURSE
  "CMakeFiles/elf_tests.dir/ELFTest.cpp.o"
  "CMakeFiles/elf_tests.dir/ELFTest.cpp.o.d"
  "elf_tests"
  "elf_tests.pdb"
  "elf_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elf_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
