# CMake generated Testfile for 
# Source directory: /root/repo/tests/elf
# Build directory: /root/repo/build/tests/elf
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/elf/elf_tests[1]_include.cmake")
