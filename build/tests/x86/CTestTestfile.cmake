# CMake generated Testfile for 
# Source directory: /root/repo/tests/x86
# Build directory: /root/repo/build/tests/x86
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/x86/x86_tests[1]_include.cmake")
