# Empty dependencies file for x86_tests.
# This may be replaced when dependencies are built.
