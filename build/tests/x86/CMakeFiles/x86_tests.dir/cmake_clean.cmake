file(REMOVE_RECURSE
  "CMakeFiles/x86_tests.dir/EncoderTest.cpp.o"
  "CMakeFiles/x86_tests.dir/EncoderTest.cpp.o.d"
  "CMakeFiles/x86_tests.dir/TranslatorTest.cpp.o"
  "CMakeFiles/x86_tests.dir/TranslatorTest.cpp.o.d"
  "x86_tests"
  "x86_tests.pdb"
  "x86_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x86_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
