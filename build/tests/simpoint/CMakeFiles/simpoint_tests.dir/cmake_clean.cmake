file(REMOVE_RECURSE
  "CMakeFiles/simpoint_tests.dir/SimPointTest.cpp.o"
  "CMakeFiles/simpoint_tests.dir/SimPointTest.cpp.o.d"
  "simpoint_tests"
  "simpoint_tests.pdb"
  "simpoint_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simpoint_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
