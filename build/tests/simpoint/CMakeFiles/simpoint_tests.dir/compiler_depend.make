# Empty compiler generated dependencies file for simpoint_tests.
# This may be replaced when dependencies are built.
