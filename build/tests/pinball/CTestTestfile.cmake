# CMake generated Testfile for 
# Source directory: /root/repo/tests/pinball
# Build directory: /root/repo/build/tests/pinball
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/pinball/pinball_tests[1]_include.cmake")
