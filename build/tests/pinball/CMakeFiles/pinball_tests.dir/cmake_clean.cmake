file(REMOVE_RECURSE
  "CMakeFiles/pinball_tests.dir/PinballTest.cpp.o"
  "CMakeFiles/pinball_tests.dir/PinballTest.cpp.o.d"
  "pinball_tests"
  "pinball_tests.pdb"
  "pinball_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pinball_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
