# Empty compiler generated dependencies file for pinball_tests.
# This may be replaced when dependencies are built.
