file(REMOVE_RECURSE
  "CMakeFiles/replay_tests.dir/ReplayTest.cpp.o"
  "CMakeFiles/replay_tests.dir/ReplayTest.cpp.o.d"
  "replay_tests"
  "replay_tests.pdb"
  "replay_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
