# Empty compiler generated dependencies file for replay_tests.
# This may be replaced when dependencies are built.
